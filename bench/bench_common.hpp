// Shared harness utilities for the paper-reproduction benches.
//
// Reference optima: the paper benchmarks against the Billionnet–Soutif
// archive with published optima. Our instances are generated with the same
// scheme (DESIGN.md substitutions), so OPT for the large QKPs is not known
// a priori. Each bench therefore uses a *best-known reference*: the best
// feasible cost found across every method it runs (SAIM, penalty variants,
// greedy; plus exact B&B where tractable, which replaces the reference by
// the true optimum). Accuracies are reported against that reference —
// the relative comparison between methods, which is what the paper's tables
// establish, is unaffected.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "anneal/backend.hpp"
#include "core/params.hpp"
#include "core/penalty_method.hpp"
#include "core/saim_solver.hpp"
#include "heuristics/greedy.hpp"
#include "pbit/schedule.hpp"
#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace saim::bench {

/// One method's outcome on one instance, normalized to accuracy-vs-reference.
struct MethodScore {
  double best_accuracy = 0.0;  ///< 100 * best_cost / reference
  double avg_accuracy = 0.0;   ///< mean accuracy over feasible samples
  double feasibility = 0.0;    ///< fraction of feasible samples
  double best_cost = 0.0;
  std::size_t total_sweeps = 0;
};

inline MethodScore score_against(const core::SolveResult& result,
                                 double reference_cost) {
  MethodScore s;
  s.best_cost = result.found_feasible ? result.best_cost : 0.0;
  s.feasibility = result.feasibility_rate();
  s.total_sweeps = result.total_sweeps;
  if (result.found_feasible && reference_cost != 0.0) {
    s.best_accuracy = core::accuracy_percent(result.best_cost, reference_cost);
    s.avg_accuracy = core::accuracy_percent(
        result.feasible_cost_stats.mean(), reference_cost);
  }
  return s;
}

/// Runs SAIM on a QKP instance with Table-I-style parameters.
inline core::SolveResult run_saim_qkp(const problems::QkpInstance& instance,
                                      const core::ExperimentParams& params,
                                      std::uint64_t seed,
                                      bool record_history = false) {
  const auto mapping = problems::qkp_to_problem(instance);
  anneal::PBitBackend backend(pbit::Schedule::linear(params.beta_max),
                              params.mcs_per_run);
  core::SaimOptions opts;
  opts.iterations = params.runs;
  opts.eta = params.eta;
  opts.penalty_alpha = params.penalty_alpha;
  opts.seed = seed;
  opts.record_history = record_history;
  opts.collect_feasible_costs = true;
  core::SaimSolver solver(mapping.problem, backend, opts);
  return solver.solve(core::make_qkp_evaluator(instance));
}

/// Runs the fixed-P penalty method on a QKP instance.
inline core::SolveResult run_penalty_qkp(
    const problems::QkpInstance& instance,
    const core::ExperimentParams& params, double penalty_alpha,
    std::size_t runs, std::size_t mcs_per_run, std::uint64_t seed) {
  const auto mapping = problems::qkp_to_problem(instance);
  anneal::PBitBackend backend(pbit::Schedule::linear(params.beta_max),
                              mcs_per_run);
  core::PenaltyOptions opts;
  opts.runs = runs;
  opts.penalty_alpha = penalty_alpha;
  opts.seed = seed;
  return core::solve_penalty_method(mapping.problem, backend, opts,
                                    core::make_qkp_evaluator(instance));
}

/// Runs SAIM on an MKP instance with Table-I-style parameters.
inline core::SolveResult run_saim_mkp(const problems::MkpInstance& instance,
                                      const core::ExperimentParams& params,
                                      std::uint64_t seed,
                                      bool record_history = false) {
  const auto mapping = problems::mkp_to_problem(instance);
  anneal::PBitBackend backend(pbit::Schedule::linear(params.beta_max),
                              params.mcs_per_run);
  core::SaimOptions opts;
  opts.iterations = params.runs;
  opts.eta = params.eta;
  opts.penalty_alpha = params.penalty_alpha;
  opts.seed = seed;
  opts.record_history = record_history;
  opts.collect_feasible_costs = true;
  core::SaimSolver solver(mapping.problem, backend, opts);
  return solver.solve(core::make_mkp_evaluator(instance));
}

/// Greedy lower bound used as a floor for the best-known reference.
inline double greedy_reference_qkp(const problems::QkpInstance& instance) {
  return static_cast<double>(
      instance.cost(heuristics::greedy_qkp(instance)));
}

/// Best (most negative) of the collected cost candidates; 0 if none.
inline double best_known(const std::vector<double>& candidates) {
  double best = 0.0;
  for (const double c : candidates) best = std::min(best, c);
  return best;
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

/// Prints the standard bench banner with the effective scale settings.
inline void print_banner(const std::string& title, bool full_scale,
                         const std::string& scale_note) {
  print_rule();
  std::printf("%s\n", title.c_str());
  std::printf("scale: %s (%s)\n", full_scale ? "FULL (paper)" : "reduced",
              scale_note.c_str());
  print_rule();
}

}  // namespace saim::bench
