// google-benchmark micro benchmarks for the hot paths:
//   * p-bit Monte-Carlo sweep throughput (the quantity the paper budgets
//     in MCS),
//   * the O(n) lambda refresh (LagrangianModel::set_lambda) vs a full
//     model rebuild — the optimization that makes the SAIM outer loop
//     essentially free,
//   * energy evaluations and QUBO->Ising conversion.
#include <benchmark/benchmark.h>

#include "anneal/backend.hpp"
#include "ising/convert.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "pbit/pbit_machine.hpp"
#include "problems/qkp.hpp"

namespace {

using namespace saim;

problems::QkpInstance bench_instance(std::size_t n, int density) {
  return problems::make_paper_qkp(n, density, 1);
}

void BM_PbitSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto density = static_cast<int>(state.range(1));
  const auto inst = bench_instance(n, density);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  pbit::PBitMachine machine(model.ising());
  util::Xoshiro256pp rng(1);
  pbit::AnnealOptions opts;
  opts.sweeps = 10;
  for (auto _ : state) {
    auto result =
        machine.anneal(pbit::Schedule::linear(10.0), opts, rng);
    benchmark::DoNotOptimize(result.last_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10 * static_cast<std::int64_t>(model.n()));
  state.counters["MCS/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 10.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PbitSweep)
    ->Args({100, 25})
    ->Args({100, 50})
    ->Args({200, 50})
    ->Args({300, 50});

void BM_LambdaRefresh(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  std::vector<double> lambda = {0.0};
  for (auto _ : state) {
    lambda[0] += 0.01;
    model.set_lambda(lambda);
    benchmark::DoNotOptimize(model.ising().field(0));
  }
}
BENCHMARK(BM_LambdaRefresh)->Arg(100)->Arg(200)->Arg(300);

void BM_FullModelRebuild(benchmark::State& state) {
  // The naive alternative to set_lambda: rebuild the Lagrangian from
  // scratch every iteration. Compare with BM_LambdaRefresh.
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  for (auto _ : state) {
    lagrange::LagrangianModel model(mapping.problem, 2.0);
    benchmark::DoNotOptimize(model.ising().field(0));
  }
}
BENCHMARK(BM_FullModelRebuild)->Arg(100)->Arg(200)->Arg(300);

void BM_QuboEnergy(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  util::Xoshiro256pp rng(2);
  ising::Bits x(mapping.problem.n());
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping.problem.objective().energy(x));
  }
}
BENCHMARK(BM_QuboEnergy)->Arg(100)->Arg(300);

void BM_QuboToIsing(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  for (auto _ : state) {
    auto ising = ising::qubo_to_ising(model.qubo());
    benchmark::DoNotOptimize(ising.field(0));
  }
}
BENCHMARK(BM_QuboToIsing)->Arg(100)->Arg(300);

void BM_QkpGenerate(benchmark::State& state) {
  problems::QkpGeneratorParams params;
  params.n = static_cast<std::size_t>(state.range(0));
  params.density = 0.5;
  for (auto _ : state) {
    params.seed++;
    auto inst = problems::generate_qkp(params);
    benchmark::DoNotOptimize(inst.capacity());
  }
}
BENCHMARK(BM_QkpGenerate)->Arg(100)->Arg(300);

}  // namespace

BENCHMARK_MAIN();
