// google-benchmark micro benchmarks for the hot paths:
//   * p-bit Monte-Carlo sweep throughput (the quantity the paper budgets
//     in MCS),
//   * the O(n) lambda refresh (LagrangianModel::set_lambda) vs a full
//     model rebuild — the optimization that makes the SAIM outer loop
//     essentially free,
//   * energy evaluations and QUBO->Ising conversion,
//   * recompute-every-visit vs incremental vs bit-sliced sweeps.
//
// The BENCH_sweep.json report (sweep-engine throughput comparison, CI
// floor) lives in bench/sweep_rates.cpp, which does not need
// google-benchmark.
#include <benchmark/benchmark.h>

#include <vector>

#include "ising/convert.hpp"
#include "pbit/pbit_machine.hpp"
#include "sweep_common.hpp"

namespace {

using namespace saim;
using benchfix::bench_instance;
using benchfix::incremental_sweep;
using benchfix::recompute_sweep;

void BM_PbitSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto density = static_cast<int>(state.range(1));
  const auto inst = bench_instance(n, density);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  pbit::PBitMachine machine(model.ising());
  util::Xoshiro256pp rng(1);
  pbit::AnnealOptions opts;
  opts.sweeps = 10;
  for (auto _ : state) {
    auto result =
        machine.anneal(pbit::Schedule::linear(10.0), opts, rng);
    benchmark::DoNotOptimize(result.last_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10 * static_cast<std::int64_t>(model.n()));
  state.counters["MCS/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 10.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PbitSweep)
    ->Args({100, 25})
    ->Args({100, 50})
    ->Args({200, 50})
    ->Args({300, 50});

void BM_LambdaRefresh(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  std::vector<double> lambda = {0.0};
  for (auto _ : state) {
    lambda[0] += 0.01;
    model.set_lambda(lambda);
    benchmark::DoNotOptimize(model.ising().field(0));
  }
}
BENCHMARK(BM_LambdaRefresh)->Arg(100)->Arg(200)->Arg(300);

void BM_FullModelRebuild(benchmark::State& state) {
  // The naive alternative to set_lambda: rebuild the Lagrangian from
  // scratch every iteration. Compare with BM_LambdaRefresh.
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  for (auto _ : state) {
    lagrange::LagrangianModel model(mapping.problem, 2.0);
    benchmark::DoNotOptimize(model.ising().field(0));
  }
}
BENCHMARK(BM_FullModelRebuild)->Arg(100)->Arg(200)->Arg(300);

void BM_QuboEnergy(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  util::Xoshiro256pp rng(2);
  ising::Bits x(mapping.problem.n());
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping.problem.objective().energy(x));
  }
}
BENCHMARK(BM_QuboEnergy)->Arg(100)->Arg(300);

void BM_QuboToIsing(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  for (auto _ : state) {
    auto ising = ising::qubo_to_ising(model.qubo());
    benchmark::DoNotOptimize(ising.field(0));
  }
}
BENCHMARK(BM_QuboToIsing)->Arg(100)->Arg(300);

void BM_QkpGenerate(benchmark::State& state) {
  problems::QkpGeneratorParams params;
  params.n = static_cast<std::size_t>(state.range(0));
  params.density = 0.5;
  for (auto _ : state) {
    params.seed++;
    auto inst = problems::generate_qkp(params);
    benchmark::DoNotOptimize(inst.capacity());
  }
}
BENCHMARK(BM_QkpGenerate)->Arg(100)->Arg(300);

void BM_SweepRecompute(benchmark::State& state) {
  const auto inst = bench_instance(200, 25);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  const ising::Adjacency adj(model.ising());
  const double beta = static_cast<double>(state.range(0)) / 10.0;
  util::Xoshiro256pp rng(5);
  ising::Spins m(model.n());
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  for (auto _ : state) {
    recompute_sweep(model.ising(), adj, m, beta, rng);
    benchmark::DoNotOptimize(m.data());
  }
  state.counters["sweeps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepRecompute)->Arg(1)->Arg(50);

void BM_SweepIncremental(benchmark::State& state) {
  const auto inst = bench_instance(200, 25);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  const ising::Adjacency adj(model.ising());
  const double beta = static_cast<double>(state.range(0)) / 10.0;
  util::Xoshiro256pp rng(5);
  ising::Spins m(model.n());
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  ising::LocalFieldState lfs(model.ising(), adj);
  lfs.reset(m);
  for (auto _ : state) {
    incremental_sweep(lfs, m, beta, rng);
    benchmark::DoNotOptimize(m.data());
  }
  state.counters["sweeps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepIncremental)->Arg(1)->Arg(50);

void BM_SweepBitsliced(benchmark::State& state) {
  const auto inst = bench_instance(200, 25);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  const ising::Adjacency adj(model.ising());
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const double beta = static_cast<double>(state.range(1)) / 10.0;

  util::Xoshiro256pp rng(5);
  ising::Spins m(model.n());
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  std::vector<ising::SliceLane> lanes(replicas);
  const double energy = model.ising().energy(m);
  for (std::size_t r = 0; r < replicas; ++r) {
    lanes[r].spins = m;
    lanes[r].energy = energy;
    lanes[r].fields = model.ising().fields().data();
    lanes[r].rng = util::Xoshiro256pp(util::derive_seed(5, r)).state();
  }
  constexpr std::size_t kSweeps = 16;
  const std::vector<double> betas(kSweeps, beta);
  ising::SliceOptions so;
  so.dynamics = ising::SliceDynamics::kMetropolis;
  so.betas = betas;
  so.track_best = false;
  const ising::BitSliceEngine engine(adj);
  for (auto _ : state) {
    auto results = engine.run(lanes, so);
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["replica_sweeps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kSweeps * replicas),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepBitsliced)
    ->Args({1, 50})
    ->Args({32, 50})
    ->Args({64, 1})
    ->Args({64, 50});

}  // namespace

BENCHMARK_MAIN();
