// google-benchmark micro benchmarks for the hot paths:
//   * p-bit Monte-Carlo sweep throughput (the quantity the paper budgets
//     in MCS),
//   * the O(n) lambda refresh (LagrangianModel::set_lambda) vs a full
//     model rebuild — the optimization that makes the SAIM outer loop
//     essentially free,
//   * energy evaluations and QUBO->Ising conversion,
//   * recompute-every-visit vs incremental LocalFieldState sweeps.
//
// The custom main() below additionally times the recompute/incremental
// comparison on the paper's density-0.25 QKP-200 Ising model at an early
// and a late annealing beta and writes BENCH_sweep.json before handing
// over to google-benchmark.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "anneal/backend.hpp"
#include "ising/adjacency.hpp"
#include "ising/convert.hpp"
#include "ising/local_field.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "pbit/pbit_machine.hpp"
#include "problems/qkp.hpp"
#include "util/timer.hpp"

namespace {

using namespace saim;

problems::QkpInstance bench_instance(std::size_t n, int density) {
  return problems::make_paper_qkp(n, density, 1);
}

void BM_PbitSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto density = static_cast<int>(state.range(1));
  const auto inst = bench_instance(n, density);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  pbit::PBitMachine machine(model.ising());
  util::Xoshiro256pp rng(1);
  pbit::AnnealOptions opts;
  opts.sweeps = 10;
  for (auto _ : state) {
    auto result =
        machine.anneal(pbit::Schedule::linear(10.0), opts, rng);
    benchmark::DoNotOptimize(result.last_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10 * static_cast<std::int64_t>(model.n()));
  state.counters["MCS/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 10.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PbitSweep)
    ->Args({100, 25})
    ->Args({100, 50})
    ->Args({200, 50})
    ->Args({300, 50});

void BM_LambdaRefresh(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  std::vector<double> lambda = {0.0};
  for (auto _ : state) {
    lambda[0] += 0.01;
    model.set_lambda(lambda);
    benchmark::DoNotOptimize(model.ising().field(0));
  }
}
BENCHMARK(BM_LambdaRefresh)->Arg(100)->Arg(200)->Arg(300);

void BM_FullModelRebuild(benchmark::State& state) {
  // The naive alternative to set_lambda: rebuild the Lagrangian from
  // scratch every iteration. Compare with BM_LambdaRefresh.
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  for (auto _ : state) {
    lagrange::LagrangianModel model(mapping.problem, 2.0);
    benchmark::DoNotOptimize(model.ising().field(0));
  }
}
BENCHMARK(BM_FullModelRebuild)->Arg(100)->Arg(200)->Arg(300);

void BM_QuboEnergy(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  util::Xoshiro256pp rng(2);
  ising::Bits x(mapping.problem.n());
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping.problem.objective().energy(x));
  }
}
BENCHMARK(BM_QuboEnergy)->Arg(100)->Arg(300);

void BM_QuboToIsing(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   50);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  for (auto _ : state) {
    auto ising = ising::qubo_to_ising(model.qubo());
    benchmark::DoNotOptimize(ising.field(0));
  }
}
BENCHMARK(BM_QuboToIsing)->Arg(100)->Arg(300);

void BM_QkpGenerate(benchmark::State& state) {
  problems::QkpGeneratorParams params;
  params.n = static_cast<std::size_t>(state.range(0));
  params.density = 0.5;
  for (auto _ : state) {
    params.seed++;
    auto inst = problems::generate_qkp(params);
    benchmark::DoNotOptimize(inst.capacity());
  }
}
BENCHMARK(BM_QkpGenerate)->Arg(100)->Arg(300);

// ---------------------------------------------------------------------------
// Recompute vs incremental sweep engine.
//
// Both variants run identical Metropolis dynamics; the only difference is
// how the local field I_i is obtained: a fresh CSR scan per visit
// (O(deg), the pre-LocalFieldState code path) vs an O(1) read from the
// incrementally maintained engine. The gap is largest at late-anneal
// betas where hardly anything flips, which is where SAIM spends most of
// its MCS budget.

void recompute_sweep(const ising::IsingModel& model,
                     const ising::Adjacency& adj, ising::Spins& m,
                     double beta, util::Xoshiro256pp& rng) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double in = adj.coupling_input(m, i) + model.field(i);
    const double delta = 2.0 * static_cast<double>(m[i]) * in;
    if (delta <= 0.0 || rng.uniform01() < std::exp(-beta * delta)) {
      m[i] = static_cast<std::int8_t>(-m[i]);
    }
  }
}

void incremental_sweep(ising::LocalFieldState& lfs, ising::Spins& m,
                       double beta, util::Xoshiro256pp& rng) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double delta = lfs.flip_delta(m, i);
    if (delta <= 0.0 || rng.uniform01() < std::exp(-beta * delta)) {
      lfs.flip(m, i);
    }
  }
}

struct SweepRates {
  double recompute_sweeps_per_sec = 0.0;
  double incremental_sweeps_per_sec = 0.0;
  [[nodiscard]] double speedup() const {
    return incremental_sweeps_per_sec / recompute_sweeps_per_sec;
  }
};

SweepRates measure_sweep_rates(const ising::IsingModel& model,
                               const ising::Adjacency& adj, double beta,
                               std::size_t burn_in, std::size_t timed) {
  // Equilibrate at the target beta so both variants see realistic flip
  // rates, then time each from the same configuration.
  util::Xoshiro256pp rng(42);
  ising::Spins m(model.n());
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  ising::LocalFieldState lfs(model, adj);
  lfs.reset(m);
  for (std::size_t t = 0; t < burn_in; ++t) {
    incremental_sweep(lfs, m, beta, rng);
  }

  SweepRates rates;
  {
    ising::Spins state = m;
    util::Xoshiro256pp sweep_rng(7);
    util::WallTimer timer;
    for (std::size_t t = 0; t < timed; ++t) {
      recompute_sweep(model, adj, state, beta, sweep_rng);
    }
    rates.recompute_sweeps_per_sec =
        static_cast<double>(timed) / timer.seconds();
    benchmark::DoNotOptimize(state.data());
  }
  {
    ising::Spins state = m;
    ising::LocalFieldState timed_lfs(model, adj);
    timed_lfs.reset(state);
    util::Xoshiro256pp sweep_rng(7);
    util::WallTimer timer;
    for (std::size_t t = 0; t < timed; ++t) {
      incremental_sweep(timed_lfs, state, beta, sweep_rng);
    }
    rates.incremental_sweeps_per_sec =
        static_cast<double>(timed) / timer.seconds();
    benchmark::DoNotOptimize(state.data());
  }
  return rates;
}

void write_bench_sweep_json(const char* path) {
  const auto inst = bench_instance(200, 25);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  const ising::IsingModel& ising = model.ising();
  const ising::Adjacency adj(ising);

  const double beta_early = 0.1;  // start of the paper's linear ramp
  const double beta_late = 5.0;   // deep anneal, near-frozen dynamics
  const std::size_t burn_in = 300;
  const std::size_t timed = 2000;

  const SweepRates early =
      measure_sweep_rates(ising, adj, beta_early, burn_in, timed);
  const SweepRates late =
      measure_sweep_rates(ising, adj, beta_late, burn_in, timed);

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"instance\": \"qkp_n200_density25\",\n");
  std::fprintf(f, "  \"spins\": %zu,\n", ising.n());
  std::fprintf(f, "  \"edges\": %zu,\n", adj.edge_count());
  std::fprintf(f, "  \"dynamics\": \"metropolis\",\n");
  std::fprintf(f, "  \"timed_sweeps\": %zu,\n", timed);
  std::fprintf(f, "  \"phases\": [\n");
  std::fprintf(f,
               "    {\"phase\": \"early\", \"beta\": %.3f, "
               "\"recompute_sweeps_per_sec\": %.1f, "
               "\"incremental_sweeps_per_sec\": %.1f, "
               "\"speedup\": %.3f},\n",
               beta_early, early.recompute_sweeps_per_sec,
               early.incremental_sweeps_per_sec, early.speedup());
  std::fprintf(f,
               "    {\"phase\": \"late\", \"beta\": %.3f, "
               "\"recompute_sweeps_per_sec\": %.1f, "
               "\"incremental_sweeps_per_sec\": %.1f, "
               "\"speedup\": %.3f}\n",
               beta_late, late.recompute_sweeps_per_sec,
               late.incremental_sweeps_per_sec, late.speedup());
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_early\": %.3f,\n", early.speedup());
  std::fprintf(f, "  \"speedup_late\": %.3f\n", late.speedup());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "BENCH_sweep.json: early %.2fx, late %.2fx incremental speedup\n",
      early.speedup(), late.speedup());
}

void BM_SweepRecompute(benchmark::State& state) {
  const auto inst = bench_instance(200, 25);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  const ising::Adjacency adj(model.ising());
  const double beta = static_cast<double>(state.range(0)) / 10.0;
  util::Xoshiro256pp rng(5);
  ising::Spins m(model.n());
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  for (auto _ : state) {
    recompute_sweep(model.ising(), adj, m, beta, rng);
    benchmark::DoNotOptimize(m.data());
  }
  state.counters["sweeps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepRecompute)->Arg(1)->Arg(50);

void BM_SweepIncremental(benchmark::State& state) {
  const auto inst = bench_instance(200, 25);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  const ising::Adjacency adj(model.ising());
  const double beta = static_cast<double>(state.range(0)) / 10.0;
  util::Xoshiro256pp rng(5);
  ising::Spins m(model.n());
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  ising::LocalFieldState lfs(model.ising(), adj);
  lfs.reset(m);
  for (auto _ : state) {
    incremental_sweep(lfs, m, beta, rng);
    benchmark::DoNotOptimize(m.data());
  }
  state.counters["sweeps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepIncremental)->Arg(1)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before handing the rest to google-benchmark, and
  // validate arguments *before* paying for the sweep-rate measurement.
  // Plain runs emit BENCH_sweep.json; inspection runs (list/filter) skip
  // it unless --sweep_json asks for it explicitly.
  bool sweep_json = true;
  bool forced = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--no_sweep_json") {
      sweep_json = false;
      continue;
    }
    if (arg == "--sweep_json") {
      forced = true;
      continue;
    }
    if (arg.starts_with("--benchmark_filter") ||
        arg.starts_with("--benchmark_list_tests")) {
      sweep_json = false;
    }
    args.push_back(argv[i]);
  }
  sweep_json = sweep_json || forced;
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (sweep_json) write_bench_sweep_json("BENCH_sweep.json");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
