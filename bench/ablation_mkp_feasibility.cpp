// Feasibility-boost ablation for MKP — the paper's conclusion proposes two
// remedies for the low MKP feasibility rate (~5%):
//   "To increase feasibility, one could increase the initial penalties set
//    by P. Another approach [16] would be to reduce the knapsack capacities
//    B artificially as B' < B so that the measured samples are more likely
//    to satisfy the constraints."
// This bench measures both: a P-alpha sweep and a capacity-shrink sweep,
// reporting feasibility and best accuracy so the cost of each remedy is
// visible (tighter B' or larger P raise feasibility but can exclude the
// true optimum / degrade quality). Warm restarts are included as a third
// lever.
#include <cinttypes>

#include "bench_common.hpp"

namespace {

using namespace saim;

core::SolveResult run_mkp_variant(const problems::MkpInstance& inst,
                                  const core::ExperimentParams& params,
                                  double shrink, double alpha,
                                  bool warm_restart, std::uint64_t seed) {
  problems::MkpLoweringOptions lowering;
  lowering.capacity_shrink = shrink;
  const auto mapping = problems::mkp_to_problem(inst, lowering);
  anneal::PBitBackend backend(pbit::Schedule::linear(params.beta_max),
                              params.mcs_per_run);
  backend.set_warm_restart(warm_restart);
  core::SaimOptions opts;
  opts.iterations = params.runs;
  opts.eta = params.eta;
  opts.penalty_alpha = alpha;
  opts.seed = seed;
  opts.collect_feasible_costs = true;
  core::SaimSolver solver(mapping.problem, backend, opts);
  // Feasibility is always judged against the TRUE capacities B.
  return solver.solve(core::make_mkp_evaluator(inst));
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_mkp_feasibility",
                       "Paper-conclusion ablation: raising MKP feasibility "
                       "via P, B' < B, and warm restarts");
  args.add_flag("n", "items", "100")
      .add_flag("m", "knapsacks", "5")
      .add_flag("index", "instance index", "1")
      .add_flag("runs", "SAIM iterations per variant", "1500")
      .add_flag("seed", "seed", "1");
  args.add_bool("full", "paper-scale runs (5000)");
  if (!args.parse(argc, argv)) return 0;

  auto params = core::mkp_paper_params();
  params.runs = args.get_bool("full")
                    ? 5000
                    : static_cast<std::size_t>(args.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto inst = problems::make_paper_mkp(
      static_cast<std::size_t>(args.get_int("n")),
      static_cast<std::size_t>(args.get_int("m")),
      static_cast<int>(args.get_int("index")));

  bench::print_banner("MKP feasibility ablation on " + inst.name(),
                      args.get_bool("full"),
                      std::to_string(params.runs) + " runs per variant");

  struct Variant {
    std::string label;
    double shrink;
    double alpha;
    bool warm;
  };
  const std::vector<Variant> variants = {
      {"baseline (P=5dN, B'=B)", 1.00, 5.0, false},
      {"B' = 0.98 B", 0.98, 5.0, false},
      {"B' = 0.95 B", 0.95, 5.0, false},
      {"B' = 0.90 B", 0.90, 5.0, false},
      {"P = 10dN", 1.00, 10.0, false},
      {"P = 20dN", 1.00, 20.0, false},
      {"warm restarts", 1.00, 5.0, true},
      {"B'=0.95B + P=10dN", 0.95, 10.0, false},
  };

  struct Row {
    std::string label;
    core::SolveResult result;
  };
  std::vector<Row> rows;
  for (const auto& v : variants) {
    rows.push_back({v.label, run_mkp_variant(inst, params, v.shrink, v.alpha,
                                             v.warm, seed)});
  }

  double reference = 0.0;
  for (const auto& row : rows) {
    if (row.result.found_feasible) {
      reference = std::min(reference, row.result.best_cost);
    }
  }

  std::printf("%-24s %8s %9s %9s\n", "variant", "feas%", "best-acc",
              "avg-acc");
  bench::print_rule(56);
  for (const auto& row : rows) {
    const auto s = bench::score_against(row.result, reference);
    std::printf("%-24s %7.1f%% %8.2f%% %8.2f%%\n", row.label.c_str(),
                100.0 * s.feasibility, s.best_accuracy, s.avg_accuracy);
  }
  bench::print_rule(56);
  std::printf("expected shape: shrinking B' and raising P both lift "
              "feasibility; too-aggressive shrink caps best accuracy below "
              "100%% because the optimum itself is cut away.\n");
  return 0;
}
