#include "load_gen.hpp"

#include <poll.h>

#include <chrono>
#include <random>
#include <stdexcept>
#include <vector>

#include "net/connection.hpp"
#include "util/jsonl.hpp"

namespace saim::bench {

namespace {

using Clock = std::chrono::steady_clock;

/// Send offsets (seconds from wave start) for the whole schedule,
/// computed BEFORE the wave: the schedule must not depend on how the
/// server behaves, or the generator is closed-loop again.
std::vector<double> make_schedule(const LoadGenOptions& options) {
  std::vector<double> offsets;
  offsets.reserve(options.total_jobs);
  if (options.poisson) {
    std::mt19937_64 rng(options.seed);
    std::exponential_distribution<double> gap(options.rate_per_sec);
    double t = 0.0;
    for (std::size_t i = 0; i < options.total_jobs; ++i) {
      t += gap(rng);
      offsets.push_back(t);
    }
  } else {
    for (std::size_t i = 0; i < options.total_jobs; ++i) {
      offsets.push_back(static_cast<double>(i) / options.rate_per_sec);
    }
  }
  return offsets;
}

/// Reply id -> schedule slot: ids are "ol<index>" by contract.
std::ptrdiff_t slot_from_id(const std::string& id, std::size_t total) {
  if (id.size() < 3 || id[0] != 'o' || id[1] != 'l') return -1;
  std::size_t index = 0;
  for (std::size_t i = 2; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return -1;
    index = index * 10 + static_cast<std::size_t>(id[i] - '0');
  }
  return index < total ? static_cast<std::ptrdiff_t>(index) : -1;
}

}  // namespace

LoadGenReport run_open_loop(const std::string& host, int port,
                            const LoadGenOptions& options,
                            const JobLineFn& make_line) {
  const std::vector<double> offsets = make_schedule(options);
  net::Connection conn = net::connect_to(host, port);

  LoadGenReport report;
  report.offered_rate = options.rate_per_sec;
  report.poisson = options.poisson;

  obs::Histogram latency;
  std::vector<Clock::time_point> scheduled(options.total_jobs);
  std::vector<bool> seen(options.total_jobs, false);

  const Clock::time_point start = Clock::now();
  Clock::time_point last_reply = start;
  std::size_t next_send = 0;
  std::size_t completed = 0;
  bool sent_eof = false;

  const auto deadline_for = [&](std::size_t sent) {
    // Drain deadline: measured from the last SCHEDULED send (not the
    // last reply — a server that answers slowly must not extend its own
    // exam time indefinitely, only by the configured drain budget).
    const double last_offset = sent > 0 ? offsets[sent - 1] : 0.0;
    return start + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(
                           last_offset + options.drain_timeout_sec));
  };

  while (completed < next_send || next_send < offsets.size()) {
    const Clock::time_point now = Clock::now();

    // Send everything whose slot has arrived. The SCHEDULED time is
    // what latency is measured from — if this loop is late (we were
    // blocked in poll, or the socket back-pressured us), the delay
    // counts into the measurement instead of shifting the schedule.
    while (next_send < offsets.size() &&
           now >= start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  offsets[next_send]))) {
      scheduled[next_send] =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(offsets[next_send]));
      conn.send_line(make_line(next_send));
      ++next_send;
    }
    report.sent = next_send;

    if (!conn.pump_writes()) break;  // peer gone; report what we have
    // Schedule played out AND every queued byte flushed: half-close so
    // EOF ends the session (SHUT_WR before the flush would drop the
    // tail of the schedule).
    if (next_send == offsets.size() && !sent_eof &&
        conn.outbound_bytes() == 0) {
      conn.shutdown_write();
      sent_eof = true;
    }

    const auto ready_lines = conn.read_lines();
    const Clock::time_point arrival = Clock::now();
    for (const auto& line : ready_lines) {
      std::ptrdiff_t slot = -1;
      try {
        const util::JsonValue parsed = util::parse_json(line);
        if (const auto* id = parsed.find("id")) {
          slot = slot_from_id(id->as_string(), options.total_jobs);
        }
      } catch (const std::exception&) {
        slot = -1;  // bye/error lines: not a measured reply
      }
      if (slot < 0 || seen[static_cast<std::size_t>(slot)]) continue;
      seen[static_cast<std::size_t>(slot)] = true;
      ++completed;
      last_reply = arrival;
      latency.observe(std::chrono::duration<double, std::milli>(
                          arrival - scheduled[static_cast<std::size_t>(slot)])
                          .count());
    }
    if (conn.eof() && completed < next_send) break;  // server quit early
    if (arrival > deadline_for(next_send)) break;    // wedged server

    // Sleep in poll until the next scheduled send, a reply, or (while
    // the outbound queue is nonempty) writability.
    int wait_ms = 50;
    if (next_send < offsets.size()) {
      const auto until =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(offsets[next_send])) -
          Clock::now();
      const auto ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(until)
              .count();
      wait_ms = ms < 0 ? 0 : static_cast<int>(ms < 50 ? ms : 50);
    }
    pollfd pfd{conn.fd(),
               static_cast<short>(POLLIN |
                                  (conn.outbound_bytes() > 0 ? POLLOUT : 0)),
               0};
    ::poll(&pfd, 1, wait_ms);
  }

  report.completed = completed;
  report.seconds =
      std::chrono::duration<double>(last_reply - start).count();
  report.achieved_rate =
      report.seconds > 0 ? static_cast<double>(completed) / report.seconds
                         : 0.0;
  report.latency = latency.snapshot();
  return report;
}

std::string load_gen_report_json(const LoadGenReport& report) {
  util::JsonWriter json;
  json.field("rate_per_sec", report.offered_rate)
      .field("schedule", report.poisson ? "poisson" : "uniform")
      .field("sent", static_cast<std::uint64_t>(report.sent))
      .field("completed", static_cast<std::uint64_t>(report.completed))
      .field("completed_all", report.completed_all())
      .field("achieved_rate", report.achieved_rate)
      .field("seconds", report.seconds)
      .field("mean_ms", report.latency.mean())
      .field("p50_ms", report.latency.quantile(0.50))
      .field("p95_ms", report.latency.quantile(0.95))
      .field("p99_ms", report.latency.quantile(0.99))
      .field("p999_ms", report.latency.quantile(0.999));
  return json.str();
}

}  // namespace saim::bench
