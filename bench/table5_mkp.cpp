// Table V (paper): MKP results on classes 100-5, 100-10, 250-5 (10
// instances each). Columns: B&B time (the intlinprog stand-in), SAIM
// optimality %, best and average accuracy (feasibility %), and the
// Chu–Beasley GA baseline. Paper averages: SAIM best 99.7, avg 98.4
// (feasibility 5.1%), GA >= 99.1.
//
// Reference optimum per instance: branch & bound when it proves
// optimality within budget, otherwise the best feasible solution seen by
// any method ('*' marks unproven rows).
#include <cinttypes>

#include "bench_common.hpp"
#include "exact/mkp_branch_bound.hpp"
#include "ga/chu_beasley.hpp"

int main(int argc, char** argv) {
  using namespace saim;

  util::ArgParser args("table5_mkp",
                       "Table V reproduction: SAIM vs B&B and GA on MKP");
  args.add_flag("instances", "instances per class (paper: 10)", "1")
      .add_flag("runs", "SAIM iterations K (paper: 5000)", "2500")
      .add_flag("mcs", "MCS per run (paper: 1000)", "1000")
      .add_flag("ga-children", "GA non-duplicate children budget", "20000")
      .add_flag("bnb-seconds", "B&B time limit per instance", "20")
      .add_flag("seed", "base seed", "1");
  args.add_bool("full", "paper scale: 10 instances x 5000 runs");
  args.add_bool("skip-250", "skip the 250-item class (slowest)");
  if (!args.parse(argc, argv)) return 0;

  const bool full = args.get_bool("full");
  const std::size_t instances =
      full ? 10 : static_cast<std::size_t>(args.get_int("instances"));
  auto params = core::mkp_paper_params();
  params.runs = full ? 5000 : static_cast<std::size_t>(args.get_int("runs"));
  params.mcs_per_run = static_cast<std::size_t>(args.get_int("mcs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  exact::BnbOptions bnb_opts;
  bnb_opts.time_limit_seconds = static_cast<double>(
      args.get_int("bnb-seconds"));

  ga::GaOptions ga_opts;
  ga_opts.children =
      static_cast<std::size_t>(args.get_int("ga-children"));

  bench::print_banner(
      "Table V — MKP: SAIM vs B&B (reference) and Chu–Beasley GA", full,
      std::to_string(instances) + " instances/class, " +
          std::to_string(params.runs) + " SAIM runs, GA " +
          std::to_string(ga_opts.children) + " children");

  std::printf("%-10s | %8s %5s | %7s %8s %8s %6s | %7s\n", "instance",
              "B&B(s)", "opt?", "opt't%", "SAIMbst", "SAIMavg", "feas%",
              "GAavg");
  bench::print_rule(88);

  struct Class {
    std::size_t n;
    std::size_t m;
  };
  std::vector<Class> classes = {{100, 5}, {100, 10}};
  if (!args.get_bool("skip-250")) classes.push_back({250, 5});

  util::RunningStats saim_best_all;
  util::RunningStats saim_avg_all;
  util::RunningStats ga_all;
  util::RunningStats optimality_all;

  for (const auto& cls : classes) {
    for (std::size_t k = 1; k <= instances; ++k) {
      const auto inst =
          problems::make_paper_mkp(cls.n, cls.m, static_cast<int>(k));

      // --- B&B reference (intlinprog stand-in).
      const auto bnb = exact::solve_mkp_bnb(inst, bnb_opts);

      // --- SAIM.
      const auto saim = bench::run_saim_mkp(inst, params, seed + k);

      // --- Chu–Beasley GA.
      ga::GaOptions g = ga_opts;
      g.seed = seed + k + 404;
      const auto ga_result = ga::solve_mkp_ga(inst, g);

      const double reference = bench::best_known(
          {-static_cast<double>(bnb.best_profit),
           saim.found_feasible ? saim.best_cost : 0.0,
           -static_cast<double>(ga_result.best_profit)});

      const auto s = bench::score_against(saim, reference);
      const double ga_acc = core::accuracy_percent(
          -static_cast<double>(ga_result.best_profit), reference);
      const double optimality = saim.optimality_percent(reference);

      std::printf("%-10s | %8.1f %4s%s | %6.1f%% %8.2f %8.2f %5.1f%% | "
                  "%7.2f\n",
                  inst.name().c_str(), bnb.seconds,
                  bnb.proven_optimal ? "yes" : "no",
                  bnb.proven_optimal ? " " : "*", optimality,
                  s.best_accuracy, s.avg_accuracy, 100.0 * s.feasibility,
                  ga_acc);

      saim_best_all.add(s.best_accuracy);
      saim_avg_all.add(s.avg_accuracy);
      ga_all.add(ga_acc);
      optimality_all.add(optimality);
    }
  }

  bench::print_rule(88);
  std::printf("averages: optimality %.1f%%, SAIM best %.2f, SAIM avg %.2f, "
              "GA %.2f\n",
              optimality_all.mean(), saim_best_all.mean(),
              saim_avg_all.mean(), ga_all.mean());
  std::printf("paper (Table V averages): optimality 0.9%%, SAIM best 99.7, "
              "SAIM avg 98.4 (feas 5.1%%), GA >= 99.1\n");
  std::printf("'*' = B&B budget tripped; reference is best-known, not "
              "proven optimal.\n");
  return 0;
}
