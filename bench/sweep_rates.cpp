// Standalone sweep-throughput report: times the recompute / incremental /
// SIMD-vectorized / bit-sliced sweep engines on the paper's density-0.25
// QKP-200 Ising model and on a sparse ±1 spin glass, and writes
// BENCH_sweep.json. Deliberately free of the google-benchmark dependency
// so CI can always build it and gate on the numbers; the exploratory
// micro benchmarks live in bench/micro_ops.cpp.
//
// Usage: bench_sweep_rates [output.json]
#include <cstdio>

#include "sweep_common.hpp"

namespace {

using namespace saim;
using namespace saim::benchfix;

int write_bench_sweep_json(const char* path) {
  const auto inst = bench_instance(200, 25);
  const auto mapping = problems::qkp_to_problem(inst);
  lagrange::LagrangianModel model(mapping.problem, 2.0);
  const ising::IsingModel& ising = model.ising();
  const ising::Adjacency adj(ising);

  const double beta_early = 0.1;  // start of the paper's linear ramp
  const double beta_late = 5.0;   // deep anneal, near-frozen dynamics
  const std::size_t burn_in = 300;
  const std::size_t timed = 2000;

  const SweepRates early =
      measure_sweep_rates(ising, adj, beta_early, burn_in, timed);
  const SweepRates late =
      measure_sweep_rates(ising, adj, beta_late, burn_in, timed);

  // Bit-sliced engine: aggregate per-replica rates at 1 lane (pure SIMD
  // kernels, no word parallelism), 32 lanes (the run_batch dispatch
  // threshold) and a full 64-lane word.
  struct SlicedPhase {
    double beta;
    double vectorized;   // 1 lane
    double replicas32;   // half word
    double replicas64;   // full word
  };
  const auto sliced_phase = [&](double beta) {
    SlicedPhase p;
    p.beta = beta;
    p.vectorized = measure_bitsliced_rate(ising, adj, beta, burn_in, timed, 1);
    p.replicas32 =
        measure_bitsliced_rate(ising, adj, beta, burn_in, timed, 32);
    p.replicas64 =
        measure_bitsliced_rate(ising, adj, beta, burn_in, timed, 64);
    return p;
  };
  const SlicedPhase sliced_early = sliced_phase(beta_early);
  const SlicedPhase sliced_late = sliced_phase(beta_late);

  const double bitsliced_speedup_early =
      sliced_early.replicas64 / early.incremental_sweeps_per_sec;
  const double bitsliced_speedup_late =
      sliced_late.replicas64 / late.incremental_sweeps_per_sec;

  // Production scalar engine vs the bit-sliced engine over the full anneal
  // ramp at a 64-replica batch, on the dense QKP Lagrangian.
  const std::size_t agg_sweeps = 1000;
  const std::size_t agg_replicas = 64;
  const AggregateRates aggregate =
      measure_anneal_aggregate(ising, adj, beta_late, agg_sweeps,
                               agg_replicas);

  // Headline number (and the CI floor): fixed-beta sweep throughput on a
  // sparse spin glass, the regime the word-parallel engine is built for.
  // The dense Lagrangian numbers above stay in the file — they are
  // bounded by apply-flips memory traffic (a 4-lane plane walk fires when
  // ANY of its lanes flips, ~4x the scalar engine's bytes per lane at
  // uncorrelated flip rates), not by the sweep kernels.
  const ising::IsingModel glass = sparse_glass(512, 11);
  const ising::Adjacency glass_adj(glass);
  const SweepRates glass_late =
      measure_sweep_rates(glass, glass_adj, beta_late, burn_in, timed);
  const double glass_bitsliced32 = measure_bitsliced_rate(
      glass, glass_adj, beta_late, burn_in, timed, 32);
  const double glass_bitsliced64 = measure_bitsliced_rate(
      glass, glass_adj, beta_late, burn_in, timed, 64);
  const double glass_speedup_late32 =
      glass_bitsliced32 / glass_late.incremental_sweeps_per_sec;
  const double glass_speedup_late =
      glass_bitsliced64 / glass_late.incremental_sweeps_per_sec;
  const AggregateRates glass_aggregate = measure_anneal_aggregate(
      glass, glass_adj, beta_late, agg_sweeps, agg_replicas);

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  const auto phase_json = [&](const char* name, const SweepRates& rates,
                              const SlicedPhase& sliced, double speedup64,
                              const char* trailer) {
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"beta\": %.3f, "
                 "\"recompute_sweeps_per_sec\": %.1f, "
                 "\"incremental_sweeps_per_sec\": %.1f, "
                 "\"speedup\": %.3f,\n",
                 name, sliced.beta, rates.recompute_sweeps_per_sec,
                 rates.incremental_sweeps_per_sec, rates.speedup());
    std::fprintf(f,
                 "     \"vectorized_sweeps_per_sec\": %.1f, "
                 "\"bitsliced32_replica_sweeps_per_sec\": %.1f, "
                 "\"bitsliced64_replica_sweeps_per_sec\": %.1f, "
                 "\"bitsliced_speedup\": %.3f}%s\n",
                 sliced.vectorized, sliced.replicas32, sliced.replicas64,
                 speedup64, trailer);
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"instance\": \"qkp_n200_density25\",\n");
  std::fprintf(f, "  \"spins\": %zu,\n", ising.n());
  std::fprintf(f, "  \"edges\": %zu,\n", adj.edge_count());
  std::fprintf(f, "  \"dynamics\": \"metropolis\",\n");
  std::fprintf(f, "  \"timed_sweeps\": %zu,\n", timed);
  std::fprintf(f, "  \"phases\": [\n");
  phase_json("early", early, sliced_early, bitsliced_speedup_early, ",");
  phase_json("late", late, sliced_late, bitsliced_speedup_late, "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"bitsliced_aggregate\": {\"replicas\": %zu, "
               "\"sweeps\": %zu, \"schedule\": \"linear_beta_0_to_%.1f\", "
               "\"scalar_replica_sweeps_per_sec\": %.1f, "
               "\"bitsliced_replica_sweeps_per_sec\": %.1f, "
               "\"speedup\": %.3f},\n",
               agg_replicas, agg_sweeps, beta_late,
               aggregate.scalar_replica_sweeps_per_sec,
               aggregate.bitsliced_replica_sweeps_per_sec,
               aggregate.speedup());
  std::fprintf(f,
               "  \"sparse_glass\": {\"instance\": \"spin_glass_n512_deg6\", "
               "\"spins\": %zu, \"edges\": %zu,\n",
               glass.n(), glass_adj.edge_count());
  std::fprintf(f,
               "    \"incremental_sweeps_per_sec\": %.1f, "
               "\"bitsliced32_replica_sweeps_per_sec\": %.1f, "
               "\"bitsliced64_replica_sweeps_per_sec\": %.1f,\n",
               glass_late.incremental_sweeps_per_sec, glass_bitsliced32,
               glass_bitsliced64);
  std::fprintf(f,
               "    \"bitsliced_speedup_late32\": %.3f, "
               "\"bitsliced_speedup_late\": %.3f,\n",
               glass_speedup_late32, glass_speedup_late);
  std::fprintf(f,
               "    \"scalar_anneal_replica_sweeps_per_sec\": %.1f, "
               "\"bitsliced_anneal_replica_sweeps_per_sec\": %.1f, "
               "\"bitsliced_aggregate_speedup\": %.3f},\n",
               glass_aggregate.scalar_replica_sweeps_per_sec,
               glass_aggregate.bitsliced_replica_sweeps_per_sec,
               glass_aggregate.speedup());
  std::fprintf(f, "  \"speedup_early\": %.3f,\n", early.speedup());
  std::fprintf(f, "  \"speedup_late\": %.3f,\n", late.speedup());
  std::fprintf(f, "  \"bitsliced_speedup_early\": %.3f,\n",
               bitsliced_speedup_early);
  std::fprintf(f, "  \"bitsliced_speedup_late\": %.3f,\n",
               bitsliced_speedup_late);
  std::fprintf(f, "  \"bitsliced_aggregate_speedup\": %.3f,\n",
               aggregate.speedup());
  std::fprintf(f, "  \"bitsliced_sparse_speedup_late\": %.3f,\n",
               glass_speedup_late);
  std::fprintf(f, "  \"bitsliced_sparse_aggregate_speedup\": %.3f\n",
               glass_aggregate.speedup());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "%s: incremental early %.2fx late %.2fx | "
      "bit-sliced x64 dense early %.2fx late %.2fx aggregate %.2fx | "
      "sparse late x32 %.2fx x64 %.2fx aggregate %.2fx\n",
      path, early.speedup(), late.speedup(), bitsliced_speedup_early,
      bitsliced_speedup_late, aggregate.speedup(), glass_speedup_late32,
      glass_speedup_late, glass_aggregate.speedup());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_sweep.json";
  return write_bench_sweep_json(path);
}
