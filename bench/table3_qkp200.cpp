// Table III (paper): QKP results for 200 variables, densities 25/50/75/100,
// 10 instances each. Columns: Optimality %, SAIM avg accuracy (feasibility),
// SAIM best accuracy. The paper's "best SA [16]" (96.7 avg best) and
// "PT-DA [17]" (90.9) columns are literature numbers; the in-repo
// same-budget penalty method is printed as the measurable baseline.
// Paper headline: SAIM average best accuracy 99.2, above both baselines.
#include "qkp_table_bench.hpp"

int main(int argc, char** argv) {
  using namespace saim;

  util::ArgParser args("table3_qkp200",
                       "Table III reproduction: SAIM on QKP N=200");
  args.add_flag("instances", "instances per density (paper: 10)", "2")
      .add_flag("runs", "SAIM iterations K (paper: 2000)", "800")
      .add_flag("mcs", "MCS per run (paper: 1000)", "1000")
      .add_flag("seed", "base seed", "1");
  args.add_bool("full", "paper scale: 10 instances x 2000 runs");
  if (!args.parse(argc, argv)) return 0;

  const bool full = args.get_bool("full");
  bench::QkpTableConfig config;
  config.n = 200;
  config.densities = {25, 50, 75, 100};
  config.instances_per_density =
      full ? 10 : static_cast<std::size_t>(args.get_int("instances"));
  config.params = core::qkp_paper_params();
  config.params.runs =
      full ? 2000 : static_cast<std::size_t>(args.get_int("runs"));
  config.params.mcs_per_run =
      static_cast<std::size_t>(args.get_int("mcs"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner("Table III — QKP N=200 (paper: SAIM avg best 99.2, "
                      "best SA 96.7, PT-DA 90.9)",
                      full,
                      std::to_string(config.instances_per_density) +
                          " instances/density, " +
                          std::to_string(config.params.runs) + " runs");
  bench::run_qkp_table("Table III", config);
  return 0;
}
