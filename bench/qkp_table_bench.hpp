// Shared runner for Tables III and IV: SAIM on QKP at a fixed size over
// several density classes, reporting the paper's columns —
// optimality % (fraction of feasible samples that hit the best-known
// reference), average accuracy of feasible samples (with feasibility %),
// and best accuracy. The "best SA [16]" and "PT-DA [17]" columns of the
// paper are literature numbers from closed systems; the comparable in-repo
// baseline is the same-budget penalty method, printed alongside.
#pragma once

#include <cinttypes>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace saim::bench {

struct QkpTableConfig {
  std::size_t n = 200;
  std::vector<int> densities;
  std::size_t instances_per_density = 3;
  core::ExperimentParams params;  ///< runs/mcs possibly downscaled
  std::uint64_t seed = 1;
  bool with_penalty_baseline = true;
};

inline void run_qkp_table(const std::string& title,
                          const QkpTableConfig& config) {
  std::printf("%-12s | %8s %8s %7s %8s | %8s %7s\n", "instance", "opt't%",
              "SAIMavg", "feas%", "SAIMbst", "PENbst", "feas%");
  print_rule(84);

  util::RunningStats opt_all;
  util::RunningStats avg_all;
  util::RunningStats best_all;
  util::RunningStats pen_all;
  std::vector<double> best_accuracies;

  for (const int density : config.densities) {
    for (std::size_t k = 1; k <= config.instances_per_density; ++k) {
      const auto inst = problems::make_paper_qkp(config.n, density,
                                                 static_cast<int>(k));

      const auto saim =
          run_saim_qkp(inst, config.params, config.seed + k);

      core::SolveResult penalty;
      if (config.with_penalty_baseline) {
        penalty = run_penalty_qkp(inst, config.params,
                                  config.params.penalty_alpha,
                                  config.params.runs,
                                  config.params.mcs_per_run,
                                  config.seed + k + 777);
      }

      const double reference = best_known(
          {saim.found_feasible ? saim.best_cost : 0.0,
           penalty.found_feasible ? penalty.best_cost : 0.0,
           greedy_reference_qkp(inst)});

      const auto s = score_against(saim, reference);
      const auto p = score_against(penalty, reference);

      // Optimality: fraction of feasible samples whose cost equals the
      // reference (the paper's "ratio of optimal solutions over feasible
      // solutions").
      const double optimality = saim.optimality_percent(reference);

      std::printf("%-12s | %7.1f%% %8.1f %6.0f%% %8.1f | %8.1f %6.0f%%\n",
                  inst.name().c_str(), optimality, s.avg_accuracy,
                  100.0 * s.feasibility, s.best_accuracy, p.best_accuracy,
                  100.0 * p.feasibility);

      opt_all.add(optimality);
      avg_all.add(s.avg_accuracy);
      best_all.add(s.best_accuracy);
      if (config.with_penalty_baseline) pen_all.add(p.best_accuracy);
      best_accuracies.push_back(s.best_accuracy);
    }
  }

  print_rule(84);
  std::printf("%s averages: optimality %.1f%%, SAIM avg %.1f, SAIM best "
              "%.1f, penalty best %.1f\n",
              title.c_str(), opt_all.mean(), avg_all.mean(), best_all.mean(),
              pen_all.mean());
  const auto q = util::summarize(best_accuracies);
  std::printf("SAIM best-accuracy quartiles: %s\n",
              util::format_summary(q).c_str());
}

}  // namespace saim::bench
