// Open-loop load generator for the saim_serve TCP front door.
//
// Closed-loop benches (submit everything, wait) measure service time but
// hide queueing delay: a slow reply delays the NEXT request, so the
// generator involuntarily backs off exactly when the server struggles —
// the classic coordinated-omission blind spot. This generator is
// open-loop: a fixed arrival schedule (Poisson or uniform) is computed up
// front, each job is SENT when its slot arrives regardless of how many
// replies are outstanding, and each job's latency is measured from its
// SCHEDULED send time — queueing behind a saturated server (including
// time spent in our own outbound buffer when the socket blocks) counts
// against the server, never silently dropped.
//
// One thread drives one non-blocking net::Connection through poll():
// wake at the next scheduled send or on socket readiness, send what is
// due, read what arrived. The driven server must be in --stream mode
// (results return in completion order, matched back by id).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "obs/metrics.hpp"

namespace saim::bench {

struct LoadGenOptions {
  double rate_per_sec = 100.0;  ///< offered arrival rate
  std::size_t total_jobs = 200;
  /// true: exponential inter-arrivals (Poisson process, the open-loop
  /// default — bursts probe queueing); false: uniform spacing.
  bool poisson = true;
  std::uint64_t seed = 1;  ///< schedule RNG seed (reproducible arrivals)
  /// Give up (reporting what completed) this long after the LAST
  /// scheduled send. Bounds a wedged-server run, not the schedule.
  double drain_timeout_sec = 60.0;
};

struct LoadGenReport {
  double offered_rate = 0.0;  ///< options.rate_per_sec
  bool poisson = true;
  std::size_t sent = 0;
  std::size_t completed = 0;
  double seconds = 0.0;        ///< first scheduled send -> last reply
  double achieved_rate = 0.0;  ///< completed / seconds
  /// Per-job ms from SCHEDULED send time to reply arrival.
  obs::HistogramSnapshot latency;

  [[nodiscard]] bool completed_all() const { return completed == sent; }
};

/// Produces the JSONL job line for schedule slot `index`. The line's
/// "id" field MUST be exactly "ol<index>" — that is how replies are
/// matched back to their scheduled send time.
using JobLineFn = std::function<std::string(std::size_t index)>;

/// Runs one open-loop wave against a saim_serve --listen --stream server.
/// Connects, plays the whole schedule, half-closes, drains replies.
/// Throws std::runtime_error when the connection cannot be established.
LoadGenReport run_open_loop(const std::string& host, int port,
                            const LoadGenOptions& options,
                            const JobLineFn& make_line);

/// The report as a JSON object for BENCH_service.json's "open_loop"
/// rows: rate_per_sec, schedule, sent, completed, achieved_rate,
/// seconds, and p50/p95/p99/p99.9 (+ mean) of the scheduled-send
/// latency.
std::string load_gen_report_json(const LoadGenReport& report);

}  // namespace saim::bench
