// Shared fixtures and measurement helpers for the sweep-throughput
// benchmarks. Used by both bench/micro_ops.cpp (google-benchmark
// micro benchmarks) and bench/sweep_rates.cpp (the standalone
// BENCH_sweep.json writer, deliberately free of the google-benchmark
// dependency so CI can always build and run it).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "anneal/backend.hpp"
#include "anneal/simulated_annealing.hpp"
#include "anneal/slice_driver.hpp"
#include "ising/adjacency.hpp"
#include "ising/bitslice.hpp"
#include "ising/ising_model.hpp"
#include "ising/local_field.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "pbit/schedule.hpp"
#include "problems/qkp.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace saim::benchfix {

/// Keeps a value (and everything reachable from it) alive past the
/// optimizer, like benchmark::DoNotOptimize but dependency-free.
template <typename T>
inline void keep(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

inline problems::QkpInstance bench_instance(std::size_t n, int density) {
  return problems::make_paper_qkp(n, density, 1);
}

// Both sweep variants run identical Metropolis dynamics; the only
// difference is how the local field I_i is obtained: a fresh CSR scan per
// visit (O(deg), the pre-LocalFieldState code path) vs an O(1) read from
// the incrementally maintained engine. The gap is largest at late-anneal
// betas where hardly anything flips, which is where SAIM spends most of
// its MCS budget.

inline void recompute_sweep(const ising::IsingModel& model,
                            const ising::Adjacency& adj, ising::Spins& m,
                            double beta, util::Xoshiro256pp& rng) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double in = adj.coupling_input(m, i) + model.field(i);
    const double delta = 2.0 * static_cast<double>(m[i]) * in;
    if (delta <= 0.0 || rng.uniform01() < std::exp(-beta * delta)) {
      m[i] = static_cast<std::int8_t>(-m[i]);
    }
  }
}

inline void incremental_sweep(ising::LocalFieldState& lfs, ising::Spins& m,
                              double beta, util::Xoshiro256pp& rng) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double delta = lfs.flip_delta(m, i);
    if (delta <= 0.0 || rng.uniform01() < std::exp(-beta * delta)) {
      lfs.flip(m, i);
    }
  }
}

struct SweepRates {
  double recompute_sweeps_per_sec = 0.0;
  double incremental_sweeps_per_sec = 0.0;
  [[nodiscard]] double speedup() const {
    return incremental_sweeps_per_sec / recompute_sweeps_per_sec;
  }
};

/// Best-of-N wall-clock rate: the box running CI is shared, so a single
/// timed block can absorb another tenant's burst; the fastest repeat is
/// the least-contended estimate.
template <typename Fn>
inline double best_rate(std::size_t repeats, Fn&& timed_run) {
  double best = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    best = std::max(best, timed_run());
  }
  return best;
}

inline constexpr std::size_t kBenchRepeats = 3;

inline SweepRates measure_sweep_rates(const ising::IsingModel& model,
                                      const ising::Adjacency& adj,
                                      double beta, std::size_t burn_in,
                                      std::size_t timed) {
  // Equilibrate at the target beta so both variants see realistic flip
  // rates, then time each from the same configuration.
  util::Xoshiro256pp rng(42);
  ising::Spins m(model.n());
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  ising::LocalFieldState lfs(model, adj);
  lfs.reset(m);
  for (std::size_t t = 0; t < burn_in; ++t) {
    incremental_sweep(lfs, m, beta, rng);
  }

  SweepRates rates;
  rates.recompute_sweeps_per_sec = best_rate(kBenchRepeats, [&] {
    ising::Spins state = m;
    util::Xoshiro256pp sweep_rng(7);
    util::WallTimer timer;
    for (std::size_t t = 0; t < timed; ++t) {
      recompute_sweep(model, adj, state, beta, sweep_rng);
    }
    const double rate = static_cast<double>(timed) / timer.seconds();
    keep(state.data());
    return rate;
  });
  rates.incremental_sweeps_per_sec = best_rate(kBenchRepeats, [&] {
    ising::Spins state = m;
    ising::LocalFieldState timed_lfs(model, adj);
    timed_lfs.reset(state);
    util::Xoshiro256pp sweep_rng(7);
    util::WallTimer timer;
    for (std::size_t t = 0; t < timed; ++t) {
      incremental_sweep(timed_lfs, state, beta, sweep_rng);
    }
    const double rate = static_cast<double>(timed) / timer.seconds();
    keep(state.data());
    return rate;
  });
  return rates;
}

// Aggregate per-replica sweep rate of the bit-sliced engine: `replicas`
// lanes advance together, so the per-replica rate is replicas * sweeps /
// wall time. Lanes start from the same equilibrated configuration (their
// trajectories diverge immediately through per-lane RNG streams), matching
// the flip-rate regime the scalar measurement sees. replicas == 1 times
// the SIMD-vectorized sweep kernels without any word-level parallelism.
inline double measure_bitsliced_rate(const ising::IsingModel& model,
                                     const ising::Adjacency& adj,
                                     double beta, std::size_t burn_in,
                                     std::size_t timed,
                                     std::size_t replicas) {
  util::Xoshiro256pp rng(42);
  ising::Spins m(model.n());
  for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
  ising::LocalFieldState lfs(model, adj);
  lfs.reset(m);
  for (std::size_t t = 0; t < burn_in; ++t) {
    incremental_sweep(lfs, m, beta, rng);
  }

  std::vector<ising::SliceLane> lanes(replicas);
  const double energy = model.energy(m);
  for (std::size_t r = 0; r < replicas; ++r) {
    lanes[r].spins = m;
    lanes[r].energy = energy;
    lanes[r].fields = model.fields().data();
    lanes[r].rng = util::Xoshiro256pp(util::derive_seed(7, r)).state();
  }
  const std::vector<double> betas(timed, beta);
  ising::SliceOptions so;
  so.dynamics = ising::SliceDynamics::kMetropolis;
  so.betas = betas;
  so.track_best = false;

  const ising::BitSliceEngine engine(adj);
  return best_rate(kBenchRepeats, [&] {
    util::WallTimer timer;
    auto results = engine.run(lanes, so);
    const double rate =
        static_cast<double>(replicas * timed) / timer.seconds();
    keep(results.data());
    return rate;
  });
}

// Production-engine aggregate: MetropolisSa::run_from (the scalar
// incremental engine, best-tracking on) vs the bit-sliced engine running
// the same replicas word-parallel — both over the paper's linear anneal
// ramp, both through the run_batch seeding contract
// (Xoshiro256pp(derive_seed(base, r)) per replica). This is the number
// the run_batch dispatch at >= kBitsliceMinReplicas actually buys.
struct AggregateRates {
  double scalar_replica_sweeps_per_sec = 0.0;
  double bitsliced_replica_sweeps_per_sec = 0.0;
  [[nodiscard]] double speedup() const {
    return bitsliced_replica_sweeps_per_sec / scalar_replica_sweeps_per_sec;
  }
};

inline AggregateRates measure_anneal_aggregate(
    const ising::IsingModel& model, const ising::Adjacency& adj,
    double beta_end, std::size_t sweeps, std::size_t replicas) {
  const pbit::Schedule schedule = pbit::Schedule::linear(beta_end);
  const std::uint64_t base = 99;

  anneal::SaOptions sa_opts;
  sa_opts.sweeps = sweeps;
  sa_opts.track_best = true;
  const anneal::MetropolisSa sa(model);
  // One full scalar replica per repeat is enough to estimate the
  // per-replica rate; running all 64 scalar replicas would just burn CI
  // minutes re-measuring the same loop.
  AggregateRates rates;
  rates.scalar_replica_sweeps_per_sec = best_rate(kBenchRepeats, [&] {
    util::Xoshiro256pp replica_rng(util::derive_seed(base, 0));
    ising::Spins start(model.n());
    for (auto& s : start) s = replica_rng.bernoulli(0.5) ? 1 : -1;
    util::WallTimer timer;
    auto result = sa.run_from(std::move(start), schedule, sa_opts,
                              replica_rng);
    const double rate = static_cast<double>(sweeps) / timer.seconds();
    keep(result.best_energy);
    return rate;
  });

  const std::vector<double> betas = anneal::make_beta_table(schedule, sweeps);
  ising::SliceOptions so;
  so.dynamics = ising::SliceDynamics::kMetropolis;
  so.betas = betas;
  so.track_best = true;
  rates.bitsliced_replica_sweeps_per_sec = best_rate(kBenchRepeats, [&] {
    anneal::SlicePlan plan =
        anneal::make_slice_plan(model, base, replicas, {});
    util::WallTimer timer;
    auto results = anneal::run_slice_plans(adj, {&plan, 1}, so);
    const double rate =
        static_cast<double>(replicas * sweeps) / timer.seconds();
    keep(results.front().data());
    return rate;
  });
  return rates;
}

// Sparse ±1 spin glass, ~deg-6, with half-integer fields so no spin ever
// sees an exactly-zero local field (no delta == 0 plateau oscillation).
// Dense Lagrangian models keep the bit-sliced engine memory-bound in
// apply-flips; sparse couplings are where the word-level parallelism pays
// in full, and they are the standard Ising-machine sweep benchmark.
inline ising::IsingModel sparse_glass(std::size_t n, std::uint64_t seed) {
  ising::IsingModel model(n);
  util::Xoshiro256pp rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    // Ring edge + two random chords: average degree ~6.
    model.add_coupling(i, (i + 1) % n, rng.bernoulli(0.5) ? 1.0 : -1.0);
    for (int c = 0; c < 2; ++c) {
      const std::size_t j = rng.below(n);
      if (j != i) {
        model.add_coupling(i, j, rng.bernoulli(0.5) ? 1.0 : -1.0);
      }
    }
    model.add_field(i, rng.bernoulli(0.5) ? 0.5 : -0.5);
  }
  return model;
}

}  // namespace saim::benchfix
