// Table IV (paper): QKP results for 300 variables, densities 25/50,
// ~10 instances each. Paper averages: optimality 5.4%, SAIM avg 99.2
// (feasibility 43%), vs best SA 94.9 and PT-DA 83.3.
#include "qkp_table_bench.hpp"

int main(int argc, char** argv) {
  using namespace saim;

  util::ArgParser args("table4_qkp300",
                       "Table IV reproduction: SAIM on QKP N=300");
  args.add_flag("instances", "instances per density (paper: ~10)", "2")
      .add_flag("runs", "SAIM iterations K (paper: 2000)", "600")
      .add_flag("mcs", "MCS per run (paper: 1000)", "1000")
      .add_flag("seed", "base seed", "1");
  args.add_bool("full", "paper scale: 10 instances x 2000 runs");
  if (!args.parse(argc, argv)) return 0;

  const bool full = args.get_bool("full");
  bench::QkpTableConfig config;
  config.n = 300;
  config.densities = {25, 50};
  config.instances_per_density =
      full ? 10 : static_cast<std::size_t>(args.get_int("instances"));
  config.params = core::qkp_paper_params();
  config.params.runs =
      full ? 2000 : static_cast<std::size_t>(args.get_int("runs"));
  config.params.mcs_per_run =
      static_cast<std::size_t>(args.get_int("mcs"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner("Table IV — QKP N=300 (paper: SAIM avg best 99.2, "
                      "best SA 94.9, PT-DA 83.3)",
                      full,
                      std::to_string(config.instances_per_density) +
                          " instances/density, " +
                          std::to_string(config.params.runs) + " runs");
  bench::run_qkp_table("Table IV", config);
  return 0;
}
