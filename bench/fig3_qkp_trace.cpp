// Fig. 3 (paper): SAIM convergence trace on QKP instance 300-50-8.
//   3a: knapsack cartoon (no data)
//   3b: cost of the measured sample per iteration, colored by feasibility —
//       unfeasible samples with cost < OPT during the lambda transient,
//       then feasible near-optimal samples once lambda stabilizes.
//   3c: the Lagrange multiplier staircase converging to lambda*.
// Penalty P = 2dN (printed, ~313 in the paper).
//
// Output: a textual summary of both panels plus CSV files with the full
// per-iteration series (cost, feasibility, lambda).
#include <algorithm>
#include <cinttypes>

#include "bench_common.hpp"
#include "core/result.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "util/csv.hpp"

namespace {

using namespace saim;

void print_series_summary(const std::vector<core::IterationRecord>& history,
                          double reference) {
  // Compress the trace into windows: feasibility and cost percentiles per
  // window — the shape of Fig. 3b in text form.
  const std::size_t windows = 10;
  const std::size_t per = std::max<std::size_t>(1, history.size() / windows);
  std::printf("%10s %12s %12s %10s %12s\n", "iter-range", "min-cost",
              "med-cost", "feas%", "lambda");
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t lo = w * per;
    const std::size_t hi = std::min(history.size(), lo + per);
    if (lo >= hi) break;
    std::vector<double> costs;
    std::size_t feasible = 0;
    double lambda_end = 0.0;
    for (std::size_t k = lo; k < hi; ++k) {
      costs.push_back(history[k].sample_cost);
      if (history[k].feasible) ++feasible;
      lambda_end = history[k].lambda.empty() ? 0.0 : history[k].lambda[0];
    }
    std::sort(costs.begin(), costs.end());
    std::printf("%4zu-%-5zu %12.0f %12.0f %9.1f%% %12.3f\n", lo, hi - 1,
                costs.front(), costs[costs.size() / 2],
                100.0 * static_cast<double>(feasible) /
                    static_cast<double>(hi - lo),
                lambda_end);
  }
  std::printf("reference (best-known) cost: %.0f\n", reference);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("fig3_qkp_trace",
                       "Fig. 3 reproduction: SAIM cost + lambda trace on a "
                       "QKP instance (paper: 300-50-8)");
  args.add_flag("n", "instance size N", "300")
      .add_flag("density", "W density in percent", "50")
      .add_flag("index", "instance index k of N-d-k", "8")
      .add_flag("runs", "SAIM iterations K (paper: 2000)", "600")
      .add_flag("mcs", "MCS per SA run (paper: 1000)", "1000")
      .add_flag("seed", "solver seed", "1")
      .add_flag("csv", "output CSV path ('' = skip)", "fig3_trace.csv");
  args.add_bool("full", "use the paper-scale run count (2000)");
  if (!args.parse(argc, argv)) return 0;

  auto params = core::qkp_paper_params();
  params.runs = args.get_bool("full") ? 2000
                                      : static_cast<std::size_t>(
                                            args.get_int("runs"));
  params.mcs_per_run = static_cast<std::size_t>(args.get_int("mcs"));

  const auto inst = problems::make_paper_qkp(
      static_cast<std::size_t>(args.get_int("n")),
      static_cast<int>(args.get_int("density")),
      static_cast<int>(args.get_int("index")));

  const auto mapping = problems::qkp_to_problem(inst);
  const double penalty =
      lagrange::heuristic_penalty(mapping.problem, params.penalty_alpha);

  bench::print_banner(
      "Fig. 3 — SAIM trace on QKP " + inst.name(),
      args.get_bool("full"),
      "runs=" + std::to_string(params.runs) + ", MCS/run=" +
          std::to_string(params.mcs_per_run));
  std::printf("P = 2dN = %.0f (paper reports 313 for 300-50-8)\n\n", penalty);

  util::WallTimer timer;
  const auto result = bench::run_saim_qkp(
      inst, params, static_cast<std::uint64_t>(args.get_int("seed")),
      /*record_history=*/true);

  const double reference =
      bench::best_known({result.found_feasible ? result.best_cost : 0.0,
                         bench::greedy_reference_qkp(inst)});

  std::printf("-- Fig. 3b: cost of measured samples (windowed) --\n");
  print_series_summary(result.history, reference);

  std::printf("\n-- Fig. 3c: lambda staircase --\n");
  std::printf("lambda starts at 0, ends at %.3f\n",
              result.history.empty() || result.history.back().lambda.empty()
                  ? 0.0
                  : result.history.back().lambda.back());
  std::size_t first_feasible = result.history.size();
  for (std::size_t k = 0; k < result.history.size(); ++k) {
    if (result.history[k].feasible) {
      first_feasible = k;
      break;
    }
  }
  if (first_feasible < result.history.size()) {
    std::printf("first feasible sample at iteration %zu "
                "(the paper's transient ends near iteration ~300)\n",
                first_feasible);
  } else {
    std::printf("no feasible sample found — increase --runs\n");
  }
  std::printf("feasible samples: %zu / %zu (%.1f%%)\n", result.feasible_count,
              result.total_runs, 100.0 * result.feasibility_rate());
  if (result.found_feasible) {
    std::printf("best feasible cost: %.0f (accuracy vs best-known: %.2f%%)\n",
                result.best_cost,
                core::accuracy_percent(result.best_cost, reference));
  }
  std::printf("total MCS: %zu, wall time: %.1fs\n", result.total_sweeps,
              timer.seconds());

  const std::string csv_path = args.get("csv");
  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    core::write_history_csv(csv, result.history);
    std::printf("full per-iteration series written to %s\n",
                csv_path.c_str());
  }
  return 0;
}
