// Fig. 5 (paper): SAIM convergence trace on MKP instance 250-5-8 with a
// fixed P = 5dN (~10 in the paper's normalization).
//   5a: sample cost per iteration — initially all unfeasible (A x > B),
//       turning feasible near-optimal after ~1000 lambda updates.
//   5b: the five Lagrange multipliers growing from 0 and stabilizing.
#include <algorithm>
#include <cinttypes>

#include "bench_common.hpp"
#include "core/result.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace saim;

  util::ArgParser args("fig5_mkp_trace",
                       "Fig. 5 reproduction: SAIM cost + lambda traces on an "
                       "MKP instance (paper: 250-5-8)");
  args.add_flag("n", "items N", "250")
      .add_flag("m", "knapsacks M", "5")
      .add_flag("index", "instance index k of N-M-k", "8")
      .add_flag("runs", "SAIM iterations K (paper: 5000)", "800")
      .add_flag("mcs", "MCS per SA run (paper: 1000)", "1000")
      .add_flag("seed", "solver seed", "1")
      .add_flag("csv", "output CSV path ('' = skip)", "fig5_trace.csv");
  args.add_bool("full", "paper-scale run count (5000)");
  if (!args.parse(argc, argv)) return 0;

  auto params = core::mkp_paper_params();
  params.runs = args.get_bool("full") ? 5000
                                      : static_cast<std::size_t>(
                                            args.get_int("runs"));
  params.mcs_per_run = static_cast<std::size_t>(args.get_int("mcs"));

  const auto inst = problems::make_paper_mkp(
      static_cast<std::size_t>(args.get_int("n")),
      static_cast<std::size_t>(args.get_int("m")),
      static_cast<int>(args.get_int("index")));
  const auto mapping = problems::mkp_to_problem(inst);
  const double penalty =
      lagrange::heuristic_penalty(mapping.problem, params.penalty_alpha);

  bench::print_banner("Fig. 5 — SAIM trace on MKP " + inst.name(),
                      args.get_bool("full"),
                      "runs=" + std::to_string(params.runs) + ", MCS/run=" +
                          std::to_string(params.mcs_per_run));
  std::printf("P = 5dN = %.1f (paper reports ~10), eta = %.2f, M = %zu "
              "constraints\n\n",
              penalty, params.eta, inst.m());

  util::WallTimer timer;
  const auto result = bench::run_saim_mkp(
      inst, params, static_cast<std::uint64_t>(args.get_int("seed")),
      /*record_history=*/true);

  // Windowed view of Fig. 5a + the lambda vector at window ends (5b).
  const std::size_t windows = 10;
  const std::size_t per =
      std::max<std::size_t>(1, result.history.size() / windows);
  std::printf("%10s %12s %9s  lambda[0..%zu]\n", "iter-range", "med-cost",
              "feas%", inst.m() - 1);
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t lo = w * per;
    const std::size_t hi = std::min(result.history.size(), lo + per);
    if (lo >= hi) break;
    std::vector<double> costs;
    std::size_t feasible = 0;
    for (std::size_t k = lo; k < hi; ++k) {
      costs.push_back(result.history[k].sample_cost);
      if (result.history[k].feasible) ++feasible;
    }
    std::sort(costs.begin(), costs.end());
    std::printf("%4zu-%-5zu %12.0f %8.1f%% ", lo, hi - 1,
                costs[costs.size() / 2],
                100.0 * static_cast<double>(feasible) /
                    static_cast<double>(hi - lo));
    const auto& lambda = result.history[hi - 1].lambda;
    for (const double l : lambda) std::printf(" %7.3f", l);
    std::printf("\n");
  }

  std::printf("\nfeasible samples: %zu / %zu (%.1f%%) — paper reports ~5%% "
              "for MKP\n",
              result.feasible_count, result.total_runs,
              100.0 * result.feasibility_rate());
  if (result.found_feasible) {
    std::printf("best feasible profit: %.0f\n", -result.best_cost);
  }
  std::printf("total MCS: %zu, wall time: %.1fs\n", result.total_sweeps,
              timer.seconds());

  const std::string csv_path = args.get("csv");
  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    core::write_history_csv(csv, result.history);
    std::printf("full per-iteration series written to %s\n",
                csv_path.c_str());
  }
  return 0;
}
