// Service-layer throughput bench: jobs/sec of SolveService on a mixed
// QKP/MKP job stream at 1/4/8 workers, plus the cache hit-rate when the
// stream repeats itself, plus the same-instance batching and warm-start
// wins. Every phase records per-job end-to-end latency into an
// obs::Histogram and reports count/mean/p50/p95/p99; most phases are
// closed-loop (each wave submits everything then waits), and the
// open_loop phase (bench/load_gen) measures the TCP front door at fixed
// arrival rates free of coordinated omission. Writes BENCH_service.json.
//
// Four phases:
//   * scaling — a stream of unique jobs (distinct seeds, cache off) timed
//     at each worker count. Jobs are independent single-threaded solves,
//     so throughput should scale with workers up to the machine's cores;
//     `hardware_threads` is recorded so a 1-core CI box explains itself.
//   * cache — the same mixed stream submitted twice through a caching
//     service: the second wave is pure cache hits, and the measured
//     hit-rate and hit-serving throughput quantify what the cache buys.
//   * batch — a duplicated-instance stream (one hot problem, distinct
//     seeds) through one worker with batching off vs on: batching
//     amortizes the model build + backend bind across members, so
//     batched jobs/sec should be >= unbatched. One worker isolates the
//     amortization from scheduling effects.
//   * warm — a hot-instance workload: a cold wave populates the
//     warm-start pool, then a warm wave (distinct seeds, warm_start on)
//     must reach at least the cold wave's best objective — pooled best
//     samples are imported, so warm_best <= cold_best (costs negative)
//     holds by construction and the JSON records it.
//   * sharded — the same mixed stream as JSONL lines through the
//     multi-process front door (service/shard_router + saim_serve
//     children, 1 worker each) at 1/2/4 shards and over BOTH transports:
//     fork/exec pipes (transport "pipe") and loopback TCP against
//     `saim_serve --listen` servers (transport "socket"), so pipe-vs-TCP
//     overhead is tracked release over release. Throughput should scale
//     with shard count on multicore boxes. Skipped (and marked so in the
//     JSON) when the saim_serve binary is not next to the bench.
//   * skewed — a single-hot-key stream (every job a twin of one instance)
//     through 2 shards at replication R=1 vs R=2 with hot-key routing:
//     under R=1 the whole stream serializes on the key's owner while the
//     other shard idles; under R=2 twins spread over the replica set, so
//     R=2 should beat R=1 on multicore boxes and the JSON records the
//     speedup plus how many twins were replica-routed.
//   * open_loop — the event-driven `saim_serve --listen` front door
//     under an open-loop generator (bench/load_gen.hpp): jobs arrive on
//     a fixed Poisson schedule at several rates and latency is measured
//     from each job's SCHEDULED send time, so queueing delay at
//     saturation is measured, not coordinated-omitted away.
//   * front_door — the same closed-loop sharded wave through ONE
//     `saim_serve --listen` server, event loop vs --threaded: the
//     event-driven default must not cost throughput against the
//     thread-per-connection server it replaces.
//   * hedge — the mixed stream through 2 shards with hedging on
//     (R=2, window >= jobs so everything is in flight), then one shard is
//     SIGSTOPped mid-wave: no EOF ever fires, so hedged re-dispatch to
//     the replica is the ONLY thing that can finish the stopped shard's
//     jobs. The phase records that the wave completed and how many hedge
//     copies won.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "load_gen.hpp"
#include "net/socket_child.hpp"
#include "obs/metrics.hpp"
#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "service/process_child.hpp"
#include "service/service_stats.hpp"
#include "service/request_builders.hpp"
#include "service/shard_driver.hpp"
#include "service/shard_router.hpp"
#include "service/solve_service.hpp"
#include "util/cli.hpp"
#include "util/jsonl.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace saim;

/// One reusable request skeleton per instance (shared problem handle +
/// evaluator); copied and specialized per submission.
std::vector<service::SolveRequest> make_mixed_stream(std::size_t instances,
                                                     std::size_t n) {
  std::vector<service::SolveRequest> templates;
  for (std::size_t i = 0; i < instances; ++i) {
    if (i % 2 == 0) {
      templates.push_back(
          service::request_for(std::make_shared<problems::QkpInstance>(
              problems::make_paper_qkp(n, 25, static_cast<int>(i / 2 + 1)))));
    } else {
      templates.push_back(
          service::request_for(std::make_shared<problems::MkpInstance>(
              problems::make_paper_mkp(n, 5, static_cast<int>(i / 2 + 1)))));
    }
  }
  return templates;
}

service::SolveRequest make_request(const service::SolveRequest& base,
                                   std::size_t iterations,
                                   std::size_t sweeps, std::uint64_t seed,
                                   bool use_cache, bool warm_start = false) {
  service::SolveRequest request = base;
  request.backend.sweeps = sweeps;
  request.options.iterations = iterations;
  request.options.seed = seed;
  request.use_cache = use_cache;
  request.warm_start = warm_start;
  return request;
}

/// Submits `jobs` same-instance requests (distinct seeds starting at
/// `seed0`) and waits; returns wall seconds and min best_cost via out-param.
double run_hot_wave(service::SolveService& svc,
                    const service::SolveRequest& hot, std::size_t jobs,
                    std::size_t iterations, std::size_t sweeps,
                    std::uint64_t seed0, bool warm_start,
                    double* best_cost = nullptr,
                    obs::Histogram* latency = nullptr) {
  std::vector<service::JobHandle> handles;
  handles.reserve(jobs);
  util::WallTimer timer;
  for (std::size_t j = 0; j < jobs; ++j) {
    handles.push_back(svc.submit(make_request(hot, iterations, sweeps,
                                              seed0 + j, /*use_cache=*/false,
                                              warm_start)));
  }
  double best = std::numeric_limits<double>::infinity();
  for (auto& h : handles) {
    const auto response = h.wait();
    if (latency) latency->observe(response->timing.total_ms);
    if (response->result->found_feasible) {
      best = std::min(best, response->result->best_cost);
    }
  }
  if (best_cost) *best_cost = best;
  return timer.seconds();
}

/// Submits `jobs` requests (seed = job index when unique_seeds) and waits
/// for all; returns wall seconds.
double run_wave(service::SolveService& svc,
                const std::vector<service::SolveRequest>& templates,
                std::size_t jobs, std::size_t iterations, std::size_t sweeps,
                bool use_cache, bool unique_seeds,
                obs::Histogram* latency = nullptr) {
  std::vector<service::JobHandle> handles;
  handles.reserve(jobs);
  util::WallTimer timer;
  for (std::size_t j = 0; j < jobs; ++j) {
    const auto& t = templates[j % templates.size()];
    handles.push_back(svc.submit(make_request(
        t, iterations, sweeps, unique_seeds ? j + 1 : 1, use_cache)));
  }
  for (auto& h : handles) {
    const auto response = h.wait();
    if (latency) latency->observe(response->timing.total_ms);
  }
  return timer.seconds();
}

/// The mixed stream as PROTOCOL.md job lines (distinct ids and seeds, no
/// caching) for the sharded phase.
std::vector<std::string> make_job_lines(std::size_t jobs,
                                        std::size_t instances, std::size_t n,
                                        std::size_t iterations,
                                        std::size_t sweeps) {
  std::vector<std::string> lines;
  lines.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    const std::size_t i = j % instances;
    const std::string gen =
        i % 2 == 0 ? "qkp:" + std::to_string(n) + "-25-" +
                         std::to_string(i / 2 + 1)
                   : "mkp:" + std::to_string(n) + "-5-" +
                         std::to_string(i / 2 + 1);
    util::JsonWriter line;
    line.field("id", "j" + std::to_string(j))
        .field("gen", gen)
        .field("iterations", static_cast<std::uint64_t>(iterations))
        .field("sweeps", static_cast<std::uint64_t>(sweeps))
        .field("seed", static_cast<std::uint64_t>(j + 1))
        .field("cache", false);
    lines.push_back(line.str());
  }
  return lines;
}

/// Spawns `shards` pipe children (saim_serve --stream) as endpoints.
std::vector<std::unique_ptr<net::ShardEndpoint>> spawn_pipe_fleet(
    const std::string& serve, std::size_t shards) {
  std::vector<std::unique_ptr<net::ShardEndpoint>> children;
  for (std::size_t s = 0; s < shards; ++s) {
    children.push_back(std::make_unique<service::ProcessChild>(
        std::vector<std::string>{serve, "--stream", "--workers", "1",
                                 "--cache", "0"}));
  }
  return children;
}

/// Spawns one loopback `saim_serve --listen` server (streaming, cache
/// off) with `extra_args` appended, parks the process in `servers`, and
/// returns its bound port — 0 when it fails to come up in time.
int spawn_listen_server(
    const std::string& serve, const std::string& tag, std::size_t workers,
    const std::vector<std::string>& extra_args,
    std::vector<std::unique_ptr<service::ProcessChild>>* servers) {
  const std::string port_file = "bench_listen_port_" + tag + ".tmp";
  std::remove(port_file.c_str());
  std::vector<std::string> argv{serve,
                                "--listen",
                                "127.0.0.1:0",
                                "--port-file",
                                port_file,
                                "--stream",
                                "--workers",
                                std::to_string(workers),
                                "--cache",
                                "0"};
  argv.insert(argv.end(), extra_args.begin(), extra_args.end());
  servers->push_back(std::make_unique<service::ProcessChild>(argv));
  int port = 0;
  for (int spin = 0; spin < 5000 && port == 0; ++spin) {
    std::ifstream pf(port_file);
    if (!(pf >> port)) {
      port = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::remove(port_file.c_str());
  return port;
}

/// Spawns `shards` loopback `saim_serve --listen` servers and connects a
/// SocketChild to each. The listener processes ride along in `servers`
/// (torn down by the caller when the endpoints close). Returns an empty
/// endpoint vector when a server fails to come up in time.
std::vector<std::unique_ptr<net::ShardEndpoint>> spawn_socket_fleet(
    const std::string& serve, std::size_t shards,
    std::vector<std::unique_ptr<service::ProcessChild>>* servers,
    const std::vector<std::string>& extra_args = {}) {
  std::vector<std::unique_ptr<net::ShardEndpoint>> endpoints;
  for (std::size_t s = 0; s < shards; ++s) {
    const int port = spawn_listen_server(serve, std::to_string(s),
                                         /*workers=*/1, extra_args, servers);
    if (port == 0) return {};
    endpoints.push_back(
        std::make_unique<net::SocketChild>("127.0.0.1", port));
  }
  return endpoints;
}

/// Routes `lines` through an already-spawned fleet of endpoints (1
/// worker each); returns wall seconds, or a negative value when any job
/// failed. `router_options` carries replication/hedging knobs (its shard
/// count is overwritten); the router's final stats land in `stats_out`.
double run_sharded_wave(
    std::vector<std::unique_ptr<net::ShardEndpoint>> children,
    const std::vector<std::string>& lines,
    obs::HistogramSnapshot* latency = nullptr,
    service::RouterOptions router_options = {},
    service::ShardRouter::Stats* stats_out = nullptr) {
  if (children.empty()) return -1.0;
  router_options.shards = children.size();
  service::ShardRouter router(router_options);

  util::WallTimer timer;
  std::size_t line_no = 0;
  std::size_t emitted = 0;
  for (const auto& line : lines) {
    emitted += router.accept_line(line, ++line_no).size();
  }
  while (!router.idle()) {
    emitted += service::pump_shards(router, children, 2).size();
    if (router.live_shards() == 0) break;
    if (timer.seconds() > 300.0) return -1.0;  // wedged child: fail loudly
  }
  const double seconds = timer.seconds();
  if (latency) {
    // Per-shard round trips merged into one phase-level distribution.
    for (std::size_t s = 0; s < router.shard_slots(); ++s) {
      latency->merge(router.latency_snapshot(s));
    }
  }
  if (stats_out) *stats_out = router.stats();
  for (auto& child : children) child->shutdown_input();
  if (router.any_error() || emitted != lines.size()) return -1.0;
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_service_throughput",
                       "SolveService jobs/sec and cache hit-rate");
  args.add_flag("jobs", "jobs per measured wave", "24")
      .add_flag("instances", "distinct instances in the mixed stream", "6")
      .add_flag("n", "instance size (QKP items / MKP items)", "50")
      .add_flag("iterations", "SAIM outer iterations per job", "30")
      .add_flag("sweeps", "MCS per inner run", "200")
      .add_flag("batch-n", "hot-instance size for the batch phase", "200")
      .add_flag("batch-iterations",
                "outer iterations per batch-phase job (the online-serving "
                "shape: many cheap solves of one hot instance)",
                "2")
      .add_flag("batch-sweeps", "MCS per inner run in the batch phase", "30")
      .add_flag("serve",
                "saim_serve binary for the sharded phase (skipped when "
                "missing)",
                "./saim_serve")
      .add_flag("out", "output JSON path", "BENCH_service.json");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  const auto positive = [&](const char* flag) {
    const std::int64_t v = args.get_int(flag);
    if (v <= 0) {
      std::fprintf(stderr, "--%s must be positive (got %lld)\n", flag,
                   static_cast<long long>(v));
      std::exit(2);
    }
    return static_cast<std::size_t>(v);
  };
  const auto jobs = positive("jobs");
  const auto instances = positive("instances");
  const auto n = positive("n");
  const auto iterations = positive("iterations");
  const auto sweeps = positive("sweeps");
  const auto batch_n = positive("batch-n");
  const auto batch_iterations = positive("batch-iterations");
  const auto batch_sweeps = positive("batch-sweeps");

  const auto templates = make_mixed_stream(instances, n);
  std::printf("service_throughput: %zu jobs over %zu instances (n=%zu, "
              "%zu iter x %zu MCS), %zu hardware threads\n",
              jobs, instances, n, iterations, sweeps,
              util::hardware_threads());

  // -------------------------------------------------------- scaling phase
  const std::size_t worker_counts[] = {1, 4, 8};
  double jobs_per_sec[3] = {0, 0, 0};
  std::string workers_json = "[";
  for (std::size_t w = 0; w < 3; ++w) {
    service::ServiceOptions options;
    options.workers = worker_counts[w];
    options.cache_capacity = 0;  // measure compute, not replay
    options.max_batch = 1;       // and worker scaling, not batching
    service::SolveService svc(options);
    obs::Histogram latency;
    const double seconds =
        run_wave(svc, templates, jobs, iterations, sweeps,
                 /*use_cache=*/false, /*unique_seeds=*/true, &latency);
    const auto snap = latency.snapshot();
    jobs_per_sec[w] = static_cast<double>(jobs) / seconds;
    std::printf("  %zu worker%s: %6.2f jobs/sec (%.2fs, e2e p50/p95 "
                "%.0f/%.0f ms)\n",
                worker_counts[w], worker_counts[w] == 1 ? " " : "s",
                jobs_per_sec[w], seconds, snap.quantile(0.50),
                snap.quantile(0.95));
    util::JsonWriter row;
    row.field("workers", static_cast<std::uint64_t>(worker_counts[w]))
        .field("jobs_per_sec", jobs_per_sec[w])
        .field("seconds", seconds)
        .raw_field("latency", service::latency_quantiles_json(snap));
    workers_json += (w ? "," : "") + row.str();
  }
  workers_json += "]";
  const double scaling_1_to_4 =
      jobs_per_sec[0] > 0 ? jobs_per_sec[1] / jobs_per_sec[0] : 0.0;
  std::printf("  scaling 1 -> 4 workers: %.2fx\n", scaling_1_to_4);

  // ---------------------------------------------------------- cache phase
  service::ServiceOptions cache_options;
  cache_options.workers = 4;
  cache_options.cache_capacity = 256;
  service::SolveService cached(cache_options);
  obs::Histogram cache_latency;  // both waves: misses cold, hits warm
  const double cold_seconds =
      run_wave(cached, templates, jobs, iterations, sweeps,
               /*use_cache=*/true, /*unique_seeds=*/false, &cache_latency);
  const double warm_seconds =
      run_wave(cached, templates, jobs, iterations, sweeps,
               /*use_cache=*/true, /*unique_seeds=*/false, &cache_latency);
  const auto stats = cached.stats();
  const double hit_rate = stats.cache.hit_rate();
  std::printf("  mixed stream x2: cold %.2fs, warm %.2fs, cache hit-rate "
              "%.2f (%llu coalesced)\n",
              cold_seconds, warm_seconds, hit_rate,
              static_cast<unsigned long long>(stats.coalesced));

  util::JsonWriter cache_json;
  cache_json.field("hit_rate", hit_rate)
      .field("cold_seconds", cold_seconds)
      .field("warm_seconds", warm_seconds)
      .field("warm_jobs_per_sec",
             warm_seconds > 0 ? static_cast<double>(jobs) / warm_seconds
                              : 0.0)
      .field("coalesced", stats.coalesced)
      .field("hits", stats.cache.hits)
      .field("misses", stats.cache.misses)
      .raw_field("latency",
                 service::latency_quantiles_json(cache_latency.snapshot()));

  // ---------------------------------------------------------- batch phase
  // One hot instance, distinct seeds, one worker: batching off vs on.
  // Its own job shape (batch-n / batch-iterations / batch-sweeps): the
  // amortized cost is the per-job model build + bind, so the win shows on
  // online-serving traffic — many cheap solves of one big hot instance —
  // and would drown under the long-iteration jobs of the scaling phase.
  const service::SolveRequest hot_batch =
      service::request_for(std::make_shared<problems::QkpInstance>(
          problems::make_paper_qkp(batch_n, 25, 1)));
  const std::size_t max_batch = 8;
  double unbatched_seconds = 0.0;
  double batched_seconds = 0.0;
  std::uint64_t batched_jobs_stat = 0;
  obs::Histogram unbatched_latency;
  obs::Histogram batched_latency;
  {
    service::ServiceOptions options;
    options.workers = 1;
    options.cache_capacity = 0;
    options.warm_pool_capacity = 0;
    options.max_batch = 1;  // off
    service::SolveService unbatched(options);
    unbatched_seconds =
        run_hot_wave(unbatched, hot_batch, jobs, batch_iterations,
                     batch_sweeps, /*seed0=*/1, /*warm_start=*/false,
                     /*best_cost=*/nullptr, &unbatched_latency);
  }
  {
    service::ServiceOptions options;
    options.workers = 1;
    options.cache_capacity = 0;
    options.warm_pool_capacity = 0;
    options.max_batch = max_batch;
    service::SolveService batched(options);
    batched_seconds =
        run_hot_wave(batched, hot_batch, jobs, batch_iterations,
                     batch_sweeps, /*seed0=*/1, /*warm_start=*/false,
                     /*best_cost=*/nullptr, &batched_latency);
    batched_jobs_stat = batched.stats().batched_jobs;
  }
  const double unbatched_jps =
      unbatched_seconds > 0 ? static_cast<double>(jobs) / unbatched_seconds
                            : 0.0;
  const double batched_jps =
      batched_seconds > 0 ? static_cast<double>(jobs) / batched_seconds : 0.0;
  std::printf("  hot instance x%zu (n=%zu, %zu iter x %zu MCS), 1 worker: "
              "unbatched %6.2f jobs/sec, batched %6.2f jobs/sec "
              "(%.2fx, %llu jobs in batches)\n",
              jobs, batch_n, batch_iterations, batch_sweeps, unbatched_jps,
              batched_jps,
              unbatched_jps > 0 ? batched_jps / unbatched_jps : 0.0,
              static_cast<unsigned long long>(batched_jobs_stat));

  util::JsonWriter batch_json;
  batch_json.field("max_batch", static_cast<std::uint64_t>(max_batch))
      .field("n", static_cast<std::uint64_t>(batch_n))
      .field("iterations", static_cast<std::uint64_t>(batch_iterations))
      .field("sweeps", static_cast<std::uint64_t>(batch_sweeps))
      .field("unbatched_jobs_per_sec", unbatched_jps)
      .field("batched_jobs_per_sec", batched_jps)
      .field("speedup",
             unbatched_jps > 0 ? batched_jps / unbatched_jps : 0.0)
      .field("batched_jobs", batched_jobs_stat)
      .raw_field("unbatched_latency",
                 service::latency_quantiles_json(unbatched_latency.snapshot()))
      .raw_field("batched_latency",
                 service::latency_quantiles_json(batched_latency.snapshot()));

  // ----------------------------------------------------------- warm phase
  // Cold wave fills the pool; warm wave must reach >= its best objective.
  double cold_best = 0.0;
  double warm_best = 0.0;
  std::uint64_t warm_seeded = 0;
  obs::Histogram warm_latency;  // both waves of the phase
  {
    service::ServiceOptions options;
    options.workers = 1;
    options.cache_capacity = 0;  // isolate the pool from result replay
    service::SolveService svc(options);
    const auto& hot = templates.front();
    run_hot_wave(svc, hot, jobs, iterations, sweeps, /*seed0=*/1,
                 /*warm_start=*/false, &cold_best, &warm_latency);
    run_hot_wave(svc, hot, jobs, iterations, sweeps, /*seed0=*/1000,
                 /*warm_start=*/true, &warm_best, &warm_latency);
    warm_seeded = svc.stats().warm_seeded;
  }
  const bool warm_reaches_cold = warm_best <= cold_best;
  std::printf("  warm start: cold best %.0f, warm best %.0f (%s, %llu jobs "
              "seeded)\n",
              cold_best, warm_best,
              warm_reaches_cold ? "warm >= cold objective" : "WARM FELL SHORT",
              static_cast<unsigned long long>(warm_seeded));

  util::JsonWriter warm_json;
  warm_json.field("cold_best_cost", cold_best)
      .field("warm_best_cost", warm_best)
      .field("warm_reaches_cold", warm_reaches_cold)
      .field("warm_seeded", warm_seeded)
      .raw_field("latency",
                 service::latency_quantiles_json(warm_latency.snapshot()));

  // -------------------------------------------------------- sharded phase
  // The same mixed stream through the multi-process front door at growing
  // shard counts (1 solver worker per shard, cache off): jobs/sec should
  // grow with shards up to the core count. Run over both transports —
  // pipes (local forks) and loopback TCP (saim_serve --listen) — so the
  // socket overhead is a tracked number, not a guess.
  const std::string serve = args.get("serve");
  util::JsonWriter sharded_json;
  if (::access(serve.c_str(), X_OK) != 0) {
    std::printf("  sharded: skipped ('%s' not executable)\n", serve.c_str());
    sharded_json.field("skipped", true);
  } else {
    const auto lines = make_job_lines(jobs, instances, n, iterations, sweeps);
    const std::size_t shard_counts[] = {1, 2, 4};
    double pipe_jps[3] = {0, 0, 0};
    double socket_jps_1 = 0.0;
    std::string rows = "[";
    bool first_row = true;
    const auto add_row = [&](const char* transport, std::size_t shards,
                             double jps, double seconds,
                             const obs::HistogramSnapshot& latency) {
      util::JsonWriter row;
      row.field("transport", transport)
          .field("shards", static_cast<std::uint64_t>(shards))
          .field("jobs_per_sec", jps)
          .field("seconds", seconds)
          .raw_field("latency", service::latency_quantiles_json(latency));
      rows += (first_row ? "" : ",") + row.str();
      first_row = false;
    };
    for (std::size_t i = 0; i < 3; ++i) {
      obs::HistogramSnapshot latency;
      const double seconds = run_sharded_wave(
          spawn_pipe_fleet(serve, shard_counts[i]), lines, &latency);
      pipe_jps[i] = seconds > 0 ? static_cast<double>(jobs) / seconds : 0.0;
      std::printf("  pipe   %zu shard%s: %6.2f jobs/sec (%.2fs, round-trip "
                  "p50/p95 %.0f/%.0f ms)\n",
                  shard_counts[i], shard_counts[i] == 1 ? " " : "s",
                  pipe_jps[i], seconds, latency.quantile(0.50),
                  latency.quantile(0.95));
      add_row("pipe", shard_counts[i], pipe_jps[i], seconds, latency);
    }
    // Socket transport at 1 and 2 shards: enough to price the transport
    // without re-measuring the scaling curve twice.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
      std::vector<std::unique_ptr<service::ProcessChild>> servers;
      obs::HistogramSnapshot latency;
      const double seconds = run_sharded_wave(
          spawn_socket_fleet(serve, shards, &servers), lines, &latency);
      for (auto& server : servers) server->terminate();
      const double jps =
          seconds > 0 ? static_cast<double>(jobs) / seconds : 0.0;
      if (shards == 1) socket_jps_1 = jps;
      std::printf("  socket %zu shard%s: %6.2f jobs/sec (%.2fs, round-trip "
                  "p50/p95 %.0f/%.0f ms)\n",
                  shards, shards == 1 ? " " : "s", jps, seconds,
                  latency.quantile(0.50), latency.quantile(0.95));
      add_row("socket", shards, jps, seconds, latency);
    }
    rows += "]";
    const double scaling = pipe_jps[0] > 0 ? pipe_jps[1] / pipe_jps[0] : 0.0;
    const double socket_overhead =
        socket_jps_1 > 0 ? pipe_jps[0] / socket_jps_1 : 0.0;
    std::printf("  shard scaling 1 -> 2 (pipe): %.2fx; pipe/socket at 1 "
                "shard: %.2fx\n",
                scaling, socket_overhead);
    sharded_json.field("skipped", false)
        .raw_field("shards", rows)
        .field("scaling_1_to_2", scaling)
        .field("pipe_over_socket_1shard", socket_overhead);
  }

  // ------------------------------------------------------ open-loop phase
  // The event-driven front door under fixed arrival rates. One server,
  // 4 workers; each rate gets a fresh connection and a fresh Poisson
  // schedule of tiny hot-instance jobs. Latency is measured from each
  // job's SCHEDULED send time (bench/load_gen.hpp), so when a rate
  // exceeds capacity the growing queue shows up as growing quantiles
  // instead of silently stretching the schedule.
  util::JsonWriter open_loop_json;
  if (::access(serve.c_str(), X_OK) != 0) {
    std::printf("  open_loop: skipped ('%s' not executable)\n", serve.c_str());
    open_loop_json.field("skipped", true);
  } else {
    std::vector<std::unique_ptr<service::ProcessChild>> servers;
    const int port = spawn_listen_server(serve, "openloop", /*workers=*/4,
                                         {}, &servers);
    if (port == 0) {
      std::printf("  open_loop: skipped (server failed to start)\n");
      open_loop_json.field("skipped", true);
    } else {
      const double rates[] = {50.0, 100.0, 200.0};
      std::string rows = "[";
      bool all_completed = true;
      for (std::size_t r = 0; r < 3; ++r) {
        bench::LoadGenOptions options;
        options.rate_per_sec = rates[r];
        options.total_jobs = static_cast<std::size_t>(rates[r] * 2.0);
        options.seed = r + 1;
        const auto report = bench::run_open_loop(
            "127.0.0.1", port, options, [&](std::size_t i) {
              util::JsonWriter line;
              line.field("id", "ol" + std::to_string(i))
                  .field("gen",
                         "qkp:30-25-" + std::to_string(i % 4 + 1))
                  .field("iterations", std::uint64_t{2})
                  .field("sweeps", std::uint64_t{30})
                  .field("seed", static_cast<std::uint64_t>(i + 1))
                  .field("cache", false);
              return line.take();
            });
        all_completed = all_completed && report.completed_all();
        std::printf("  open loop %5.0f jobs/sec offered: %zu/%zu done, "
                    "sched-send p50/p99/p99.9 %.1f/%.1f/%.1f ms\n",
                    rates[r], report.completed, report.sent,
                    report.latency.quantile(0.50),
                    report.latency.quantile(0.99),
                    report.latency.quantile(0.999));
        rows += (r ? "," : "") + bench::load_gen_report_json(report);
      }
      rows += "]";
      for (auto& server : servers) server->terminate();
      open_loop_json.field("skipped", false)
          .field("workers", std::uint64_t{4})
          .field("all_completed", all_completed)
          .raw_field("rates", rows);
    }
  }

  // ----------------------------------------------------- front-door phase
  // Closed-loop control experiment for the event-driven default: the
  // same wave through one --listen server, event loop vs --threaded.
  // Identical protocol bytes by construction; this pins the throughput.
  util::JsonWriter front_door_json;
  if (::access(serve.c_str(), X_OK) != 0) {
    front_door_json.field("skipped", true);
  } else {
    const auto lines = make_job_lines(jobs, instances, n, iterations, sweeps);
    double flavour_jps[2] = {0.0, 0.0};
    const char* flavour_names[] = {"event", "threaded"};
    for (int f = 0; f < 2; ++f) {
      std::vector<std::string> extra;
      if (f == 1) extra.push_back("--threaded");
      std::vector<std::unique_ptr<service::ProcessChild>> servers;
      const double seconds = run_sharded_wave(
          spawn_socket_fleet(serve, 1, &servers, extra), lines);
      for (auto& server : servers) server->terminate();
      flavour_jps[f] =
          seconds > 0 ? static_cast<double>(jobs) / seconds : 0.0;
      std::printf("  front door (%s): %6.2f jobs/sec\n", flavour_names[f],
                  flavour_jps[f]);
    }
    const double ratio =
        flavour_jps[1] > 0 ? flavour_jps[0] / flavour_jps[1] : 0.0;
    std::printf("  event loop vs threaded: %.2fx\n", ratio);
    front_door_json.field("skipped", false)
        .field("event_jobs_per_sec", flavour_jps[0])
        .field("threaded_jobs_per_sec", flavour_jps[1])
        .field("event_over_threaded", ratio);
  }

  // ----------------------------------------------------- skewed-key phase
  // Every job is a twin of one hot instance. R=1: the owner serializes
  // the whole stream. R=2 + hot-key routing: twins overflow to the
  // least-loaded replica, so both shards work.
  util::JsonWriter skewed_json;
  if (::access(serve.c_str(), X_OK) != 0) {
    skewed_json.field("skipped", true);
  } else {
    std::vector<std::string> hot_lines;
    for (std::size_t j = 0; j < jobs; ++j) {
      util::JsonWriter line;
      line.field("id", "hot" + std::to_string(j))
          .field("gen", "qkp:" + std::to_string(batch_n) + "-25-1")
          .field("iterations", static_cast<std::uint64_t>(batch_iterations))
          .field("sweeps", static_cast<std::uint64_t>(batch_sweeps))
          .field("seed", static_cast<std::uint64_t>(j + 1))
          .field("cache", false);
      hot_lines.push_back(line.str());
    }
    double jps[2] = {0.0, 0.0};
    std::uint64_t replica_hits = 0;
    for (const std::size_t replicas : {std::size_t{1}, std::size_t{2}}) {
      service::RouterOptions router_options;
      router_options.replicas = replicas;
      router_options.hot_key_depth = replicas == 2 ? 2 : 0;
      service::ShardRouter::Stats stats;
      const double seconds =
          run_sharded_wave(spawn_pipe_fleet(serve, 2), hot_lines,
                           /*latency=*/nullptr, router_options, &stats);
      jps[replicas - 1] =
          seconds > 0 ? static_cast<double>(jobs) / seconds : 0.0;
      if (replicas == 2) replica_hits = stats.replica_hits;
      std::printf("  skewed R=%zu: %6.2f jobs/sec (%.2fs, %llu twins "
                  "replica-routed)\n",
                  replicas, jps[replicas - 1], seconds,
                  static_cast<unsigned long long>(stats.replica_hits));
    }
    const double speedup = jps[0] > 0 ? jps[1] / jps[0] : 0.0;
    std::printf("  skewed-key replication win (R=2 over R=1): %.2fx\n",
                speedup);
    skewed_json.field("skipped", false)
        .field("r1_jobs_per_sec", jps[0])
        .field("r2_jobs_per_sec", jps[1])
        .field("speedup", speedup)
        .field("replica_hits", replica_hits)
        .field("r2_beats_r1", jps[1] > jps[0]);
  }

  // ---------------------------------------------------------- hedge phase
  // SIGSTOP (not SIGKILL) one shard mid-wave: the pipe never EOFs, so the
  // failover path cannot fire — only hedged re-dispatch finishes the
  // stopped shard's in-flight jobs. window >= jobs keeps everything in
  // flight (pending jobs would not be hedged).
  util::JsonWriter hedge_json;
  if (::access(serve.c_str(), X_OK) != 0) {
    hedge_json.field("skipped", true);
  } else {
    const auto lines = make_job_lines(jobs, instances, n, iterations, sweeps);
    auto children = spawn_pipe_fleet(serve, 2);
    service::RouterOptions router_options;
    router_options.shards = 2;
    router_options.window = jobs;
    router_options.replicas = 2;
    router_options.hedge_min_ms = 25.0;
    service::ShardRouter router(router_options);

    util::WallTimer timer;
    std::size_t line_no = 0;
    std::size_t emitted = 0;
    for (const auto& line : lines) {
      emitted += router.accept_line(line, ++line_no).size();
    }
    // Mid-wave: a quarter of the results are out, both shards are busy.
    while (emitted < jobs / 4 && timer.seconds() < 300.0) {
      emitted += service::pump_shards(router, children, 2).size();
    }
    const std::size_t victim =
        router.inflight(0) + router.pending(0) >=
                router.inflight(1) + router.pending(1)
            ? 0
            : 1;
    auto* victim_child =
        dynamic_cast<service::ProcessChild*>(children[victim].get());
    if (victim_child) ::kill(victim_child->pid(), SIGSTOP);
    while (!router.idle() && timer.seconds() < 300.0) {
      emitted += service::pump_shards(router, children, 2).size();
      if (router.live_shards() == 0) break;
    }
    const double seconds = timer.seconds();
    if (victim_child) ::kill(victim_child->pid(), SIGCONT);
    for (auto& child : children) child->shutdown_input();

    const auto& stats = router.stats();
    const bool completed =
        router.idle() && !router.any_error() && emitted == lines.size();
    std::printf("  hedge: shard %zu SIGSTOPped mid-wave -> %s in %.2fs "
                "(%llu hedges, %llu wins)\n",
                victim, completed ? "all jobs completed" : "WAVE INCOMPLETE",
                seconds, static_cast<unsigned long long>(stats.hedges),
                static_cast<unsigned long long>(stats.hedge_wins));
    hedge_json.field("skipped", false)
        .field("completed", completed)
        .field("seconds", seconds)
        .field("hedges", stats.hedges)
        .field("hedge_wins", stats.hedge_wins)
        .raw_field("hedge_win_latency",
                   service::latency_quantiles_json(router.hedge_win_snapshot()));
  }

  util::JsonWriter doc;
  doc.field("bench", "service_throughput")
      .field("jobs", static_cast<std::uint64_t>(jobs))
      .field("instances", static_cast<std::uint64_t>(instances))
      .field("n", static_cast<std::uint64_t>(n))
      .field("iterations", static_cast<std::uint64_t>(iterations))
      .field("sweeps", static_cast<std::uint64_t>(sweeps))
      .field("hardware_threads",
             static_cast<std::uint64_t>(util::hardware_threads()))
      .raw_field("workers", workers_json)
      .field("scaling_1_to_4", scaling_1_to_4)
      .raw_field("cache", cache_json.str())
      .raw_field("batch", batch_json.str())
      .raw_field("warm", warm_json.str())
      .raw_field("sharded", sharded_json.str())
      .raw_field("open_loop", open_loop_json.str())
      .raw_field("front_door", front_door_json.str())
      .raw_field("skewed", skewed_json.str())
      .raw_field("hedge", hedge_json.str());

  const std::string out_path = args.get("out");
  std::ofstream out(out_path);
  out << doc.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
