// Service-layer throughput bench: jobs/sec of SolveService on a mixed
// QKP/MKP job stream at 1/4/8 workers, plus the cache hit-rate when the
// stream repeats itself. Writes BENCH_service.json.
//
// Two phases:
//   * scaling — a stream of unique jobs (distinct seeds, cache off) timed
//     at each worker count. Jobs are independent single-threaded solves,
//     so throughput should scale with workers up to the machine's cores;
//     `hardware_threads` is recorded so a 1-core CI box explains itself.
//   * cache — the same mixed stream submitted twice through a caching
//     service: the second wave is pure cache hits, and the measured
//     hit-rate and hit-serving throughput quantify what the cache buys.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "service/request_builders.hpp"
#include "service/solve_service.hpp"
#include "util/cli.hpp"
#include "util/jsonl.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace saim;

/// One reusable request skeleton per instance (shared problem handle +
/// evaluator); copied and specialized per submission.
std::vector<service::SolveRequest> make_mixed_stream(std::size_t instances,
                                                     std::size_t n) {
  std::vector<service::SolveRequest> templates;
  for (std::size_t i = 0; i < instances; ++i) {
    if (i % 2 == 0) {
      templates.push_back(
          service::request_for(std::make_shared<problems::QkpInstance>(
              problems::make_paper_qkp(n, 25, static_cast<int>(i / 2 + 1)))));
    } else {
      templates.push_back(
          service::request_for(std::make_shared<problems::MkpInstance>(
              problems::make_paper_mkp(n, 5, static_cast<int>(i / 2 + 1)))));
    }
  }
  return templates;
}

service::SolveRequest make_request(const service::SolveRequest& base,
                                   std::size_t iterations,
                                   std::size_t sweeps, std::uint64_t seed,
                                   bool use_cache) {
  service::SolveRequest request = base;
  request.backend.sweeps = sweeps;
  request.options.iterations = iterations;
  request.options.seed = seed;
  request.use_cache = use_cache;
  return request;
}

/// Submits `jobs` requests (seed = job index when unique_seeds) and waits
/// for all; returns wall seconds.
double run_wave(service::SolveService& svc,
                const std::vector<service::SolveRequest>& templates,
                std::size_t jobs, std::size_t iterations, std::size_t sweeps,
                bool use_cache, bool unique_seeds) {
  std::vector<service::JobHandle> handles;
  handles.reserve(jobs);
  util::WallTimer timer;
  for (std::size_t j = 0; j < jobs; ++j) {
    const auto& t = templates[j % templates.size()];
    handles.push_back(svc.submit(make_request(
        t, iterations, sweeps, unique_seeds ? j + 1 : 1, use_cache)));
  }
  for (auto& h : handles) h.wait();
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_service_throughput",
                       "SolveService jobs/sec and cache hit-rate");
  args.add_flag("jobs", "jobs per measured wave", "24")
      .add_flag("instances", "distinct instances in the mixed stream", "6")
      .add_flag("n", "instance size (QKP items / MKP items)", "50")
      .add_flag("iterations", "SAIM outer iterations per job", "30")
      .add_flag("sweeps", "MCS per inner run", "200")
      .add_flag("out", "output JSON path", "BENCH_service.json");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  const auto positive = [&](const char* flag) {
    const std::int64_t v = args.get_int(flag);
    if (v <= 0) {
      std::fprintf(stderr, "--%s must be positive (got %lld)\n", flag,
                   static_cast<long long>(v));
      std::exit(2);
    }
    return static_cast<std::size_t>(v);
  };
  const auto jobs = positive("jobs");
  const auto instances = positive("instances");
  const auto n = positive("n");
  const auto iterations = positive("iterations");
  const auto sweeps = positive("sweeps");

  const auto templates = make_mixed_stream(instances, n);
  std::printf("service_throughput: %zu jobs over %zu instances (n=%zu, "
              "%zu iter x %zu MCS), %zu hardware threads\n",
              jobs, instances, n, iterations, sweeps,
              util::hardware_threads());

  // -------------------------------------------------------- scaling phase
  const std::size_t worker_counts[] = {1, 4, 8};
  double jobs_per_sec[3] = {0, 0, 0};
  std::string workers_json = "[";
  for (std::size_t w = 0; w < 3; ++w) {
    service::ServiceOptions options;
    options.workers = worker_counts[w];
    options.cache_capacity = 0;  // measure compute, not replay
    service::SolveService svc(options);
    const double seconds =
        run_wave(svc, templates, jobs, iterations, sweeps,
                 /*use_cache=*/false, /*unique_seeds=*/true);
    jobs_per_sec[w] = static_cast<double>(jobs) / seconds;
    std::printf("  %zu worker%s: %6.2f jobs/sec (%.2fs)\n", worker_counts[w],
                worker_counts[w] == 1 ? " " : "s", jobs_per_sec[w], seconds);
    util::JsonWriter row;
    row.field("workers", static_cast<std::uint64_t>(worker_counts[w]))
        .field("jobs_per_sec", jobs_per_sec[w])
        .field("seconds", seconds);
    workers_json += (w ? "," : "") + row.str();
  }
  workers_json += "]";
  const double scaling_1_to_4 =
      jobs_per_sec[0] > 0 ? jobs_per_sec[1] / jobs_per_sec[0] : 0.0;
  std::printf("  scaling 1 -> 4 workers: %.2fx\n", scaling_1_to_4);

  // ---------------------------------------------------------- cache phase
  service::ServiceOptions cache_options;
  cache_options.workers = 4;
  cache_options.cache_capacity = 256;
  service::SolveService cached(cache_options);
  const double cold_seconds =
      run_wave(cached, templates, jobs, iterations, sweeps,
               /*use_cache=*/true, /*unique_seeds=*/false);
  const double warm_seconds =
      run_wave(cached, templates, jobs, iterations, sweeps,
               /*use_cache=*/true, /*unique_seeds=*/false);
  const auto stats = cached.stats();
  const double hit_rate = stats.cache.hit_rate();
  std::printf("  mixed stream x2: cold %.2fs, warm %.2fs, cache hit-rate "
              "%.2f (%llu coalesced)\n",
              cold_seconds, warm_seconds, hit_rate,
              static_cast<unsigned long long>(stats.coalesced));

  util::JsonWriter cache_json;
  cache_json.field("hit_rate", hit_rate)
      .field("cold_seconds", cold_seconds)
      .field("warm_seconds", warm_seconds)
      .field("warm_jobs_per_sec",
             warm_seconds > 0 ? static_cast<double>(jobs) / warm_seconds
                              : 0.0)
      .field("coalesced", stats.coalesced)
      .field("hits", stats.cache.hits)
      .field("misses", stats.cache.misses);

  util::JsonWriter doc;
  doc.field("bench", "service_throughput")
      .field("jobs", static_cast<std::uint64_t>(jobs))
      .field("instances", static_cast<std::uint64_t>(instances))
      .field("n", static_cast<std::uint64_t>(n))
      .field("iterations", static_cast<std::uint64_t>(iterations))
      .field("sweeps", static_cast<std::uint64_t>(sweeps))
      .field("hardware_threads",
             static_cast<std::uint64_t>(util::hardware_threads()))
      .raw_field("workers", workers_json)
      .field("scaling_1_to_4", scaling_1_to_4)
      .raw_field("cache", cache_json.str());

  const std::string out_path = args.get("out");
  std::ofstream out(out_path);
  out << doc.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
