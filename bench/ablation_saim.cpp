// Ablations over SAIM's design choices (DESIGN.md section 4). Not a paper
// table — these probe the knobs the paper fixes in Table I:
//   A1: subgradient step size eta        (paper: 20 for QKP)
//   A2: penalty scale alpha in P=alpha dN (paper: 2 for QKP)
//   A3: beta schedule shape linear vs geometric (paper: linear)
//   A4: lambda update from last vs best-of-run sample (paper: last)
//   A5: step rule fixed vs diminishing vs harmonic (paper: fixed)
#include <cinttypes>

#include "bench_common.hpp"

namespace {

using namespace saim;

struct AblationRun {
  std::string label;
  core::SolveResult result;
};

core::SolveResult run_variant(const problems::QkpInstance& inst,
                              const core::ExperimentParams& params,
                              std::uint64_t seed, double eta, double alpha,
                              bool geometric, bool best_sample,
                              core::StepRule rule) {
  const auto mapping = problems::qkp_to_problem(inst);
  const auto schedule =
      geometric ? pbit::Schedule::geometric(0.05, params.beta_max)
                : pbit::Schedule::linear(params.beta_max);
  anneal::PBitBackend backend(schedule, params.mcs_per_run,
                              pbit::SweepOrder::kSequential, best_sample);
  core::SaimOptions opts;
  opts.iterations = params.runs;
  opts.eta = eta;
  opts.penalty_alpha = alpha;
  opts.seed = seed;
  opts.use_best_sample = best_sample;
  opts.step_rule = rule;
  opts.collect_feasible_costs = true;
  core::SaimSolver solver(mapping.problem, backend, opts);
  return solver.solve(core::make_qkp_evaluator(inst));
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_saim",
                       "Ablation benches over SAIM design choices");
  args.add_flag("n", "QKP size", "100")
      .add_flag("density", "density percent", "50")
      .add_flag("index", "instance index", "1")
      .add_flag("runs", "SAIM iterations per variant", "300")
      .add_flag("seed", "seed", "1");
  args.add_bool("full", "paper-scale runs (2000)");
  if (!args.parse(argc, argv)) return 0;

  auto params = core::qkp_paper_params();
  params.runs = args.get_bool("full")
                    ? 2000
                    : static_cast<std::size_t>(args.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const auto inst = problems::make_paper_qkp(
      static_cast<std::size_t>(args.get_int("n")),
      static_cast<int>(args.get_int("density")),
      static_cast<int>(args.get_int("index")));

  bench::print_banner("SAIM ablations on QKP " + inst.name(),
                      args.get_bool("full"),
                      std::to_string(params.runs) + " runs per variant");

  std::vector<AblationRun> runs;
  // A1: eta sweep.
  for (const double eta : {0.0, 1.0, 5.0, 20.0, 50.0, 200.0}) {
    runs.push_back({"A1 eta=" + std::to_string(eta),
                    run_variant(inst, params, seed, eta, 2.0, false, false,
                                core::StepRule::kFixed)});
  }
  // A2: alpha sweep (P = alpha d N).
  for (const double alpha : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    runs.push_back({"A2 alpha=" + std::to_string(alpha),
                    run_variant(inst, params, seed, 20.0, alpha, false,
                                false, core::StepRule::kFixed)});
  }
  // A3: schedule shape.
  runs.push_back({"A3 linear schedule",
                  run_variant(inst, params, seed, 20.0, 2.0, false, false,
                              core::StepRule::kFixed)});
  runs.push_back({"A3 geometric schedule",
                  run_variant(inst, params, seed, 20.0, 2.0, true, false,
                              core::StepRule::kFixed)});
  // A4: sample source.
  runs.push_back({"A4 last sample (paper)",
                  run_variant(inst, params, seed, 20.0, 2.0, false, false,
                              core::StepRule::kFixed)});
  runs.push_back({"A4 best-of-run sample",
                  run_variant(inst, params, seed, 20.0, 2.0, false, true,
                              core::StepRule::kFixed)});
  // A5: step rule.
  runs.push_back({"A5 fixed step (paper)",
                  run_variant(inst, params, seed, 20.0, 2.0, false, false,
                              core::StepRule::kFixed)});
  runs.push_back({"A5 diminishing step",
                  run_variant(inst, params, seed, 20.0, 2.0, false, false,
                              core::StepRule::kDiminishing)});
  runs.push_back({"A5 harmonic step",
                  run_variant(inst, params, seed, 20.0, 2.0, false, false,
                              core::StepRule::kHarmonic)});

  std::vector<double> candidates = {bench::greedy_reference_qkp(inst)};
  for (const auto& r : runs) {
    if (r.result.found_feasible) candidates.push_back(r.result.best_cost);
  }
  const double reference = bench::best_known(candidates);

  std::printf("%-26s %9s %9s %7s\n", "variant", "best-acc", "avg-acc",
              "feas%");
  bench::print_rule(60);
  for (const auto& r : runs) {
    const auto s = bench::score_against(r.result, reference);
    std::printf("%-26s %8.2f%% %8.2f%% %6.1f%%\n", r.label.c_str(),
                s.best_accuracy, s.avg_accuracy, 100.0 * s.feasibility);
  }
  bench::print_rule(60);
  std::printf("expected shape: eta=0 (pure penalty) trails adaptive "
              "variants; alpha far from 2 hurts; last-sample >= "
              "best-of-run; fixed step competitive.\n");
  return 0;
}
