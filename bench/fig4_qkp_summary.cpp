// Fig. 4 (paper):
//   4a — box plots (quartiles) of QKP best accuracy for N in {100,200,300}:
//        SAIM vs best SA [16] vs HE-IM [15] vs PT-DA [17]. The literature
//        systems are closed; the in-repo comparators are the same-budget
//        penalty method (2dN) and a PT-on-penalty-QUBO solver, which is the
//        algorithm PT-DA executes (DESIGN.md substitution).
//   4b — sample budgets: SAIM 2M MCS vs 200M (best SA), 19.5G (HE-IM),
//        15G (PT-DA) -> speedups 100x / 9,750x / 7,500x.
#include <cinttypes>

#include "anneal/parallel_tempering.hpp"
#include "bench_common.hpp"

namespace {

using namespace saim;

core::SolveResult run_pt_penalty_qkp(const problems::QkpInstance& instance,
                                     const core::ExperimentParams& params,
                                     double penalty_alpha,
                                     std::size_t pt_runs,
                                     std::uint64_t seed) {
  const auto mapping = problems::qkp_to_problem(instance);
  anneal::PtOptions pt;
  pt.replicas = 26;  // the PT-DA configuration [17]
  pt.beta_min = 0.2;
  pt.beta_max = params.beta_max;
  pt.sweeps = params.mcs_per_run;
  anneal::ParallelTemperingBackend backend(pt);
  core::PenaltyOptions opts;
  opts.runs = pt_runs;
  opts.penalty_alpha = penalty_alpha;
  opts.seed = seed;
  return core::solve_penalty_method(mapping.problem, backend, opts,
                                    core::make_qkp_evaluator(instance));
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("fig4_qkp_summary",
                       "Fig. 4 reproduction: QKP accuracy quartiles per size "
                       "and MCS budget comparison");
  args.add_flag("instances", "instances per (size,density) cell", "1")
      .add_flag("runs", "SAIM iterations (paper: 2000)", "800")
      .add_flag("pt-runs", "PT baseline outer runs", "8")
      .add_flag("baseline-alpha",
                "penalty alpha for the PT/penalty baselines; the PT-DA and "
                "SA baselines of the paper run *tuned* penalties, so the "
                "middle of the published tuned band (40..500 dN) is the "
                "fair default",
                "200")
      .add_flag("seed", "base seed", "1");
  args.add_bool("full", "paper scale");
  args.add_bool("skip-300", "skip N=300 (slowest cell)");
  if (!args.parse(argc, argv)) return 0;

  const bool full = args.get_bool("full");
  const std::size_t instances =
      full ? 10 : static_cast<std::size_t>(args.get_int("instances"));
  auto params = core::qkp_paper_params();
  params.runs = full ? 2000 : static_cast<std::size_t>(args.get_int("runs"));
  const std::size_t pt_runs =
      static_cast<std::size_t>(args.get_int("pt-runs"));
  const double baseline_alpha = args.get_double("baseline-alpha");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner("Fig. 4a — QKP best-accuracy quartiles by size", full,
                      std::to_string(instances) + " instances/cell, " +
                          std::to_string(params.runs) + " SAIM runs");

  struct Cell {
    std::size_t n;
    std::vector<int> densities;
  };
  std::vector<Cell> cells = {{100, {25, 50}}, {200, {25, 50, 75, 100}}};
  if (!args.get_bool("skip-300")) cells.push_back({300, {25, 50}});

  std::size_t saim_mcs_per_instance = 0;
  std::size_t pt_mcs_per_instance = 0;

  for (const auto& cell : cells) {
    std::vector<double> saim_acc;
    std::vector<double> pen_acc;
    std::vector<double> pt_acc;
    for (const int density : cell.densities) {
      for (std::size_t k = 1; k <= instances; ++k) {
        const auto inst = problems::make_paper_qkp(cell.n, density,
                                                   static_cast<int>(k));
        const auto saim = bench::run_saim_qkp(inst, params, seed + k);
        const auto pen = bench::run_penalty_qkp(
            inst, params, baseline_alpha, params.runs, params.mcs_per_run,
            seed + k + 101);
        const auto pt = run_pt_penalty_qkp(inst, params, baseline_alpha,
                                           pt_runs, seed + k + 202);

        const double reference = bench::best_known(
            {saim.found_feasible ? saim.best_cost : 0.0,
             pen.found_feasible ? pen.best_cost : 0.0,
             pt.found_feasible ? pt.best_cost : 0.0,
             bench::greedy_reference_qkp(inst)});
        saim_acc.push_back(
            bench::score_against(saim, reference).best_accuracy);
        pen_acc.push_back(bench::score_against(pen, reference).best_accuracy);
        pt_acc.push_back(bench::score_against(pt, reference).best_accuracy);
        saim_mcs_per_instance = saim.total_sweeps;
        pt_mcs_per_instance = pt.total_sweeps;
      }
    }
    std::printf("N=%-4zu SAIM        %s\n", cell.n,
                util::format_summary(util::summarize(saim_acc)).c_str());
    std::printf("       penalty(a)  %s\n",
                util::format_summary(util::summarize(pen_acc)).c_str());
    std::printf("       PT(26 repl) %s\n",
                util::format_summary(util::summarize(pt_acc)).c_str());
    bench::print_rule(84);
  }

  std::printf("\nFig. 4b — sample budgets (MCS per instance)\n");
  std::printf("%-22s %14s %10s\n", "method", "MCS", "vs SAIM");
  const double saim_mcs =
      static_cast<double>(saim_mcs_per_instance ? saim_mcs_per_instance : 1);
  std::printf("%-22s %14zu %10s\n", "SAIM (this run)", saim_mcs_per_instance,
              "1x");
  std::printf("%-22s %14zu %9.0fx\n", "PT penalty (this run)",
              pt_mcs_per_instance,
              static_cast<double>(pt_mcs_per_instance) / saim_mcs);
  std::printf("paper-reported budgets: SAIM 2M | best SA [16] 200M (100x) | "
              "HE-IM [15] 19.5G (9750x) | PT-DA [17] 15G (7500x)\n");
  return 0;
}
