// Table II (paper): penalty method vs SAIM on QKP N=100, d in {25, 50},
// instances k = 1..10 per density, all at the same total MCS budget.
//
//   column group 1: SAIM, 2000 SA runs x 1000 MCS      (untuned P = 2dN)
//   column group 2: penalty method, same 2000 x 1000   (tuned P)
//   column group 3: penalty method, 10 runs x 200k MCS (tuned P, the
//                   paper's coarse >=20%-feasibility ladder)
//
// The tuning ladder probes with the long-run shape (10 runs of the long
// MCS budget), matching how the paper tunes its actual experiment; the
// tuned alpha is then reused for the same-setup penalty column — the
// paper's high feasibility percentages there (93% avg) only make sense
// with the tuned P, not the untuned 2dN.
//
// Reported per instance: best accuracy, average accuracy over feasible
// samples, feasibility %, and the tuned P (in dN units). Accuracies are
// against the best-known reference across all methods (see bench_common).
#include <cinttypes>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace saim;

  util::ArgParser args(
      "table2_penalty_vs_saim",
      "Table II reproduction: penalty method vs SAIM for QKP N=100");
  args.add_flag("instances", "instances per density class (paper: 10)", "2")
      .add_flag("runs", "SAIM / same-setup penalty SA runs (paper: 2000)",
                "600")
      .add_flag("mcs", "MCS per short SA run (paper: 1000)", "1000")
      .add_flag("long-runs", "tuned-penalty long run count (paper: 10)", "10")
      .add_flag("seed", "base seed", "1");
  args.add_bool("full", "paper scale: 10 instances, 2000 runs, 2e5-MCS runs");
  if (!args.parse(argc, argv)) return 0;

  const bool full = args.get_bool("full");
  const std::size_t instances =
      full ? 10 : static_cast<std::size_t>(args.get_int("instances"));
  auto params = core::qkp_paper_params();
  params.runs = full ? 2000 : static_cast<std::size_t>(args.get_int("runs"));
  params.mcs_per_run = static_cast<std::size_t>(args.get_int("mcs"));
  const std::size_t long_runs =
      static_cast<std::size_t>(args.get_int("long-runs"));
  // Equal total budget: long runs share the same MCS total as SAIM.
  const std::size_t long_mcs = params.runs * params.mcs_per_run / long_runs;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Table II — penalty method vs SAIM (QKP N=100)", full,
      std::to_string(instances) + " instances/density, " +
          std::to_string(params.runs) + " short runs, tuned penalty " +
          std::to_string(long_runs) + " x " + std::to_string(long_mcs) +
          " MCS");

  std::printf("%-12s | %7s %7s %6s | %7s %7s %6s | %7s %7s %6s %8s\n",
              "instance", "SAIMbst", "SAIMavg", "feas%", "PENbst", "PENavg",
              "feas%", "TUNbst", "TUNavg", "feas%", "tunedP");
  bench::print_rule(110);

  util::RunningStats saim_best_all;
  util::RunningStats pen_best_all;
  util::RunningStats tuned_best_all;
  util::RunningStats tuned_alpha_all;

  for (const int density : {25, 50}) {
    for (std::size_t k = 1; k <= instances; ++k) {
      const auto inst =
          problems::make_paper_qkp(100, density, static_cast<int>(k));
      const auto mapping = problems::qkp_to_problem(inst);
      const auto eval = core::make_qkp_evaluator(inst);

      // --- SAIM, untuned P = 2dN.
      const auto saim = bench::run_saim_qkp(inst, params, seed + k);

      // --- The paper's coarse tuning loop, probing with short (1000-MCS)
      // runs: this reproduces the published tuned range 40dN..500dN. Note
      // a divergence documented in EXPERIMENTS.md: with our normalization
      // the true critical penalty is ~b^2 (far above the ladder), so
      // long, well-equilibrated runs at the tuned P still relax onto
      // slightly-overfilled unfeasible states; the short-run probes are
      // what keeps the tuned column competitive — the very non-robustness
      // SAIM is designed to remove.
      anneal::PBitBackend tune_backend(
          pbit::Schedule::linear(params.beta_max), params.mcs_per_run);
      core::PenaltyTuningOptions tune_opts;
      tune_opts.probe_runs = 10;
      tune_opts.seed = seed + k + 2000;
      const auto tuning =
          core::tune_penalty(mapping.problem, tune_backend, tune_opts, eval);

      // --- Penalty method, long runs at the tuned P.
      const auto pen_tuned = bench::run_penalty_qkp(
          inst, params, tuning.alpha, long_runs, long_mcs, seed + k + 3000);

      // --- Penalty method, same setup as SAIM, also at the tuned P.
      const auto pen_short = bench::run_penalty_qkp(
          inst, params, tuning.alpha, params.runs, params.mcs_per_run,
          seed + k + 1000);

      const double reference = bench::best_known(
          {saim.found_feasible ? saim.best_cost : 0.0,
           pen_short.found_feasible ? pen_short.best_cost : 0.0,
           pen_tuned.found_feasible ? pen_tuned.best_cost : 0.0,
           bench::greedy_reference_qkp(inst)});

      const auto s1 = bench::score_against(saim, reference);
      const auto s2 = bench::score_against(pen_short, reference);
      const auto s3 = bench::score_against(pen_tuned, reference);

      std::printf(
          "%-12s | %7.1f %7.1f %5.0f%% | %7.1f %7.1f %5.0f%% | %7.1f %7.1f "
          "%5.0f%% %6.0fdN\n",
          inst.name().c_str(), s1.best_accuracy, s1.avg_accuracy,
          100.0 * s1.feasibility, s2.best_accuracy, s2.avg_accuracy,
          100.0 * s2.feasibility, s3.best_accuracy, s3.avg_accuracy,
          100.0 * s3.feasibility, tuning.alpha);

      saim_best_all.add(s1.best_accuracy);
      pen_best_all.add(s2.best_accuracy);
      tuned_best_all.add(s3.best_accuracy);
      tuned_alpha_all.add(tuning.alpha);
    }
  }

  bench::print_rule(110);
  std::printf(
      "Average best accuracy: SAIM %.1f%% | penalty(2dN) %.1f%% | "
      "penalty(tuned, avg %.0fdN) %.1f%%\n",
      saim_best_all.mean(), pen_best_all.mean(), tuned_alpha_all.mean(),
      tuned_best_all.mean());
  std::printf(
      "Paper (Table II averages): SAIM 99.8 | penalty same-setup 85.0 | "
      "penalty tuned 88.8 (avg 195dN)\n");
  std::printf(
      "Expected shape: SAIM column dominates both penalty columns, and the "
      "tuned-P ladder lands well above 2dN.\n");
  return 0;
}
