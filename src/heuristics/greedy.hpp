// Greedy constructors and the drop/add repair operator.
//
// * greedy_mkp: fills by pseudo-utility density v_j / sum_i a_ij/B_i — the
//   classical surrogate ratio, also used to warm-start the B&B and to
//   repair GA offspring (Chu & Beasley's repair heuristic).
// * greedy_qkp: iterative marginal-profit-per-weight insertion; the QKP
//   objective is quadratic so each step re-evaluates marginal gains against
//   the current selection.
// * repair_mkp: DROP items (worst density first) until feasible, then ADD
//   items (best density first) while they fit. Guarantees feasibility.
#pragma once

#include <cstdint>
#include <vector>

#include "problems/mkp.hpp"
#include "problems/qkp.hpp"

namespace saim::heuristics {

/// Feasible-by-construction greedy MKP selection.
std::vector<std::uint8_t> greedy_mkp(const problems::MkpInstance& instance);

/// Feasible-by-construction greedy QKP selection.
std::vector<std::uint8_t> greedy_qkp(const problems::QkpInstance& instance);

/// Pseudo-utility densities v_j / sum_i (a_ij / B_i), shared by greedy,
/// repair and the GA.
std::vector<double> mkp_densities(const problems::MkpInstance& instance);

/// In-place Chu–Beasley repair: after this call `x` is feasible, and no
/// item can be added without violating a constraint (maximal selection).
void repair_mkp(const problems::MkpInstance& instance,
                std::vector<std::uint8_t>& x);

}  // namespace saim::heuristics
