#include "heuristics/greedy.hpp"

#include <algorithm>
#include <numeric>

namespace saim::heuristics {

std::vector<double> mkp_densities(const problems::MkpInstance& instance) {
  const std::size_t n = instance.n();
  const std::size_t m = instance.m();
  std::vector<double> density(n);
  for (std::size_t j = 0; j < n; ++j) {
    double w = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double cap = instance.capacity(i) > 0
                             ? static_cast<double>(instance.capacity(i))
                             : 1.0;
      w += static_cast<double>(instance.weight(i, j)) / cap;
    }
    density[j] = w > 0.0 ? static_cast<double>(instance.value(j)) / w
                         : static_cast<double>(instance.value(j));
  }
  return density;
}

namespace {

/// Item order by decreasing density, ties by index for determinism.
std::vector<std::size_t> density_order(const std::vector<double>& density) {
  std::vector<std::size_t> order(density.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (density[a] != density[b]) return density[a] > density[b];
    return a < b;
  });
  return order;
}

bool mkp_fits(const problems::MkpInstance& instance,
              const std::vector<std::int64_t>& residual, std::size_t j) {
  for (std::size_t i = 0; i < instance.m(); ++i) {
    if (instance.weight(i, j) > residual[i]) return false;
  }
  return true;
}

void mkp_apply(const problems::MkpInstance& instance,
               std::vector<std::int64_t>& residual, std::size_t j,
               std::int64_t sign) {
  for (std::size_t i = 0; i < instance.m(); ++i) {
    residual[i] -= sign * instance.weight(i, j);
  }
}

}  // namespace

std::vector<std::uint8_t> greedy_mkp(const problems::MkpInstance& instance) {
  const auto density = mkp_densities(instance);
  const auto order = density_order(density);

  std::vector<std::uint8_t> x(instance.n(), 0);
  std::vector<std::int64_t> residual(instance.capacities().begin(),
                                     instance.capacities().end());
  for (const auto j : order) {
    if (mkp_fits(instance, residual, j)) {
      x[j] = 1;
      mkp_apply(instance, residual, j, 1);
    }
  }
  return x;
}

void repair_mkp(const problems::MkpInstance& instance,
                std::vector<std::uint8_t>& x) {
  const auto density = mkp_densities(instance);
  const auto order = density_order(density);

  std::vector<std::int64_t> load(instance.m(), 0);
  for (std::size_t i = 0; i < instance.m(); ++i) {
    load[i] = instance.load(i, x);
  }

  // DROP phase: remove the worst-density selected items until feasible.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    bool feasible = true;
    for (std::size_t i = 0; i < instance.m(); ++i) {
      if (load[i] > instance.capacity(i)) {
        feasible = false;
        break;
      }
    }
    if (feasible) break;
    const std::size_t j = *it;
    if (x[j]) {
      x[j] = 0;
      for (std::size_t i = 0; i < instance.m(); ++i) {
        load[i] -= instance.weight(i, j);
      }
    }
  }

  // ADD phase: greedily insert unselected items that still fit.
  std::vector<std::int64_t> residual(instance.m());
  for (std::size_t i = 0; i < instance.m(); ++i) {
    residual[i] = instance.capacity(i) - load[i];
  }
  for (const auto j : order) {
    if (!x[j] && mkp_fits(instance, residual, j)) {
      x[j] = 1;
      mkp_apply(instance, residual, j, 1);
    }
  }
}

std::vector<std::uint8_t> greedy_qkp(const problems::QkpInstance& instance) {
  const std::size_t n = instance.n();
  std::vector<std::uint8_t> x(n, 0);
  std::int64_t residual = instance.capacity();

  // Marginal gain of adding j given current selection: value_j plus pair
  // values with already-selected items. Re-scanned each step (O(n^2) total
  // per added item) — fine at these sizes and keeps the logic transparent.
  while (true) {
    std::size_t best = n;
    double best_ratio = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (x[j] || instance.weight(j) > residual) continue;
      std::int64_t gain = instance.value(j);
      for (std::size_t k = 0; k < n; ++k) {
        if (x[k]) gain += instance.pair_value(j, k);
      }
      const double ratio = static_cast<double>(gain) /
                           static_cast<double>(std::max<std::int64_t>(
                               1, instance.weight(j)));
      if (best == n || ratio > best_ratio) {
        best = j;
        best_ratio = ratio;
      }
    }
    if (best == n || best_ratio <= 0.0) break;
    x[best] = 1;
    residual -= instance.weight(best);
  }
  return x;
}

}  // namespace saim::heuristics
