// Clang Thread Safety Analysis annotations (no-ops elsewhere).
//
// These macros wrap Clang's -Wthread-safety attributes so every
// mutex-guarded invariant in the codebase is machine-checked at compile
// time: a member declared SAIM_GUARDED_BY(mutex_) cannot be read or
// written without mutex_ held, a function declared SAIM_REQUIRES(mutex_)
// cannot be called without it, and the build fails (CI's thread-safety
// job compiles with -Werror=thread-safety) instead of the race shipping.
// GCC and MSVC see empty macros; the annotations carry zero runtime cost
// everywhere.
//
// The analysis only understands capability-annotated lock types, and
// libstdc++'s std::mutex carries no attributes — guard members with
// util::Mutex and lock with util::MutexLock (util/mutex.hpp), the
// annotated wrappers, not std::mutex/std::lock_guard directly.
//
// Attribute reference:
//   https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__)
#define SAIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SAIM_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Declares a type to BE a capability (a lock): util::Mutex.
#define SAIM_CAPABILITY(x) SAIM_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor: util::MutexLock.
#define SAIM_SCOPED_CAPABILITY SAIM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the named mutex held.
#define SAIM_GUARDED_BY(x) SAIM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE is guarded (the pointer itself is free).
#define SAIM_PT_GUARDED_BY(x) SAIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only with the named mutex(es) already held — the
/// *_locked() helper convention, enforced.
#define SAIM_REQUIRES(...) \
  SAIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function callable only with the named mutex(es) NOT held (deadlock
/// guard for public entry points that lock internally).
#define SAIM_EXCLUDES(...) SAIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and holds it past return.
#define SAIM_ACQUIRE(...) \
  SAIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define SAIM_RELEASE(...) \
  SAIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define SAIM_TRY_ACQUIRE(result, ...) \
  SAIM_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function returning a reference to the named capability.
#define SAIM_RETURN_CAPABILITY(x) SAIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — disables the analysis for one function. Every use must
/// carry a comment explaining why the invariant holds anyway.
#define SAIM_NO_THREAD_SAFETY_ANALYSIS \
  SAIM_THREAD_ANNOTATION(no_thread_safety_analysis)
