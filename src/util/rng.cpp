#include "util/rng.hpp"

namespace saim::util {

std::uint64_t Xoshiro256pp::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless algorithm: multiply-shift with rejection of
  // the biased low region. Average cost is one multiply for typical n.
  if (n == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256pp::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept {
  // Hash the pair through SplitMix64 twice so that (master, k) and
  // (master, k+1) share no low-bit structure.
  SplitMix64 sm(master ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

}  // namespace saim::util
