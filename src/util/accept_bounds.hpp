// Conservative bounds on libm exp/tanh for branch-free acceptance tests.
//
// The Monte-Carlo sweep engines spend most of a visit in one transcendental:
// Metropolis compares a uniform against exp(-beta*dH), the p-bit machine
// signs tanh(beta*I) + U(-1,1). Both are *comparisons*, not value uses — so
// a cheap interval [lo, hi] guaranteed to contain the libm result decides
// almost every visit without calling libm at all:
//
//   u <  lo  =>  u <  exp(arg)   (accept, certain)
//   u >= hi  =>  u >= exp(arg)   (reject, certain)
//   otherwise    call std::exp and decide exactly (rare: the interval is
//                ~4e-5 wide relative, so the ambiguous band is hit on the
//                order of 0.001% of visits)
//
// Decisions are therefore bit-identical to calling libm on every visit —
// the property the bit-sliced engine's parity tests pin — while the hot
// path runs ~10 cheap fp ops instead of an exp/tanh call per 4 lanes.
//
// Construction (all margins deliberately loose; verified empirically over
// millions of points by tests/simd_shim_test.cpp):
//   exp(a) = 2^r, r = a*log2(e). k = floor(r), f = r-k (exact), and a
//   degree-6 Taylor of e^(f ln2) underestimates 2^f with relative
//   remainder <= ln2^7/5040 * 2 < 3.1e-5. 2^k is assembled exactly with
//   the (k+1023)<<52 bit trick. Upper slack 4e-5 covers the remainder +
//   every rounding (poly Horner, exponent product, libm's own <=1 ulp);
//   lower slack 1e-9 covers the roundings alone. |r| > 970 falls into
//   saturated branches. The bounds hold for BOTH the true value and the
//   libm double, so they compose: tanh bounds map exp(2x) bounds through
//   the monotone (e-1)/(e+1), widened by an absolute pad for the division
//   rounding and libm tanh's ~2 ulp, with |x| >= 20 saturated.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/simd.hpp"

namespace saim::util {

struct BoundsF64x4 {
  F64x4 lo, hi;
};

namespace accept_detail {
inline constexpr double kLog2e = 1.4426950408889634074;  // log2(e)
inline constexpr double kLn2 = 0.6931471805599453094;    // ln 2
inline constexpr double kExpLowerSlack = 1.0 - 1e-9;
inline constexpr double kExpUpperSlack = 1.0 + 4e-5;
inline constexpr double kRangeLimit = 970.0;
inline constexpr double kTinyHi = 0x1.0p-900;
inline constexpr double kBigLo = 0x1.0p900;
inline constexpr double kTanhPad = 1e-12;
inline constexpr double kTanhSat = 20.0;            // tanh within 2^-56 of 1
inline constexpr double kTanhSatLo = 1.0 - 0x1.0p-48;
// Tier-1 exponent trick (see exp_accept): with r = arg*log2(e), log2(u)
// lies in [e, e+1) for biased exponent be = e + 1023, so be < r + 1022
// accepts and be >= r + 1023 rejects; the 1e-9 margin dwarfs the rounding
// error in r (< 1e-12 for |arg| < 750). Shared with the bit-sliced sweep
// engine (ising/bitslice.cpp) so both paths decide identically.
inline constexpr double kTier1Accept = 1022.0 - 1e-9;
inline constexpr double kTier1Reject = 1023.0 + 1e-9;
}  // namespace accept_detail

/// Per-lane [lo, hi] with lo <= std::exp(a) <= hi (and the true exp too).
inline BoundsF64x4 exp_bounds(F64x4 a) noexcept {
  using namespace accept_detail;
  const F64x4 r = a * F64x4::broadcast(kLog2e);
  const F64x4 limit = F64x4::broadcast(kRangeLimit);
  const F64x4 tiny = cmp_lt(r, F64x4::zero() - limit);
  const F64x4 big = cmp_lt(limit, r);
  const F64x4 rc = fmin4(fmax4(r, F64x4::zero() - limit), limit);

  const F64x4 k = floor4(rc);
  const F64x4 f = rc - k;  // exact: k = floor(rc)
  const F64x4 x = f * F64x4::broadcast(kLn2);

  // Degree-6 Taylor of e^x, x in [0, ln2): underestimates the true value.
  F64x4 p = F64x4::broadcast(1.0 / 720.0);
  p = p * x + F64x4::broadcast(1.0 / 120.0);
  p = p * x + F64x4::broadcast(1.0 / 24.0);
  p = p * x + F64x4::broadcast(1.0 / 6.0);
  p = p * x + F64x4::broadcast(0.5);
  p = p * x + F64x4::broadcast(1.0);
  p = p * x + F64x4::broadcast(1.0);

  // 2^k exactly: (k + 1023) placed in the exponent field. k in
  // [-970, 970], so k + 1023 + 2^52 is an exact integer-valued double
  // whose low mantissa bits are k + 1023.
  const F64x4 biased =
      (k + F64x4::broadcast(1023.0)) + F64x4::broadcast(0x1.0p52);
  const F64x4 pow2k = bitcast_f64(shl<52>(bitcast_u64(biased)));

  const F64x4 base = p * pow2k;
  F64x4 lo = base * F64x4::broadcast(kExpLowerSlack);
  F64x4 hi = base * F64x4::broadcast(kExpUpperSlack);

  lo = select(tiny, F64x4::zero(), lo);
  hi = select(tiny, F64x4::broadcast(kTinyHi), hi);
  lo = select(big, F64x4::broadcast(kBigLo), lo);
  hi = select(big, F64x4::broadcast(
                       std::numeric_limits<double>::infinity()),
              hi);
  return {lo, hi};
}

/// Scalar tiered Metropolis acceptance: decides u < std::exp(arg)
/// bit-identically to calling libm on every draw — the bit-sliced
/// engine's three-tier test (ising/bitslice.cpp), one lane. Tier 1 reads
/// u's binary exponent against r = arg*log2(e) and decides ~all draws;
/// tier 2 consults exp_bounds; only the ambiguous band reaches std::exp.
/// `u` must be a uniform01 draw (0 or a normal in [2^-53, 1)).
inline bool exp_accept(double u, double arg) noexcept {
  using namespace accept_detail;
  if (u >= 0x1.0p-53) {  // a u == 0 draw carries no exponent information
    const double r = arg * kLog2e;
    const double be =
        static_cast<double>(std::bit_cast<std::uint64_t>(u) >> 52);
    if (be < r + kTier1Accept) return true;
    if (be >= r + kTier1Reject) return false;
  }
  const BoundsF64x4 eb = exp_bounds(F64x4::broadcast(arg));
  double lo[4], hi[4];
  eb.lo.store(lo);
  eb.hi.store(hi);
  if (u < lo[0]) return true;
  if (u >= hi[0]) return false;
  return u < std::exp(arg);
}

/// Per-lane [lo, hi] with lo <= std::tanh(x) <= hi.
inline BoundsF64x4 tanh_bounds(F64x4 x) noexcept {
  using namespace accept_detail;
  const F64x4 sat = F64x4::broadcast(kTanhSat);
  const F64x4 sat_pos = cmp_ge(x, sat);
  const F64x4 sat_neg = cmp_le(x, F64x4::zero() - sat);

  const BoundsF64x4 e2 = exp_bounds(x + x);  // bounds on e^(2x)
  const F64x4 one = F64x4::broadcast(1.0);
  const F64x4 pad = F64x4::broadcast(kTanhPad);
  F64x4 lo = (e2.lo - one) / (e2.lo + one) - pad;
  F64x4 hi = (e2.hi - one) / (e2.hi + one) + pad;

  lo = select(sat_pos, F64x4::broadcast(kTanhSatLo), lo);
  hi = select(sat_pos, one, hi);
  lo = select(sat_neg, F64x4::zero() - one, lo);
  hi = select(sat_neg, F64x4::zero() - F64x4::broadcast(kTanhSatLo), hi);
  return {lo, hi};
}

/// Scalar tiered p-bit sign test: decides tanh(x) + u >= 0 bit-identically
/// to calling std::tanh on every draw — the bit-sliced engine's test
/// (ising/bitslice.cpp), one lane. Saturation tier for |x| >= 20 (the
/// draw decides only inside the 2^-48 band next to ±1), tanh_bounds tier
/// otherwise; ambiguous draws reach libm. `u` is a uniform_sym draw in
/// [-1, 1).
inline bool tanh_sign_nonneg(double x, double u) noexcept {
  using namespace accept_detail;
  if (x >= kTanhSat || x <= -kTanhSat) {
    if (std::abs(u) < kTanhSatLo) return x >= 0.0;
    return std::tanh(x) + u >= 0.0;
  }
  const BoundsF64x4 tb = tanh_bounds(F64x4::broadcast(x));
  double lo[4], hi[4];
  tb.lo.store(lo);
  tb.hi.store(hi);
  if (lo[0] + u >= 0.0) return true;
  if (hi[0] + u < 0.0) return false;
  return std::tanh(x) + u >= 0.0;
}

}  // namespace saim::util
