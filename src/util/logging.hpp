// Leveled stderr logging with a global threshold. The solver library itself
// never logs at Info or below from hot paths; benches raise verbosity when
// tracing convergence (Fig. 3 / Fig. 5 style runs).
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace saim::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets/queries the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// "debug"/"info"/"warn"/"error" -> the level (the --log-level flag's
/// vocabulary); std::nullopt on anything else.
std::optional<LogLevel> parse_log_level(const std::string& name);

/// Emits one line to stderr as "[  12.345s] [level] message" if enabled.
/// The timestamp is monotonic seconds since the process's first log line
/// — crash-loop and respawn sequences read as relative timings without
/// any wall-clock parsing.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace saim::util
