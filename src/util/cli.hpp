// Tiny command-line flag parser shared by the bench/example binaries.
// Supports `--name value`, `--name=value` and boolean `--flag` forms plus
// automatic --help generation. Deliberately minimal: no subcommands, no
// positional arguments beyond what the benches need.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace saim::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a flag with a default value; returns *this for chaining.
  /// Throws std::logic_error on a duplicate registration (a silently
  /// clobbered default is a bug at the call site, not a user error).
  ArgParser& add_flag(const std::string& name, const std::string& help,
                      std::string default_value);
  ArgParser& add_bool(const std::string& name, const std::string& help);
  /// A flag that may repeat: every occurrence's value is kept, in order
  /// (read back with get_all; get() returns the last occurrence, "" when
  /// none).
  ArgParser& add_multi(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (and prints usage) on --help or on a parse
  /// error such as an unknown flag; error() then carries the message,
  /// naming the offending flag.
  bool parse(int argc, const char* const* argv);

  /// The last parse error ("unknown flag: --bogus", ...); empty after a
  /// successful parse or plain --help.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  /// Every value a multi flag received, in command-line order.
  [[nodiscard]] std::vector<std::string> get_all(
      const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
    bool is_multi = false;
    std::vector<std::string> values;  ///< multi flags: every occurrence
  };

  std::optional<Flag*> find(const std::string& name);

  std::string program_;
  std::string description_;
  std::string error_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace saim::util
