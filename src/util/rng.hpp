// Deterministic, fast pseudo-random number generation for Monte-Carlo spin
// dynamics. The hot loop of a p-bit sweep draws one uniform per spin per
// Monte-Carlo sweep, so the generator must be cheap (a few ns), splittable
// (independent streams per replica/run) and reproducible across platforms.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded through SplitMix64,
// the combination recommended by the authors: SplitMix64 decorrelates
// low-entropy user seeds (0, 1, 2, ...) before they reach the xoshiro state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace saim::util {

/// SplitMix64: tiny 64-bit generator used to expand user seeds into
/// full-entropy xoshiro state. Also usable standalone for hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ — 256-bit state, period 2^256-1, passes BigCrush.
/// Satisfies UniformRandomBitGenerator so it can also feed <random>.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that consecutive seeds give uncorrelated streams.
  explicit Xoshiro256pp(std::uint64_t seed = 0x5eed5a1a5eed5a1aULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [-1, 1) — the p-bit noise term rand(-1,1) of eq. (10).
  double uniform_sym() noexcept { return 2.0 * uniform01() - 1.0; }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with probability p in [0,1].
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Jump function: advances 2^128 steps; use to derive parallel streams
  /// from one seed when explicit reseeding is not desired.
  void jump() noexcept;

  /// Raw 256-bit state snapshot. The bit-sliced sweep engine copies a
  /// lane's scalar stream into its SoA state (after any initial-state
  /// draws) and continues it bit-for-bit.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives a child seed from (master, stream-id). Used so that every SA run,
/// replica, or GA population gets an independent deterministic stream.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept;

}  // namespace saim::util
