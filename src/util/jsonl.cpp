#include "util/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace saim::util {

// ----------------------------------------------------------------- access

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto* obj = std::get_if<Object>(&value_);
  if (!obj) return nullptr;
  const auto it = obj->find(key);
  return it == obj->end() ? nullptr : &it->second;
}

bool JsonValue::as_bool(bool fallback) const {
  const auto* b = std::get_if<bool>(&value_);
  return b ? *b : fallback;
}

double JsonValue::as_double(double fallback) const {
  const auto* d = std::get_if<double>(&value_);
  return d ? *d : fallback;
}

namespace {
// Doubles beyond 2^53 are not exact integers anyway, and casting a value
// outside the target's range is UB — out-of-range inputs get the fallback.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53
}  // namespace

std::int64_t JsonValue::as_int(std::int64_t fallback) const {
  const auto* d = std::get_if<double>(&value_);
  if (!d || *d < -kMaxExactInt || *d > kMaxExactInt) return fallback;
  return static_cast<std::int64_t>(*d);
}

std::uint64_t JsonValue::as_uint(std::uint64_t fallback) const {
  const auto* d = std::get_if<double>(&value_);
  if (!d || *d < 0.0 || *d > kMaxExactInt) return fallback;
  return static_cast<std::uint64_t>(*d);
}

const std::string& JsonValue::as_string() const {
  static const std::string kEmpty;
  const auto* s = std::get_if<std::string>(&value_);
  return s ? *s : kEmpty;
}

const JsonValue::Object& JsonValue::object() const {
  const auto* obj = std::get_if<Object>(&value_);
  if (!obj) throw std::runtime_error("JsonValue: not an object");
  return *obj;
}

const JsonValue::Array& JsonValue::array() const {
  const auto* arr = std::get_if<Array>(&value_);
  if (!arr) throw std::runtime_error("JsonValue: not an array");
  return *arr;
}

// ----------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') code |= unsigned(c - '0');
      else if (c >= 'a' && c <= 'f') code |= unsigned(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= unsigned(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(char(cp));
    } else if (cp < 0x800) {
      out.push_back(char(0xc0 | (cp >> 6)));
      out.push_back(char(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(char(0xe0 | (cp >> 12)));
      out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(char(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(char(0xf0 | (cp >> 18)));
      out.push_back(char(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(char(0x80 | (cp & 0x3f)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate
            if (!consume_literal("\\u")) fail("lone high surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

// ----------------------------------------------------------------- writer

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void append_json(std::string& out, const JsonValue& v) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    const double d = v.as_double();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
    } else {
      out += "null";  // JSON has no inf/nan
    }
  } else if (v.is_string()) {
    out += '"';
    out += json_escape(v.as_string());
    out += '"';
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const auto& element : v.array()) {
      if (!first) out += ',';
      first = false;
      append_json(out, element);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, value] : v.object()) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += json_escape(key);
      out += "\":";
      append_json(out, value);
    }
    out += '}';
  }
}

}  // namespace

std::string to_json(const JsonValue& value) {
  std::string out;
  append_json(out, value);
  return out;
}

void JsonWriter::key(std::string_view name) {
  if (body_.size() > 1) body_ += ",";
  body_ += "\"";
  body_ += json_escape(name);
  body_ += "\":";
}

JsonWriter& JsonWriter::field(std::string_view name, std::string_view value) {
  key(name);
  body_ += "\"";
  body_ += json_escape(value);
  body_ += "\"";
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, const char* value) {
  return field(name, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view name, double value) {
  key(name);
  if (std::isfinite(value)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    body_ += buf;
  } else {
    body_ += "null";  // JSON has no inf/nan
  }
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::int64_t value) {
  key(name);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::uint64_t value) {
  key(name);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, int value) {
  return field(name, static_cast<std::int64_t>(value));
}

JsonWriter& JsonWriter::field(std::string_view name, bool value) {
  key(name);
  body_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_field(std::string_view name,
                                  std::string_view json) {
  key(name);
  body_ += json;
  return *this;
}

}  // namespace saim::util
