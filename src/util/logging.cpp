#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace saim::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Anchor at the first emitted line (static init is thread-safe), so a
  // tool's log reads as elapsed seconds from its first event.
  static const auto t0 = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stderr, "[%9.3fs] [%s] %s\n", elapsed, level_name(level),
               message.c_str());
}

}  // namespace saim::util
