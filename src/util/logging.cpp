#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace saim::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace saim::util
