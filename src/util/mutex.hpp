// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so
// -Wthread-safety cannot see std::lock_guard acquire anything — every
// SAIM_GUARDED_BY member would warn on every access. These wrappers are
// the thinnest possible annotated veneer:
//
//   util::Mutex      — a std::mutex declared SAIM_CAPABILITY; guard
//                      members with SAIM_GUARDED_BY(mutex_).
//   util::MutexLock  — the scoped lock (std::unique_lock underneath),
//                      declared SAIM_SCOPED_CAPABILITY. Condition-variable
//                      waits go through native(): the analysis does not
//                      model wait()'s unlock/relock, which is sound — the
//                      capability is held at every point the analysis can
//                      observe (before and after the wait).
//
// Zero overhead: every method is a forwarding inline, and on non-Clang
// builds the attributes vanish entirely. Predicated waits are written as
// explicit `while (!pred_locked()) cv.wait(lock.native())` loops so the
// predicate lives in a SAIM_REQUIRES member function the analysis can
// check — a lambda passed to cv.wait(lock, pred) is analyzed as its own
// unannotated function and would warn on every guarded access.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace saim::util {

class SAIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SAIM_ACQUIRE() { m_.lock(); }
  void unlock() SAIM_RELEASE() { m_.unlock(); }
  bool try_lock() SAIM_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable interop only (via
  /// MutexLock::native()); do not lock it directly — the analysis would
  /// not see the acquisition.
  [[nodiscard]] std::mutex& native_handle() noexcept { return m_; }

 private:
  std::mutex m_;
};

class SAIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SAIM_ACQUIRE(mutex)
      : lock_(mutex.native_handle()) {}
  ~MutexLock() SAIM_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For std::condition_variable::wait(lock.native()) — wait's transient
  /// unlock/relock is invisible to the analysis (see file comment).
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace saim::util
