// Minimal JSON support for the JSONL (one object per line) serving
// protocol: saim_serve parses job lines with parse_json and emits result
// lines with JsonWriter; the service bench writes BENCH_service.json the
// same way. Deliberately small — no external dependency, no DOM mutation,
// no streaming — but a full parser for the value grammar (objects, arrays,
// strings with escapes incl. \uXXXX surrogate pairs, numbers, literals),
// because job files are written by hand and deserve real error messages.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace saim::util {

class JsonValue {
 public:
  using Object = std::map<std::string, JsonValue>;
  using Array = std::vector<JsonValue>;

  JsonValue() = default;  // null
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  // Without this, JsonValue("x") would silently pick the bool overload
  // (pointer decay beats user-defined conversion to std::string).
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(Object o) : value_(std::move(o)) {}
  JsonValue(Array a) : value_(std::move(a)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Typed accessors with defaults (no coercion between types).
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const;
  [[nodiscard]] std::uint64_t as_uint(std::uint64_t fallback = 0) const;
  [[nodiscard]] const std::string& as_string() const;  ///< "" when not a string

  [[nodiscard]] const Object& object() const;  ///< throws when not an object
  [[nodiscard]] const Array& array() const;    ///< throws when not an array

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Object, Array>
      value_ = nullptr;
};

/// Parses one complete JSON value (rejects trailing garbage). Throws
/// std::runtime_error with a byte offset on malformed input.
JsonValue parse_json(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Serializes a JsonValue back to compact JSON. Together with parse_json
/// this round-trips every value the parser can produce: strings re-escape
/// (control chars as \u00XX, UTF-8 — including parsed surrogate pairs —
/// passes through as raw bytes), numbers print with 17 significant digits
/// so the double survives bit-exactly, object keys come out in the
/// parser's (sorted) order. Used by the shard router to rewrite request
/// lines without perturbing any other field.
std::string to_json(const JsonValue& value);

/// Builds one JSON object, field by field, in insertion order.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view name, std::string_view value);
  JsonWriter& field(std::string_view name, const char* value);
  JsonWriter& field(std::string_view name, double value);
  JsonWriter& field(std::string_view name, std::int64_t value);
  JsonWriter& field(std::string_view name, std::uint64_t value);
  JsonWriter& field(std::string_view name, int value);
  JsonWriter& field(std::string_view name, bool value);
  /// Pre-serialized JSON (nested object/array, or "null").
  JsonWriter& raw_field(std::string_view name, std::string_view json);

  /// Pre-sizes the internal buffer (serving hot path: a result line's
  /// size is known within a few bytes, so one reserve avoids the
  /// append-by-append growth reallocations).
  void reserve(std::size_t bytes) { body_.reserve(bytes + 1); }

  /// The finished object, e.g. {"a":1,"b":"x"}.
  [[nodiscard]] std::string str() const { return body_ + "}"; }

  /// Destructive str(): closes the object and MOVES the buffer out (no
  /// copy). The writer is spent afterwards — hot render paths that build
  /// one line per writer use this instead of str().
  [[nodiscard]] std::string take() {
    body_ += '}';
    return std::move(body_);
  }

 private:
  void key(std::string_view name);

  std::string body_ = "{";
};

}  // namespace saim::util
