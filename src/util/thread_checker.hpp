// ThreadChecker — runtime enforcement for "single-threaded by design".
//
// ShardRouter and Supervisor hold no mutexes on purpose: one pump loop
// owns them, so locking would only buy overhead. That contract used to be
// a header comment; this makes it load-bearing. The owning class embeds a
// ThreadChecker and calls assert_current_thread() at its entry points —
// the first call binds the checker to the calling thread, every later
// call from a different thread aborts with a diagnostic instead of
// corrupting unsynchronized state silently.
//
// Cost: one relaxed atomic load + compare per checked call — noise next
// to the work those entry points do, so the check stays on in release
// builds (a cross-thread call is a bug worth an abort in production too,
// and the TSan tier exercises exactly these paths).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace saim::util {

class ThreadChecker {
 public:
  /// `what` names the checked object in the abort diagnostic; it must be
  /// a string literal (the pointer is kept, not copied).
  explicit ThreadChecker(const char* what) noexcept : what_(what) {}

  /// Binds to the first calling thread; aborts on any other.
  void assert_current_thread() const noexcept {
    const auto self = std::this_thread::get_id();
    std::thread::id bound = owner_.load(std::memory_order_relaxed);
    if (bound == std::thread::id{}) {
      // First call wins; a concurrent first call from another thread loses
      // the CAS and falls through to the mismatch abort — exactly the bug
      // this class exists to catch.
      if (owner_.compare_exchange_strong(bound, self,
                                         std::memory_order_relaxed)) {
        return;
      }
    }
    if (bound != self) {
      std::fprintf(stderr,
                   "FATAL: %s is single-threaded by contract but was "
                   "entered from a second thread\n",
                   what_);
      std::abort();
    }
  }

  /// Re-binds to the next calling thread (ownership handoff, e.g. tests
  /// driving one object from sequential threads with external ordering).
  void detach() noexcept {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  const char* what_;
  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace saim::util
