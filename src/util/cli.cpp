#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

namespace saim::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_flag(const std::string& name, const std::string& help,
                               std::string default_value) {
  if (flags_.contains(name)) {
    throw std::logic_error("ArgParser: duplicate flag registration --" +
                           name);
  }
  order_.push_back(name);
  flags_[name] = Flag{help, std::move(default_value), false};
  return *this;
}

ArgParser& ArgParser::add_bool(const std::string& name,
                               const std::string& help) {
  if (flags_.contains(name)) {
    throw std::logic_error("ArgParser: duplicate flag registration --" +
                           name);
  }
  order_.push_back(name);
  flags_[name] = Flag{help, "false", true};
  return *this;
}

ArgParser& ArgParser::add_multi(const std::string& name,
                                const std::string& help) {
  if (flags_.contains(name)) {
    throw std::logic_error("ArgParser: duplicate flag registration --" +
                           name);
  }
  order_.push_back(name);
  Flag flag{help, "", false};
  flag.is_multi = true;
  flags_[name] = std::move(flag);
  return *this;
}

std::optional<ArgParser::Flag*> ArgParser::find(const std::string& name) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return &it->second;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected argument: " + arg;
      std::fprintf(stderr, "%s\n%s", error_.c_str(), usage().c_str());
      return false;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    auto flag = find(arg);
    if (!flag) {
      error_ = "unknown flag: --" + arg;
      std::fprintf(stderr, "%s\n%s", error_.c_str(), usage().c_str());
      return false;
    }
    if ((*flag)->is_bool) {
      (*flag)->value = has_value ? value : "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          error_ = "flag --" + arg + " expects a value";
          std::fprintf(stderr, "%s\n", error_.c_str());
          return false;
        }
        value = argv[++i];
      }
      (*flag)->value = value;
      if ((*flag)->is_multi) (*flag)->values.push_back(std::move(value));
    }
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("ArgParser: unregistered flag " + name);
  }
  return it->second.value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool ArgParser::get_bool(const std::string& name) const {
  const auto v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::string> ArgParser::get_all(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("ArgParser: unregistered flag " + name);
  }
  return it->second.values;
}

std::string ArgParser::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    out += "  --" + name;
    if (!f.is_bool) out += " <value>";
    out += "\n      " + f.help;
    out += f.is_multi ? " (repeatable)" : " (default: " + f.value + ")";
    out += "\n";
  }
  out += "  --help\n      show this message\n";
  return out;
}

}  // namespace saim::util
