#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace saim::util {

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  if (!file_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::CsvWriter() = default;

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_line(const std::string& line) {
  if (to_file_) {
    file_ << line << '\n';
  } else {
    buffer_ += line;
    buffer_ += '\n';
  }
}

void CsvWriter::write_header(std::initializer_list<std::string_view> names) {
  std::string line;
  bool first = true;
  for (const auto name : names) {
    if (!first) line += ',';
    line += escape(name);
    first = false;
  }
  write_line(line);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  std::string line;
  bool first = true;
  for (const auto& f : fields) {
    if (!first) line += ',';
    line += escape(f);
    first = false;
  }
  write_line(line);
}

void CsvWriter::write_row(const std::vector<double>& values, int precision) {
  std::ostringstream os;
  os.precision(precision);
  bool first = true;
  for (const double v : values) {
    if (!first) os << ',';
    os << v;
    first = false;
  }
  write_line(os.str());
}

}  // namespace saim::util
