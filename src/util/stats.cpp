#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace saim::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> sorted, double p) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

QuartileSummary summarize(std::span<const double> values) {
  QuartileSummary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = percentile(sorted, 25.0);
  s.median = percentile(sorted, 50.0);
  s.q3 = percentile(sorted, 75.0);
  s.mean = mean_of(sorted);
  return s;
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::string format_summary(const QuartileSummary& s, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << s.min << "/" << s.q1 << "/" << s.median << "/" << s.q3 << "/" << s.max
     << " (mean " << s.mean << ")";
  return os.str();
}

}  // namespace saim::util
