// Portable 4-lane SIMD shim for the sweep engines.
//
// F64x4 / U64x4 wrap one AVX2 vector, a pair of NEON vectors, or a plain
// 4-element array, behind one API. Every backend implements IDENTICAL
// per-lane semantics — same operations, same rounding, no FMA contraction
// — so a binary built with SAIM_SIMD=OFF (or on a host without AVX2/NEON)
// produces bit-identical results to the intrinsic paths. That invariant is
// what lets ising::BitSliceEngine and the vectorized Adjacency reductions
// claim bit-exact parity with the scalar engines on every platform.
//
// Feature selection is compile-time: AVX2 when the compiler was given
// -mavx2 (CMake's SAIM_SIMD=ON does this on x86-64), NEON on aarch64, the
// scalar emulation otherwise or when SAIM_SIMD_DISABLE is defined.
//
// Mask discipline: comparison results are canonical masks (all-ones or
// all-zeros per lane). select() and mask arithmetic assume canonical
// masks; feeding arbitrary bit patterns is undefined behaviour of this
// shim (the AVX2 blend reads only the lane's sign bit).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#if !defined(SAIM_SIMD_DISABLE)
#if defined(__AVX2__)
#define SAIM_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define SAIM_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace saim::util {

#if defined(SAIM_SIMD_AVX2)

struct U64x4;

struct F64x4 {
  __m256d v;

  static F64x4 zero() noexcept { return {_mm256_setzero_pd()}; }
  static F64x4 broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static F64x4 set(double a, double b, double c, double d) noexcept {
    return {_mm256_set_pd(d, c, b, a)};  // lane 0 = a
  }
  static F64x4 load(const double* p) noexcept {
    return {_mm256_loadu_pd(p)};
  }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
};

struct U64x4 {
  __m256i v;

  static U64x4 broadcast(std::uint64_t x) noexcept {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  static U64x4 set(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                   std::uint64_t d) noexcept {
    return {_mm256_set_epi64x(static_cast<long long>(d),
                              static_cast<long long>(c),
                              static_cast<long long>(b),
                              static_cast<long long>(a))};
  }
  static U64x4 load(const std::uint64_t* p) noexcept {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint64_t* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
};

inline F64x4 operator+(F64x4 a, F64x4 b) noexcept {
  return {_mm256_add_pd(a.v, b.v)};
}
inline F64x4 operator-(F64x4 a, F64x4 b) noexcept {
  return {_mm256_sub_pd(a.v, b.v)};
}
inline F64x4 operator*(F64x4 a, F64x4 b) noexcept {
  return {_mm256_mul_pd(a.v, b.v)};
}
inline F64x4 operator/(F64x4 a, F64x4 b) noexcept {
  return {_mm256_div_pd(a.v, b.v)};
}
inline F64x4 fmax4(F64x4 a, F64x4 b) noexcept {
  return {_mm256_max_pd(a.v, b.v)};
}
inline F64x4 fmin4(F64x4 a, F64x4 b) noexcept {
  return {_mm256_min_pd(a.v, b.v)};
}
inline F64x4 floor4(F64x4 a) noexcept { return {_mm256_floor_pd(a.v)}; }

// fp comparisons -> canonical all-ones/all-zeros masks (carried as F64x4).
inline F64x4 cmp_lt(F64x4 a, F64x4 b) noexcept {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline F64x4 cmp_le(F64x4 a, F64x4 b) noexcept {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
inline F64x4 cmp_ge(F64x4 a, F64x4 b) noexcept {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}

// Bitwise mask algebra on F64x4-carried masks.
inline F64x4 mask_and(F64x4 a, F64x4 b) noexcept {
  return {_mm256_and_pd(a.v, b.v)};
}
inline F64x4 mask_or(F64x4 a, F64x4 b) noexcept {
  return {_mm256_or_pd(a.v, b.v)};
}
inline F64x4 mask_andnot(F64x4 a, F64x4 b) noexcept {  // ~a & b
  return {_mm256_andnot_pd(a.v, b.v)};
}
inline F64x4 mask_xor(F64x4 a, F64x4 b) noexcept {
  return {_mm256_xor_pd(a.v, b.v)};
}

/// Per-lane `mask ? a : b` (mask canonical).
inline F64x4 select(F64x4 mask, F64x4 a, F64x4 b) noexcept {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}
/// 4-bit lane mask from the sign bits (bit l = lane l).
inline int movemask(F64x4 mask) noexcept { return _mm256_movemask_pd(mask.v); }

inline F64x4 bitcast_f64(U64x4 a) noexcept {
  return {_mm256_castsi256_pd(a.v)};
}
inline U64x4 bitcast_u64(F64x4 a) noexcept {
  return {_mm256_castpd_si256(a.v)};
}

inline U64x4 operator^(U64x4 a, U64x4 b) noexcept {
  return {_mm256_xor_si256(a.v, b.v)};
}
inline U64x4 operator&(U64x4 a, U64x4 b) noexcept {
  return {_mm256_and_si256(a.v, b.v)};
}
inline U64x4 operator|(U64x4 a, U64x4 b) noexcept {
  return {_mm256_or_si256(a.v, b.v)};
}
inline U64x4 operator+(U64x4 a, U64x4 b) noexcept {
  return {_mm256_add_epi64(a.v, b.v)};
}
template <int K>
inline U64x4 shl(U64x4 a) noexcept {
  return {_mm256_slli_epi64(a.v, K)};
}
template <int K>
inline U64x4 shr(U64x4 a) noexcept {
  return {_mm256_srli_epi64(a.v, K)};
}
/// Per-lane `mask ? a : b` on integers (mask canonical).
inline U64x4 select(U64x4 mask, U64x4 a, U64x4 b) noexcept {
  return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
}

#elif defined(SAIM_SIMD_NEON)

struct U64x4;

struct F64x4 {
  float64x2_t lo, hi;

  static F64x4 zero() noexcept { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static F64x4 broadcast(double x) noexcept {
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  static F64x4 set(double a, double b, double c, double d) noexcept {
    const double lo[2] = {a, b}, hi[2] = {c, d};
    return {vld1q_f64(lo), vld1q_f64(hi)};
  }
  static F64x4 load(const double* p) noexcept {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  void store(double* p) const noexcept {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
};

struct U64x4 {
  uint64x2_t lo, hi;

  static U64x4 broadcast(std::uint64_t x) noexcept {
    return {vdupq_n_u64(x), vdupq_n_u64(x)};
  }
  static U64x4 set(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                   std::uint64_t d) noexcept {
    const std::uint64_t lo[2] = {a, b}, hi[2] = {c, d};
    return {vld1q_u64(lo), vld1q_u64(hi)};
  }
  static U64x4 load(const std::uint64_t* p) noexcept {
    return {vld1q_u64(p), vld1q_u64(p + 2)};
  }
  void store(std::uint64_t* p) const noexcept {
    vst1q_u64(p, lo);
    vst1q_u64(p + 2, hi);
  }
};

inline F64x4 operator+(F64x4 a, F64x4 b) noexcept {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline F64x4 operator-(F64x4 a, F64x4 b) noexcept {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline F64x4 operator*(F64x4 a, F64x4 b) noexcept {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
inline F64x4 operator/(F64x4 a, F64x4 b) noexcept {
  return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
}
inline F64x4 fmax4(F64x4 a, F64x4 b) noexcept {
  return {vmaxq_f64(a.lo, b.lo), vmaxq_f64(a.hi, b.hi)};
}
inline F64x4 fmin4(F64x4 a, F64x4 b) noexcept {
  return {vminq_f64(a.lo, b.lo), vminq_f64(a.hi, b.hi)};
}
inline F64x4 floor4(F64x4 a) noexcept {
  return {vrndmq_f64(a.lo), vrndmq_f64(a.hi)};
}

inline F64x4 cmp_lt(F64x4 a, F64x4 b) noexcept {
  return {vreinterpretq_f64_u64(vcltq_f64(a.lo, b.lo)),
          vreinterpretq_f64_u64(vcltq_f64(a.hi, b.hi))};
}
inline F64x4 cmp_le(F64x4 a, F64x4 b) noexcept {
  return {vreinterpretq_f64_u64(vcleq_f64(a.lo, b.lo)),
          vreinterpretq_f64_u64(vcleq_f64(a.hi, b.hi))};
}
inline F64x4 cmp_ge(F64x4 a, F64x4 b) noexcept {
  return {vreinterpretq_f64_u64(vcgeq_f64(a.lo, b.lo)),
          vreinterpretq_f64_u64(vcgeq_f64(a.hi, b.hi))};
}

inline F64x4 mask_and(F64x4 a, F64x4 b) noexcept {
  return {vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(a.lo),
                                          vreinterpretq_u64_f64(b.lo))),
          vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(a.hi),
                                          vreinterpretq_u64_f64(b.hi)))};
}
inline F64x4 mask_or(F64x4 a, F64x4 b) noexcept {
  return {vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(a.lo),
                                          vreinterpretq_u64_f64(b.lo))),
          vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(a.hi),
                                          vreinterpretq_u64_f64(b.hi)))};
}
inline F64x4 mask_andnot(F64x4 a, F64x4 b) noexcept {  // ~a & b
  return {vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(b.lo),
                                          vreinterpretq_u64_f64(a.lo))),
          vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(b.hi),
                                          vreinterpretq_u64_f64(a.hi)))};
}
inline F64x4 mask_xor(F64x4 a, F64x4 b) noexcept {
  return {vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(a.lo),
                                          vreinterpretq_u64_f64(b.lo))),
          vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(a.hi),
                                          vreinterpretq_u64_f64(b.hi)))};
}

inline F64x4 select(F64x4 mask, F64x4 a, F64x4 b) noexcept {
  return {vbslq_f64(vreinterpretq_u64_f64(mask.lo), a.lo, b.lo),
          vbslq_f64(vreinterpretq_u64_f64(mask.hi), a.hi, b.hi)};
}
inline int movemask(F64x4 mask) noexcept {
  const uint64x2_t lo = vreinterpretq_u64_f64(mask.lo);
  const uint64x2_t hi = vreinterpretq_u64_f64(mask.hi);
  return static_cast<int>((vgetq_lane_u64(lo, 0) >> 63) |
                          ((vgetq_lane_u64(lo, 1) >> 63) << 1) |
                          ((vgetq_lane_u64(hi, 0) >> 63) << 2) |
                          ((vgetq_lane_u64(hi, 1) >> 63) << 3));
}

inline F64x4 bitcast_f64(U64x4 a) noexcept {
  return {vreinterpretq_f64_u64(a.lo), vreinterpretq_f64_u64(a.hi)};
}
inline U64x4 bitcast_u64(F64x4 a) noexcept {
  return {vreinterpretq_u64_f64(a.lo), vreinterpretq_u64_f64(a.hi)};
}

inline U64x4 operator^(U64x4 a, U64x4 b) noexcept {
  return {veorq_u64(a.lo, b.lo), veorq_u64(a.hi, b.hi)};
}
inline U64x4 operator&(U64x4 a, U64x4 b) noexcept {
  return {vandq_u64(a.lo, b.lo), vandq_u64(a.hi, b.hi)};
}
inline U64x4 operator|(U64x4 a, U64x4 b) noexcept {
  return {vorrq_u64(a.lo, b.lo), vorrq_u64(a.hi, b.hi)};
}
inline U64x4 operator+(U64x4 a, U64x4 b) noexcept {
  return {vaddq_u64(a.lo, b.lo), vaddq_u64(a.hi, b.hi)};
}
template <int K>
inline U64x4 shl(U64x4 a) noexcept {
  return {vshlq_n_u64(a.lo, K), vshlq_n_u64(a.hi, K)};
}
template <int K>
inline U64x4 shr(U64x4 a) noexcept {
  return {vshrq_n_u64(a.lo, K), vshrq_n_u64(a.hi, K)};
}
inline U64x4 select(U64x4 mask, U64x4 a, U64x4 b) noexcept {
  return {vbslq_u64(mask.lo, a.lo, b.lo), vbslq_u64(mask.hi, a.hi, b.hi)};
}

#else  // scalar emulation — identical 4-lane semantics, no intrinsics

struct U64x4;

struct F64x4 {
  double v[4];

  static F64x4 zero() noexcept { return {{0.0, 0.0, 0.0, 0.0}}; }
  static F64x4 broadcast(double x) noexcept { return {{x, x, x, x}}; }
  static F64x4 set(double a, double b, double c, double d) noexcept {
    return {{a, b, c, d}};
  }
  static F64x4 load(const double* p) noexcept {
    return {{p[0], p[1], p[2], p[3]}};
  }
  void store(double* p) const noexcept {
    p[0] = v[0];
    p[1] = v[1];
    p[2] = v[2];
    p[3] = v[3];
  }
};

struct U64x4 {
  std::uint64_t v[4];

  static U64x4 broadcast(std::uint64_t x) noexcept { return {{x, x, x, x}}; }
  static U64x4 set(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                   std::uint64_t d) noexcept {
    return {{a, b, c, d}};
  }
  static U64x4 load(const std::uint64_t* p) noexcept {
    return {{p[0], p[1], p[2], p[3]}};
  }
  void store(std::uint64_t* p) const noexcept {
    p[0] = v[0];
    p[1] = v[1];
    p[2] = v[2];
    p[3] = v[3];
  }
};

namespace simd_detail {
constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};
inline double mask_bits(bool b) noexcept {
  return std::bit_cast<double>(b ? kAllOnes : std::uint64_t{0});
}
}  // namespace simd_detail

#define SAIM_SIMD_LANEWISE(name, expr)                        \
  inline F64x4 name(F64x4 a, F64x4 b) noexcept {              \
    F64x4 r;                                                  \
    for (int l = 0; l < 4; ++l) {                             \
      const double x = a.v[l], y = b.v[l];                    \
      (void)x;                                                \
      (void)y;                                                \
      r.v[l] = (expr);                                        \
    }                                                         \
    return r;                                                 \
  }

SAIM_SIMD_LANEWISE(operator+, x + y)
SAIM_SIMD_LANEWISE(operator-, x - y)
SAIM_SIMD_LANEWISE(operator*, x* y)
SAIM_SIMD_LANEWISE(operator/, x / y)
SAIM_SIMD_LANEWISE(fmax4, (x > y) ? x : y)
SAIM_SIMD_LANEWISE(fmin4, (x < y) ? x : y)
SAIM_SIMD_LANEWISE(cmp_lt, simd_detail::mask_bits(x < y))
SAIM_SIMD_LANEWISE(cmp_le, simd_detail::mask_bits(x <= y))
SAIM_SIMD_LANEWISE(cmp_ge, simd_detail::mask_bits(x >= y))
#undef SAIM_SIMD_LANEWISE

inline F64x4 floor4(F64x4 a) noexcept {
  return {{std::floor(a.v[0]), std::floor(a.v[1]), std::floor(a.v[2]),
           std::floor(a.v[3])}};
}

#define SAIM_SIMD_MASKWISE(name, expr)                        \
  inline F64x4 name(F64x4 a, F64x4 b) noexcept {              \
    F64x4 r;                                                  \
    for (int l = 0; l < 4; ++l) {                             \
      const std::uint64_t x = std::bit_cast<std::uint64_t>(a.v[l]); \
      const std::uint64_t y = std::bit_cast<std::uint64_t>(b.v[l]); \
      r.v[l] = std::bit_cast<double>(expr);                   \
    }                                                         \
    return r;                                                 \
  }

SAIM_SIMD_MASKWISE(mask_and, x& y)
SAIM_SIMD_MASKWISE(mask_or, x | y)
SAIM_SIMD_MASKWISE(mask_andnot, ~x& y)
SAIM_SIMD_MASKWISE(mask_xor, x ^ y)
#undef SAIM_SIMD_MASKWISE

inline F64x4 select(F64x4 mask, F64x4 a, F64x4 b) noexcept {
  F64x4 r;
  for (int l = 0; l < 4; ++l) {
    r.v[l] = (std::bit_cast<std::uint64_t>(mask.v[l]) >> 63) ? a.v[l] : b.v[l];
  }
  return r;
}
inline int movemask(F64x4 mask) noexcept {
  int m = 0;
  for (int l = 0; l < 4; ++l) {
    m |= static_cast<int>(std::bit_cast<std::uint64_t>(mask.v[l]) >> 63) << l;
  }
  return m;
}

inline F64x4 bitcast_f64(U64x4 a) noexcept {
  return {{std::bit_cast<double>(a.v[0]), std::bit_cast<double>(a.v[1]),
           std::bit_cast<double>(a.v[2]), std::bit_cast<double>(a.v[3])}};
}
inline U64x4 bitcast_u64(F64x4 a) noexcept {
  return {{std::bit_cast<std::uint64_t>(a.v[0]),
           std::bit_cast<std::uint64_t>(a.v[1]),
           std::bit_cast<std::uint64_t>(a.v[2]),
           std::bit_cast<std::uint64_t>(a.v[3])}};
}

inline U64x4 operator^(U64x4 a, U64x4 b) noexcept {
  return {{a.v[0] ^ b.v[0], a.v[1] ^ b.v[1], a.v[2] ^ b.v[2],
           a.v[3] ^ b.v[3]}};
}
inline U64x4 operator&(U64x4 a, U64x4 b) noexcept {
  return {{a.v[0] & b.v[0], a.v[1] & b.v[1], a.v[2] & b.v[2],
           a.v[3] & b.v[3]}};
}
inline U64x4 operator|(U64x4 a, U64x4 b) noexcept {
  return {{a.v[0] | b.v[0], a.v[1] | b.v[1], a.v[2] | b.v[2],
           a.v[3] | b.v[3]}};
}
inline U64x4 operator+(U64x4 a, U64x4 b) noexcept {
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
           a.v[3] + b.v[3]}};
}
template <int K>
inline U64x4 shl(U64x4 a) noexcept {
  return {{a.v[0] << K, a.v[1] << K, a.v[2] << K, a.v[3] << K}};
}
template <int K>
inline U64x4 shr(U64x4 a) noexcept {
  return {{a.v[0] >> K, a.v[1] >> K, a.v[2] >> K, a.v[3] >> K}};
}
inline U64x4 select(U64x4 mask, U64x4 a, U64x4 b) noexcept {
  U64x4 r;
  for (int l = 0; l < 4; ++l) {
    r.v[l] = (a.v[l] & mask.v[l]) | (b.v[l] & ~mask.v[l]);
  }
  return r;
}

#endif

// ------------------------------------------------------- shared helpers

template <int K>
inline U64x4 rotl4(U64x4 a) noexcept {
  return shl<K>(a) | shr<64 - K>(a);
}

/// Extracts the 4 lanes into an array (for deterministic horizontal
/// reductions: callers sum as (a0+a1)+(a2+a3) so every backend agrees).
inline void store4(F64x4 a, double out[4]) noexcept { a.store(out); }

/// Exact u64 -> f64 conversion for values < 2^53 (e.g. xoshiro >> 11).
/// AVX2 has no packed u64->f64 convert, so all backends use the same
/// magic-number construction — exact, hence identical to a scalar
/// static_cast<double> of the 53-bit value.
inline F64x4 u64_to_f64_exact53(U64x4 x) noexcept {
  const U64x4 magic = U64x4::broadcast(0x4330000000000000ULL);  // 2^52
  const F64x4 two52 = F64x4::broadcast(0x1.0p52);
  const F64x4 hi = bitcast_f64(shr<1>(x) | magic) - two52;  // x >> 1, exact
  const F64x4 lo =
      bitcast_f64((x & U64x4::broadcast(1)) | magic) - two52;  // x & 1
  // 2*hi is exact (power-of-two scale); the add is exact because the sum
  // is an integer < 2^53.
  return hi + hi + lo;
}

/// One xoshiro256++ step for 4 independent lanes held in SoA state
/// vectors. Matches util::Xoshiro256pp::operator() bit for bit per lane.
inline U64x4 xoshiro4_next(U64x4& s0, U64x4& s1, U64x4& s2,
                           U64x4& s3) noexcept {
  const U64x4 result = rotl4<23>(s0 + s3) + s0;
  const U64x4 t = shl<17>(s1);
  s2 = s2 ^ s0;
  s3 = s3 ^ s1;
  s1 = s1 ^ s2;
  s0 = s0 ^ s3;
  s2 = s2 ^ t;
  s3 = rotl4<45>(s3);
  return result;
}

/// Masked variant: lanes where `mask` (canonical) is clear keep their
/// state; set lanes advance exactly one step. Used by Metropolis dynamics,
/// whose scalar loop draws a uniform only when delta > 0.
inline U64x4 xoshiro4_next_masked(U64x4 mask, U64x4& s0, U64x4& s1, U64x4& s2,
                                  U64x4& s3) noexcept {
  U64x4 n0 = s0, n1 = s1, n2 = s2, n3 = s3;
  const U64x4 result = xoshiro4_next(n0, n1, n2, n3);
  s0 = select(mask, n0, s0);
  s1 = select(mask, n1, s1);
  s2 = select(mask, n2, s2);
  s3 = select(mask, n3, s3);
  return result;
}

}  // namespace saim::util
