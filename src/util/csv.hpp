// Minimal CSV writer for experiment traces (Fig. 3/5 time series) and table
// dumps. Quotes fields only when required, writes deterministic formatting
// so diffs between runs are meaningful.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace saim::util {

class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error if the
  /// file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// In-memory mode (for tests): rows are appended to an internal buffer.
  CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;
  ~CsvWriter() = default;

  void write_header(std::initializer_list<std::string_view> names);
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with up to `precision` significant digits.
  void write_row(const std::vector<double>& values, int precision = 10);

  /// Buffered content in in-memory mode; empty string in file mode.
  [[nodiscard]] const std::string& buffer() const noexcept { return buffer_; }

  static std::string escape(std::string_view field);

 private:
  void write_line(const std::string& line);

  std::ofstream file_;
  std::string buffer_;
  bool to_file_ = false;
};

}  // namespace saim::util
