// Descriptive statistics used by the benchmark harnesses: the paper reports
// best/average accuracies (Tables II-V) and quartile boxes (Fig. 4a), so we
// provide exact order statistics plus a streaming accumulator.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace saim::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable for the long accuracy streams produced by 2000+ runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number summary + mean, as drawn in the paper's Fig. 4a box plot.
struct QuartileSummary {
  std::size_t count = 0;
  double min = 0.0;
  double q1 = 0.0;      ///< 25th percentile
  double median = 0.0;  ///< 50th percentile
  double q3 = 0.0;      ///< 75th percentile
  double max = 0.0;
  double mean = 0.0;

  /// Interquartile range q3 - q1 (the paper quotes IQR < 0.8% for SAIM).
  [[nodiscard]] double iqr() const noexcept { return q3 - q1; }
};

/// Linear-interpolated percentile (R-7 / NumPy default). p in [0,100].
/// Returns 0 for empty input.
double percentile(std::span<const double> sorted, double p) noexcept;

/// Computes the five-number summary; copies and sorts internally.
QuartileSummary summarize(std::span<const double> values);

/// Mean of a range; 0 for empty input.
double mean_of(std::span<const double> values) noexcept;

/// Renders "min/q1/med/q3/max (mean)" with the given precision — the row
/// format used by the figure benches.
std::string format_summary(const QuartileSummary& s, int precision = 2);

}  // namespace saim::util
