#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace saim::util {

std::size_t hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = hardware_threads();
  if (threads > count) threads = count;

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        // First failure wins; stop claiming new items so the wasted work
        // is bounded by what was already in flight.
        cancelled.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();

  if (error) std::rethrow_exception(error);
}

}  // namespace saim::util
