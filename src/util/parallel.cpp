#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

namespace saim::util {

std::size_t hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(lock.native());
      if (tasks_.empty()) return;  // stopping_ with an empty queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = hardware_threads();
  if (threads > count) threads = count;

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr error;
  Mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        // First failure wins; stop claiming new items so the wasted work
        // is bounded by what was already in flight.
        cancelled.store(true, std::memory_order_relaxed);
        MutexLock lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  {
    ThreadPool pool(threads - 1);
    for (std::size_t t = 1; t < threads; ++t) pool.submit(worker);
    worker();
    pool.shutdown();  // join before `next`/`error` leave scope
  }

  if (error) std::rethrow_exception(error);
}

}  // namespace saim::util
