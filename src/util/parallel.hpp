// Thread-pool parallelism shared by replica batches and the solve service.
//
// ThreadPool is a persistent fixed-size worker pool with a FIFO task queue:
// SolveService keeps one alive for its whole lifetime so per-job latency
// never includes thread spawn cost. shutdown() (also run by the destructor)
// stops intake, drains the tasks already queued, and joins the workers.
//
// parallel_for(count, fn) keeps its PR-1 contract as a thin wrapper: it
// runs fn(0..count-1) across a transient ThreadPool, pulling indices from
// an atomic counter. Work items must be independent; anything whose output
// depends only on its index (e.g. a replica seeded with derive_seed(base,
// index)) produces bit-identical results regardless of thread count — the
// property run_batch tests rely on. The first exception thrown by any item
// cancels the items not yet started and is rethrown on the calling thread
// after the join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace saim::util {

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] std::size_t hardware_threads() noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task for the next free worker. Throws std::runtime_error
  /// after shutdown() has begun.
  void submit(std::function<void()> task) SAIM_EXCLUDES(mutex_);

  /// Stops accepting tasks, runs everything already queued, joins the
  /// workers. Idempotent; called by the destructor.
  void shutdown() SAIM_EXCLUDES(mutex_);

 private:
  void worker_loop() SAIM_EXCLUDES(mutex_);

  /// Touched only by the constructor and shutdown() — the joining thread;
  /// workers never see their own handles, so no guard is needed.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_ SAIM_GUARDED_BY(mutex_);
  bool stopping_ SAIM_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for i in [0, count). `threads` == 0 picks
/// hardware_threads(); the effective pool is min(threads, count), and a
/// pool of one runs inline with no thread spawned.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace saim::util
