// Minimal deterministic fork-join parallelism for replica batches.
//
// parallel_for(count, fn) runs fn(0..count-1) across a transient pool of
// std::threads pulling indices from an atomic counter. Work items must be
// independent; anything whose output depends only on its index (e.g. a
// replica seeded with derive_seed(base, index)) produces bit-identical
// results regardless of thread count — the property run_batch tests rely
// on. The first exception thrown by any item cancels the items not yet
// started and is rethrown on the calling thread after the join.
#pragma once

#include <cstddef>
#include <functional>

namespace saim::util {

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] std::size_t hardware_threads() noexcept;

/// Runs fn(i) for i in [0, count). `threads` == 0 picks
/// hardware_threads(); the effective pool is min(threads, count), and a
/// pool of one runs inline with no thread spawned.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace saim::util
