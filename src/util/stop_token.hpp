// Cooperative cancellation with optional deadlines.
//
// A StopSource owns the shared stop state; StopTokens are cheap copyable
// views of it. Long-running work (SaimSolver::solve, backend run_batch,
// the pbit anneal loop) polls token.stop_requested() at coarse-grained
// points — once per outer iteration or per sweep chunk — so the Monte-Carlo
// hot loop never pays for cancellation support. A stop fires either because
// request_stop() was called (explicit cancel) or because the wall-clock
// deadline passed; cancelled() distinguishes the two so callers can report
// Status::kCancelled vs Status::kDeadline.
//
// Not std::stop_token: we need the deadline semantics fused in, and a
// default-constructed "never stops" token that costs one null check.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace saim::util {

namespace detail {
struct StopState {
  std::atomic<bool> stop_requested{false};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};
}  // namespace detail

class StopToken {
 public:
  /// A token that can never stop; stop_requested() is one null check.
  StopToken() = default;

  /// True when this token is connected to a StopSource at all.
  [[nodiscard]] bool possible() const noexcept { return state_ != nullptr; }

  /// True once request_stop() was called on the source.
  [[nodiscard]] bool cancelled() const noexcept {
    return state_ && state_->stop_requested.load(std::memory_order_relaxed);
  }

  /// True once the source's deadline (if any) has passed.
  [[nodiscard]] bool deadline_expired() const noexcept {
    return state_ && state_->has_deadline &&
           std::chrono::steady_clock::now() >= state_->deadline;
  }

  /// The polling entry point: explicit cancel OR expired deadline.
  [[nodiscard]] bool stop_requested() const noexcept {
    return cancelled() || deadline_expired();
  }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<const detail::StopState> state) noexcept
      : state_(std::move(state)) {}

  std::shared_ptr<const detail::StopState> state_;
};

class StopSource {
 public:
  StopSource() : state_(std::make_shared<detail::StopState>()) {}

  /// A source whose tokens additionally stop once `deadline` passes.
  static StopSource with_deadline(
      std::chrono::steady_clock::time_point deadline) {
    StopSource s;
    s.state_->has_deadline = true;
    s.state_->deadline = deadline;
    return s;
  }

  /// Convenience: deadline `timeout` from now.
  static StopSource after(std::chrono::steady_clock::duration timeout) {
    return with_deadline(std::chrono::steady_clock::now() + timeout);
  }

  void request_stop() noexcept {
    state_->stop_requested.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return state_->stop_requested.load(std::memory_order_relaxed);
  }

  [[nodiscard]] StopToken token() const noexcept { return StopToken(state_); }

 private:
  std::shared_ptr<detail::StopState> state_;
};

}  // namespace saim::util
