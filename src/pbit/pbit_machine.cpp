#include "pbit/pbit_machine.hpp"

#include <cmath>
#include <numeric>
#include <utility>

#include "util/accept_bounds.hpp"

namespace saim::pbit {

PBitMachine::PBitMachine(const ising::IsingModel& model)
    : model_(&model), adjacency_(model) {}

ising::Spins PBitMachine::random_state(util::Xoshiro256pp& rng) const {
  ising::Spins m(n());
  for (auto& s : m) {
    s = rng.bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1};
  }
  return m;
}

void PBitMachine::sweep(ising::Spins& m, ising::LocalFieldState& lfs,
                        double beta, SweepOrder order,
                        util::Xoshiro256pp& rng,
                        std::vector<std::uint32_t>& scratch) const {
  const std::size_t size = n();

  auto update_one = [&](std::size_t i) {
    const double in = lfs.field(i);
    // m_i = sign(tanh(beta*I_i) + U(-1,1)): +1 with prob (1+tanh)/2. The
    // tiered sign test is bit-identical to calling std::tanh every visit
    // but saturation/bounds decide ~all draws without libm (the
    // bit-sliced engine's test, scalar lane); one uniform_sym draw per
    // visit, as before.
    const std::int8_t next =
        util::tanh_sign_nonneg(beta * in, rng.uniform_sym())
            ? std::int8_t{1}
            : std::int8_t{-1};
    if (next != m[i]) {
      lfs.flip(m, i);
    }
  };

  switch (order) {
    case SweepOrder::kSequential:
      for (std::size_t i = 0; i < size; ++i) update_one(i);
      break;
    case SweepOrder::kRandomPermutation: {
      scratch.resize(size);
      std::iota(scratch.begin(), scratch.end(), 0u);
      // Fisher-Yates with the solver's own RNG for determinism.
      for (std::size_t i = size; i > 1; --i) {
        const std::size_t j = rng.below(i);
        std::swap(scratch[i - 1], scratch[j]);
      }
      for (const auto i : scratch) update_one(i);
      break;
    }
    case SweepOrder::kRandomUniform:
      for (std::size_t k = 0; k < size; ++k) update_one(rng.below(size));
      break;
  }
}

AnnealResult PBitMachine::anneal(const Schedule& schedule,
                                 const AnnealOptions& options,
                                 util::Xoshiro256pp& rng) const {
  return anneal_from(random_state(rng), schedule, options, rng);
}

AnnealResult PBitMachine::anneal_from(ising::Spins start,
                                      const Schedule& schedule,
                                      const AnnealOptions& options,
                                      util::Xoshiro256pp& rng) const {
  AnnealResult result;
  result.last = std::move(start);
  result.sweeps = options.sweeps;

  ising::LocalFieldState lfs(*model_, adjacency_);
  lfs.reset(result.last);
  if (options.track_best) {
    result.best = result.last;
    result.best_energy = lfs.energy();
  }

  const std::size_t stop_interval =
      options.stop_interval == 0 ? 1 : options.stop_interval;
  std::vector<std::uint32_t> scratch;
  for (std::size_t t = 0; t < options.sweeps; ++t) {
    if (options.stop && t != 0 && t % stop_interval == 0 &&
        options.stop->stop_requested()) {
      result.sweeps = t;  // partial run: sweeps actually performed
      break;
    }
    const double beta = schedule.beta(t, options.sweeps);
    sweep(result.last, lfs, beta, options.order, rng, scratch);
    if (options.track_best && lfs.energy() < result.best_energy) {
      result.best_energy = lfs.energy();
      result.best = result.last;
    }
  }
  result.last_energy = lfs.energy();
  if (!options.track_best) {
    result.best = result.last;
    result.best_energy = result.last_energy;
  }
  return result;
}

void PBitMachine::sample(
    double beta, std::size_t burn_in, std::size_t samples,
    util::Xoshiro256pp& rng,
    const std::function<void(const ising::Spins&)>& observer) const {
  ising::Spins m = random_state(rng);
  ising::LocalFieldState lfs(*model_, adjacency_);
  lfs.reset(m);
  std::vector<std::uint32_t> scratch;
  for (std::size_t t = 0; t < burn_in; ++t) {
    sweep(m, lfs, beta, SweepOrder::kSequential, rng, scratch);
  }
  for (std::size_t t = 0; t < samples; ++t) {
    sweep(m, lfs, beta, SweepOrder::kSequential, rng, scratch);
    observer(m);
  }
}

}  // namespace saim::pbit
