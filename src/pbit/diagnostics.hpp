// Sampler diagnostics: quantities the Ising-machine literature uses to
// judge whether a Gibbs/Metropolis chain is actually equilibrating at the
// temperatures the schedule visits — average magnetization, energy traces,
// and the integrated autocorrelation time of the energy, which bounds the
// effective sample size of a run. Used by tests (the Boltzmann chi-square
// suites need equilibrated chains) and by users tuning beta_max/MCS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ising/ising_model.hpp"
#include "pbit/pbit_machine.hpp"
#include "util/rng.hpp"

namespace saim::pbit {

/// Mean spin value over a configuration, in [-1, 1].
double magnetization(std::span<const std::int8_t> m) noexcept;

/// Normalized autocorrelation rho(lag) of a scalar series (rho(0) = 1).
/// Returns 0 for lags >= series length or when the series has no variance.
double autocorrelation(std::span<const double> series, std::size_t lag);

/// Integrated autocorrelation time tau = 1 + 2 sum_{k>=1} rho(k), with the
/// standard self-consistent window cutoff (sum until k > c*tau, c = 5).
/// tau ~ 1 means independent samples; large tau means slow mixing.
double integrated_autocorrelation_time(std::span<const double> series);

struct EquilibrationReport {
  std::vector<double> energy_trace;  ///< energy after each recorded sweep
  double mean_energy = 0.0;
  double tau = 0.0;  ///< integrated autocorrelation time of the energy
  double mean_abs_magnetization = 0.0;
};

/// Runs the machine at fixed beta and records an energy trace after
/// burn-in; reports mixing statistics.
EquilibrationReport diagnose_equilibration(const PBitMachine& machine,
                                           const ising::IsingModel& model,
                                           double beta, std::size_t burn_in,
                                           std::size_t samples,
                                           util::Xoshiro256pp& rng);

}  // namespace saim::pbit
