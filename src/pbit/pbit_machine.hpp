// Software emulation of a probabilistic-bit (p-bit) Ising machine,
// following Camsari et al. and the paper's section III-B.
//
// Each p-bit i computes its input (eq. 9)
//     I_i = sum_j J_ij m_j + h_i
// and updates its state (eq. 10)
//     m_i = sign( tanh(beta * I_i) + rand(-1, 1) )
// Sequential updates of (9)-(10) implement Gibbs sampling of the Boltzmann
// distribution P{m} ∝ exp(-beta * H{m}) (eq. 11) — verified by the
// chi-square tests in tests/pbit_boltzmann_test.cpp.
//
// The machine keeps a reference to its IsingModel: SAIM's lambda updates
// rewrite only the model's fields h between runs, which the machine reads
// live, while the coupling CSR (built once) stays valid.
#pragma once

#include <cstddef>
#include <functional>

#include "ising/adjacency.hpp"
#include "ising/ising_model.hpp"
#include "ising/local_field.hpp"
#include "pbit/schedule.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"

namespace saim::pbit {

/// Order in which spins are updated within one Monte-Carlo sweep (MCS).
enum class SweepOrder {
  kSequential,  ///< 0,1,...,n-1 — the paper's choice ("sequentially updating")
  kRandomPermutation,  ///< fresh random permutation each sweep
  kRandomUniform,      ///< n independent uniform picks per sweep (may repeat)
};

struct AnnealOptions {
  std::size_t sweeps = 1000;  ///< MCS per run (paper Table I: 1000)
  SweepOrder order = SweepOrder::kSequential;
  bool track_best = false;  ///< also record the lowest-energy state visited

  /// Cooperative stop, polled every `stop_interval` sweeps (never inside a
  /// sweep). On stop the run returns its current state as a valid partial
  /// sample with `sweeps` reflecting the MCS actually performed. Null (the
  /// default) keeps the anneal loop check-free.
  const util::StopToken* stop = nullptr;
  std::size_t stop_interval = 64;
};

struct AnnealResult {
  ising::Spins last;         ///< state after the final sweep (paper reads this)
  double last_energy = 0.0;  ///< H(last)
  ising::Spins best;         ///< lowest-energy state seen (if track_best)
  double best_energy = 0.0;  ///< H(best)
  std::size_t sweeps = 0;    ///< MCS actually performed
};

class PBitMachine {
 public:
  /// The model must outlive the machine. Builds the coupling CSR once.
  explicit PBitMachine(const ising::IsingModel& model);

  [[nodiscard]] std::size_t n() const noexcept { return model_->n(); }

  /// Runs one annealed Gibbs-sampling run from a fresh random state.
  AnnealResult anneal(const Schedule& schedule, const AnnealOptions& options,
                      util::Xoshiro256pp& rng) const;

  /// As above but continues from `start` (used by warm-restart ablation).
  AnnealResult anneal_from(ising::Spins start, const Schedule& schedule,
                           const AnnealOptions& options,
                           util::Xoshiro256pp& rng) const;

  /// Equilibrium sampling at fixed beta: performs `burn_in` sweeps, then
  /// calls `observer(state)` after each of `samples` further sweeps.
  /// Used by distribution tests and by diagnostics.
  void sample(double beta, std::size_t burn_in, std::size_t samples,
              util::Xoshiro256pp& rng,
              const std::function<void(const ising::Spins&)>& observer) const;

  /// Uniform random ±1 configuration.
  ising::Spins random_state(util::Xoshiro256pp& rng) const;

  /// p-bit input I_i for the current state (eq. 9), via the CSR.
  [[nodiscard]] double input(const ising::Spins& m, std::size_t i) const {
    return adjacency_.coupling_input(m, i) + model_->field(i);
  }

  /// Bound model / CSR — shared with the bit-sliced batch path so it runs
  /// over the exact same couplings and live fields as the scalar sweeps.
  [[nodiscard]] const ising::IsingModel& model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const ising::Adjacency& adjacency() const noexcept {
    return adjacency_;
  }

 private:
  /// One Monte-Carlo sweep at inverse temperature beta. Reads each p-bit's
  /// input from the incremental engine (O(1) per visit) and pushes accepted
  /// flips back through it; `lfs` tracks the running energy.
  void sweep(ising::Spins& m, ising::LocalFieldState& lfs, double beta,
             SweepOrder order, util::Xoshiro256pp& rng,
             std::vector<std::uint32_t>& scratch) const;

  const ising::IsingModel* model_;
  ising::Adjacency adjacency_;
};

}  // namespace saim::pbit
