#include "pbit/diagnostics.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace saim::pbit {

double magnetization(std::span<const std::int8_t> m) noexcept {
  if (m.empty()) return 0.0;
  double acc = 0.0;
  for (const auto s : m) acc += static_cast<double>(s);
  return acc / static_cast<double>(m.size());
}

double autocorrelation(std::span<const double> series, std::size_t lag) {
  const std::size_t n = series.size();
  if (lag >= n) return 0.0;
  double mean = 0.0;
  for (const double v : series) mean += v;
  mean /= static_cast<double>(n);

  double var = 0.0;
  for (const double v : series) var += (v - mean) * (v - mean);
  if (var <= 0.0) return 0.0;

  double acc = 0.0;
  for (std::size_t t = 0; t + lag < n; ++t) {
    acc += (series[t] - mean) * (series[t + lag] - mean);
  }
  return acc / var;
}

double integrated_autocorrelation_time(std::span<const double> series) {
  if (series.size() < 2) return 1.0;
  double tau = 1.0;
  const std::size_t max_lag = series.size() / 2;
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    const double rho = autocorrelation(series, lag);
    tau += 2.0 * rho;
    // Self-consistent window (Sokal): stop once lag exceeds 5*tau; also
    // stop at the first clearly-negative correlation (noise floor).
    if (static_cast<double>(lag) > 5.0 * tau || rho < -0.05) break;
  }
  return std::max(tau, 1.0);
}

EquilibrationReport diagnose_equilibration(const PBitMachine& machine,
                                           const ising::IsingModel& model,
                                           double beta, std::size_t burn_in,
                                           std::size_t samples,
                                           util::Xoshiro256pp& rng) {
  EquilibrationReport report;
  report.energy_trace.reserve(samples);
  util::RunningStats energy_stats;
  util::RunningStats mag_stats;
  machine.sample(beta, burn_in, samples, rng,
                 [&](const ising::Spins& m) {
                   const double e = model.energy(m);
                   report.energy_trace.push_back(e);
                   energy_stats.add(e);
                   mag_stats.add(std::abs(magnetization(m)));
                 });
  report.mean_energy = energy_stats.mean();
  report.mean_abs_magnetization = mag_stats.mean();
  report.tau = integrated_autocorrelation_time(report.energy_trace);
  return report;
}

}  // namespace saim::pbit
