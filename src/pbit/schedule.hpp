// Inverse-temperature (beta) schedules for annealed Gibbs sampling.
//
// The paper anneals the p-bits "with a linear beta-schedule swept from 0 to
// beta_max" (section III-B); geometric and constant schedules are provided
// for the ablation benches (bench/ablation_saim) and for the Boltzmann
// distribution tests, which need a fixed temperature.
#pragma once

#include <cstddef>

namespace saim::pbit {

class Schedule {
 public:
  enum class Kind { kLinear, kGeometric, kConstant };

  /// Linear ramp beta(t) = beta_start + (beta_end-beta_start) * t/(T-1).
  static Schedule linear(double beta_end, double beta_start = 0.0);

  /// Geometric ramp beta(t) = beta_start * (beta_end/beta_start)^(t/(T-1)).
  /// Requires 0 < beta_start <= beta_end.
  static Schedule geometric(double beta_start, double beta_end);

  /// Fixed temperature (equilibrium sampling).
  static Schedule constant(double beta);

  /// Inverse temperature at sweep t of a run with `total` sweeps.
  /// t is clamped to [0, total-1]; total == 1 yields beta_end.
  [[nodiscard]] double beta(std::size_t t, std::size_t total) const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] double beta_start() const noexcept { return beta_start_; }
  [[nodiscard]] double beta_end() const noexcept { return beta_end_; }

 private:
  Schedule(Kind kind, double beta_start, double beta_end);

  Kind kind_;
  double beta_start_;
  double beta_end_;
};

}  // namespace saim::pbit
