#include "pbit/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace saim::pbit {

Schedule::Schedule(Kind kind, double beta_start, double beta_end)
    : kind_(kind), beta_start_(beta_start), beta_end_(beta_end) {}

Schedule Schedule::linear(double beta_end, double beta_start) {
  if (beta_end < beta_start) {
    throw std::invalid_argument("Schedule::linear: beta_end < beta_start");
  }
  return {Kind::kLinear, beta_start, beta_end};
}

Schedule Schedule::geometric(double beta_start, double beta_end) {
  if (beta_start <= 0.0 || beta_end < beta_start) {
    throw std::invalid_argument(
        "Schedule::geometric: requires 0 < beta_start <= beta_end");
  }
  return {Kind::kGeometric, beta_start, beta_end};
}

Schedule Schedule::constant(double beta) {
  if (beta < 0.0) {
    throw std::invalid_argument("Schedule::constant: beta must be >= 0");
  }
  return {Kind::kConstant, beta, beta};
}

double Schedule::beta(std::size_t t, std::size_t total) const {
  if (kind_ == Kind::kConstant || total <= 1) return beta_end_;
  const double frac = static_cast<double>(std::min(t, total - 1)) /
                      static_cast<double>(total - 1);
  switch (kind_) {
    case Kind::kLinear:
      return beta_start_ + (beta_end_ - beta_start_) * frac;
    case Kind::kGeometric:
      return beta_start_ * std::pow(beta_end_ / beta_start_, frac);
    case Kind::kConstant:
      break;
  }
  return beta_end_;
}

}  // namespace saim::pbit
