// Umbrella header: pulls in the whole public API. Fine-grained includes
// are preferred in translation units that care about build time; this is
// for quick starts and REPL-style experimentation.
#pragma once

#include "anneal/backend.hpp"                 // IWYU pragma: export
#include "anneal/exact_backend.hpp"           // IWYU pragma: export
#include "anneal/parallel_tempering.hpp"      // IWYU pragma: export
#include "anneal/simulated_annealing.hpp"     // IWYU pragma: export
#include "anneal/sqa.hpp"                     // IWYU pragma: export
#include "anneal/tabu.hpp"                    // IWYU pragma: export
#include "core/multi_start.hpp"               // IWYU pragma: export
#include "core/params.hpp"                    // IWYU pragma: export
#include "core/penalty_method.hpp"            // IWYU pragma: export
#include "core/report.hpp"                    // IWYU pragma: export
#include "core/result.hpp"                    // IWYU pragma: export
#include "core/saim_solver.hpp"               // IWYU pragma: export
#include "core/tts.hpp"                       // IWYU pragma: export
#include "exact/exhaustive.hpp"               // IWYU pragma: export
#include "exact/knapsack_dp.hpp"              // IWYU pragma: export
#include "exact/mkp_branch_bound.hpp"         // IWYU pragma: export
#include "ga/chu_beasley.hpp"                 // IWYU pragma: export
#include "heuristics/greedy.hpp"              // IWYU pragma: export
#include "ising/adjacency.hpp"                // IWYU pragma: export
#include "ising/convert.hpp"                  // IWYU pragma: export
#include "ising/graph.hpp"                    // IWYU pragma: export
#include "ising/ising_model.hpp"              // IWYU pragma: export
#include "ising/local_field.hpp"              // IWYU pragma: export
#include "ising/qubo_model.hpp"               // IWYU pragma: export
#include "lagrange/lagrangian_model.hpp"      // IWYU pragma: export
#include "pbit/diagnostics.hpp"               // IWYU pragma: export
#include "pbit/pbit_machine.hpp"              // IWYU pragma: export
#include "pbit/schedule.hpp"                  // IWYU pragma: export
#include "problems/constrained_problem.hpp"   // IWYU pragma: export
#include "problems/maxcut.hpp"                // IWYU pragma: export
#include "problems/mkp.hpp"                   // IWYU pragma: export
#include "problems/normalize.hpp"             // IWYU pragma: export
#include "problems/portfolio.hpp"             // IWYU pragma: export
#include "problems/qkp.hpp"                   // IWYU pragma: export
#include "problems/slack.hpp"                 // IWYU pragma: export
#include "util/cli.hpp"                       // IWYU pragma: export
#include "util/csv.hpp"                       // IWYU pragma: export
#include "util/logging.hpp"                   // IWYU pragma: export
#include "util/parallel.hpp"                  // IWYU pragma: export
#include "util/rng.hpp"                       // IWYU pragma: export
#include "util/stats.hpp"                     // IWYU pragma: export
#include "util/timer.hpp"                     // IWYU pragma: export
