#include "exact/mkp_branch_bound.hpp"

#include <algorithm>
#include <numeric>

#include "heuristics/greedy.hpp"
#include "util/timer.hpp"

namespace saim::exact {

namespace {

struct SearchContext {
  const problems::MkpInstance* instance = nullptr;
  std::vector<std::size_t> order;        ///< items by decreasing density
  std::vector<double> surrogate_weight;  ///< u^T a_j in `order` position
  std::vector<std::int64_t> value;       ///< v_j in `order` position
  double surrogate_capacity = 0.0;

  BnbOptions options;
  util::WallTimer timer;
  std::uint64_t nodes = 0;
  bool budget_hit = false;

  std::int64_t best_profit = 0;
  std::vector<std::uint8_t> best_x;  ///< in original item indexing
  std::vector<std::uint8_t> current;  ///< in `order` position
};

/// Dantzig bound on the surrogate knapsack for items order[pos..]: greedy
/// fractional fill by density. Items are pre-sorted by density, so a single
/// forward scan suffices.
double surrogate_bound(const SearchContext& ctx, std::size_t pos,
                       double used_surrogate) {
  double bound = 0.0;
  double remaining = ctx.surrogate_capacity - used_surrogate;
  for (std::size_t k = pos; k < ctx.order.size() && remaining > 0.0; ++k) {
    const double w = ctx.surrogate_weight[k];
    const auto v = static_cast<double>(ctx.value[k]);
    if (w <= remaining) {
      bound += v;
      remaining -= w;
    } else {
      bound += v * remaining / w;
      break;
    }
  }
  return bound;
}

void dfs(SearchContext& ctx, std::size_t pos, std::int64_t profit,
         double used_surrogate, std::vector<std::int64_t>& residual) {
  ++ctx.nodes;
  if ((ctx.nodes & 0xFFFF) == 0 &&
      (ctx.nodes > ctx.options.max_nodes ||
       ctx.timer.seconds() > ctx.options.time_limit_seconds)) {
    ctx.budget_hit = true;
  }
  if (ctx.budget_hit) return;

  if (profit > ctx.best_profit) {
    ctx.best_profit = profit;
    ctx.best_x.assign(ctx.instance->n(), 0);
    for (std::size_t k = 0; k < pos; ++k) {
      if (ctx.current[k]) ctx.best_x[ctx.order[k]] = 1;
    }
  }
  if (pos >= ctx.order.size()) return;

  const double bound = surrogate_bound(ctx, pos, used_surrogate);
  if (static_cast<double>(profit) + bound <=
      static_cast<double>(ctx.best_profit)) {
    return;  // cannot beat the incumbent even in the relaxation
  }

  const std::size_t item = ctx.order[pos];
  const std::size_t m = ctx.instance->m();

  // Branch 1: take the item if it fits every knapsack.
  bool fits = true;
  for (std::size_t i = 0; i < m; ++i) {
    if (ctx.instance->weight(i, item) > residual[i]) {
      fits = false;
      break;
    }
  }
  if (fits) {
    for (std::size_t i = 0; i < m; ++i) {
      residual[i] -= ctx.instance->weight(i, item);
    }
    ctx.current[pos] = 1;
    dfs(ctx, pos + 1, profit + ctx.instance->value(item),
        used_surrogate + ctx.surrogate_weight[pos], residual);
    ctx.current[pos] = 0;
    for (std::size_t i = 0; i < m; ++i) {
      residual[i] += ctx.instance->weight(i, item);
    }
  }

  // Branch 2: skip the item.
  dfs(ctx, pos + 1, profit, used_surrogate, residual);
}

}  // namespace

BnbResult solve_mkp_bnb(const problems::MkpInstance& instance,
                        const BnbOptions& options) {
  const std::size_t n = instance.n();
  const std::size_t m = instance.m();

  SearchContext ctx;
  ctx.instance = &instance;
  ctx.options = options;

  // Surrogate multipliers u_i = 1/B_i (guard B_i = 0).
  std::vector<double> u(m);
  for (std::size_t i = 0; i < m; ++i) {
    u[i] = instance.capacity(i) > 0
               ? 1.0 / static_cast<double>(instance.capacity(i))
               : 1.0;
    ctx.surrogate_capacity += u[i] * static_cast<double>(instance.capacity(i));
  }

  std::vector<double> density(n);
  std::vector<double> raw_surrogate(n);
  for (std::size_t j = 0; j < n; ++j) {
    double w = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      w += u[i] * static_cast<double>(instance.weight(i, j));
    }
    raw_surrogate[j] = w;
    density[j] = w > 0.0 ? static_cast<double>(instance.value(j)) / w
                         : static_cast<double>(instance.value(j));
  }

  ctx.order.resize(n);
  std::iota(ctx.order.begin(), ctx.order.end(), 0u);
  std::sort(ctx.order.begin(), ctx.order.end(),
            [&](std::size_t a, std::size_t b) {
              if (density[a] != density[b]) return density[a] > density[b];
              return a < b;
            });
  ctx.surrogate_weight.resize(n);
  ctx.value.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    ctx.surrogate_weight[k] = raw_surrogate[ctx.order[k]];
    ctx.value[k] = instance.value(ctx.order[k]);
  }
  ctx.current.assign(n, 0);

  // Warm start with the greedy solution so early pruning has teeth.
  const auto greedy = heuristics::greedy_mkp(instance);
  ctx.best_profit = instance.profit(greedy);
  ctx.best_x = greedy;

  std::vector<std::int64_t> residual(instance.capacities().begin(),
                                     instance.capacities().end());
  dfs(ctx, 0, 0, 0.0, residual);

  BnbResult result;
  result.best_x = std::move(ctx.best_x);
  result.best_profit = ctx.best_profit;
  result.proven_optimal = !ctx.budget_hit;
  result.nodes = ctx.nodes;
  result.seconds = ctx.timer.seconds();
  return result;
}

}  // namespace saim::exact
