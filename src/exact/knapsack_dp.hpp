// Exact dynamic program for the single-constraint 0/1 knapsack:
//   max h^T x  s.t.  a^T x <= b,  x binary
// O(n*b) time, O(n*b) bits of memory for selection recovery. Used as a
// reference oracle in tests (it must agree with exhaustive enumeration and
// with the MKP branch & bound on M=1 instances) and for the greedy bound
// sanity checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace saim::exact {

struct KnapsackDpResult {
  std::int64_t best_profit = 0;
  std::vector<std::uint8_t> selection;  ///< length n, the optimal x
};

/// values/weights must have equal length; weights and capacity nonnegative.
/// Items heavier than the capacity are simply never selected.
KnapsackDpResult solve_knapsack_dp(std::span<const std::int64_t> values,
                                   std::span<const std::int64_t> weights,
                                   std::int64_t capacity);

}  // namespace saim::exact
