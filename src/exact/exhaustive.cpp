#include "exact/exhaustive.hpp"

#include <stdexcept>

namespace saim::exact {

ExhaustiveResult exhaustive_minimize(std::size_t n, const Oracle& oracle) {
  if (n > 30) {
    throw std::invalid_argument(
        "exhaustive_minimize: n too large for enumeration");
  }
  ExhaustiveResult result;
  std::vector<std::uint8_t> x(n, 0);
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t code = 0; code < limit; ++code) {
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<std::uint8_t>((code >> i) & 1ULL);
    }
    const Verdict v = oracle(x);
    if (!v.feasible) continue;
    ++result.feasible_count;
    if (!result.found || v.cost < result.best_cost) {
      result.found = true;
      result.best_cost = v.cost;
      result.best_x = x;
    }
  }
  return result;
}

}  // namespace saim::exact
