// Branch & bound for the multidimensional knapsack — the stand-in for the
// MATLAB intlinprog reference the paper uses to obtain MKP optima and the
// "B&B time" column of Table V.
//
// Depth-first search over items ordered by pseudo-utility density
// v_j / sum_i (a_ij / B_i); at each node the surrogate-relaxation Dantzig
// bound (fractional greedy fill of the single aggregated constraint
// sum_i u_i a_i . x <= sum_i u_i B_i with u_i = 1/B_i) prunes subtrees.
// The bound dominates the incumbent check because the surrogate feasible
// region contains the true one, so pruning never cuts an optimal solution.
// Node/time budgets make the solver usable on the hard correlated
// Chu–Beasley instances: when a budget trips, `proven_optimal` is false and
// the incumbent is still returned (DESIGN.md documents how Table V labels
// such rows).
#pragma once

#include <cstdint>
#include <vector>

#include "problems/mkp.hpp"

namespace saim::exact {

struct BnbOptions {
  std::uint64_t max_nodes = 200'000'000;
  double time_limit_seconds = 120.0;
};

struct BnbResult {
  std::vector<std::uint8_t> best_x;  ///< incumbent selection (length n)
  std::int64_t best_profit = 0;
  bool proven_optimal = false;
  std::uint64_t nodes = 0;
  double seconds = 0.0;
};

BnbResult solve_mkp_bnb(const problems::MkpInstance& instance,
                        const BnbOptions& options = {});

}  // namespace saim::exact
