#include "exact/knapsack_dp.hpp"

#include <algorithm>
#include <stdexcept>

namespace saim::exact {

KnapsackDpResult solve_knapsack_dp(std::span<const std::int64_t> values,
                                   std::span<const std::int64_t> weights,
                                   std::int64_t capacity) {
  const std::size_t n = values.size();
  if (weights.size() != n) {
    throw std::invalid_argument("solve_knapsack_dp: size mismatch");
  }
  if (capacity < 0) {
    throw std::invalid_argument("solve_knapsack_dp: negative capacity");
  }
  for (const auto w : weights) {
    if (w < 0) throw std::invalid_argument("solve_knapsack_dp: negative weight");
  }

  const auto cap = static_cast<std::size_t>(capacity);
  // dp[c] = best profit with capacity c over the items processed so far;
  // taken[i*(cap+1)+c] records whether item i was taken at capacity c.
  std::vector<std::int64_t> dp(cap + 1, 0);
  std::vector<std::uint8_t> taken(n * (cap + 1), 0);

  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<std::size_t>(weights[i]);
    if (w > cap) continue;
    std::uint8_t* taken_row = taken.data() + i * (cap + 1);
    for (std::size_t c = cap; c >= w; --c) {
      const std::int64_t with_item = dp[c - w] + values[i];
      if (with_item > dp[c]) {
        dp[c] = with_item;
        taken_row[c] = 1;
      }
      if (c == w) break;  // avoid size_t underflow
    }
  }

  KnapsackDpResult result;
  result.best_profit = dp[cap];
  result.selection.assign(n, 0);
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (taken[i * (cap + 1) + c]) {
      result.selection[i] = 1;
      c -= static_cast<std::size_t>(weights[i]);
    }
  }
  return result;
}

}  // namespace saim::exact
