// Exhaustive minimization over {0,1}^n — the ground-truth oracle for every
// other solver in tests and for SAIM's "reaches OPT on small instances"
// integration checks. O(2^n * cost(oracle)); intended for n <= ~24.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace saim::exact {

struct Verdict {
  bool feasible = false;
  double cost = 0.0;
};

using Oracle = std::function<Verdict(std::span<const std::uint8_t>)>;

struct ExhaustiveResult {
  bool found = false;  ///< at least one feasible configuration exists
  std::vector<std::uint8_t> best_x;
  double best_cost = 0.0;
  std::uint64_t feasible_count = 0;  ///< size of the feasible set
};

/// Enumerates all 2^n configurations (n <= 30 enforced) and returns the
/// feasible minimizer. Ties resolve to the lexicographically-first bitset.
ExhaustiveResult exhaustive_minimize(std::size_t n, const Oracle& oracle);

}  // namespace saim::exact
