// Named construction of inner-solver backends for the service layer.
//
// A SolveRequest travels as data (over the job queue, or parsed from a
// JSONL line by tools/saim_serve), so the backend it wants must be named,
// not held as a live object: each worker builds a fresh backend per job
// from this spec. That also keeps jobs isolated — backends are stateful
// (bound model, warm-restart state) and must never be shared between
// concurrent solves.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "anneal/backend.hpp"

namespace saim::service {

struct BackendSpec {
  /// One of: "pbit", "metropolis-sa", "parallel-tempering", "sqa", "tabu".
  std::string name = "pbit";
  /// MCS per inner run (tabu: single-flip steps; PT: sweeps per replica).
  std::size_t sweeps = 1000;
  /// Annealing endpoint for the linear beta ramp (pbit / metropolis-sa)
  /// and the cold end of the PT ladder.
  double beta_max = 10.0;
};

/// Builds an unbound backend from its spec. Throws std::invalid_argument
/// (naming the offending backend) on an unknown name.
std::unique_ptr<anneal::IsingSolverBackend> make_backend(
    const BackendSpec& spec);

/// Names make_backend accepts, for error messages and --help text.
[[nodiscard]] std::vector<std::string> known_backends();

}  // namespace saim::service
