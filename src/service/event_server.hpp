// service::EventServer — the event-driven front door for saim_serve
// --listen (the default since this PR; --threaded keeps the old
// thread-per-connection server for one release).
//
// One reactor thread (net::EventLoop: epoll on Linux, poll elsewhere)
// multiplexes the listener plus every accepted connection. Each
// connection pairs a net::Connection (non-blocking line IO, writev
// batching) with a StreamSessionCore (the protocol state machine shared
// with the threaded path — identical bytes by construction). All
// sessions share ONE SolveService, so concurrent connections share the
// cache, batcher and warm pool, exactly like the threaded server.
//
// What one thread buys over thread-per-connection:
//   * backpressure instead of unbounded buffering — when a peer stops
//     draining its socket and the connection's outbound queue passes
//     outbound_limit_bytes, the server stops READING that session (jobs
//     stop entering the service) until the queue falls to half the
//     limit. Other sessions are unaffected; server memory per slow
//     reader is bounded by the limit plus one reply.
//   * a global connection cap with fail-fast reject: connection number
//     max_connections+1 is accepted and closed immediately — nothing is
//     written, the peer sees EOF, the service never hears about it.
//   * fail-closed deadlines: with --auth-token, a connection that has
//     not presented {"auth":"<token>"} within auth_timeout_ms is
//     dropped; with idle_timeout_ms > 0, a connection with no traffic
//     and no work in flight for that long is dropped.
//
// Observability (registered on the service's MetricsRegistry, so both
// the Prometheus scrape and the {"cmd":"stats"} "connections" object see
// them, and the --threaded server shares the same series):
//   saim_connections_open, saim_connections_accepted_total,
//   saim_connections_rejected_total, saim_sessions_timed_out_total.
//
// Shutdown: a session's {"cmd":"shutdown"} (or stop() from another
// thread) closes the listener, stops intake on every session, lets
// accepted work drain for a 5 s grace period, then force-drops
// stragglers. run() returns saim_serve's session exit code: 0, or 1 if
// any session emitted an error line.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "net/event_loop.hpp"
#include "net/listener.hpp"
#include "obs/metrics.hpp"
#include "service/solve_service.hpp"
#include "service/stream_session.hpp"

namespace saim::service {

struct EventServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 picks an ephemeral port; see EventServer::port()
  /// Shared secret; empty disables the handshake. With a token set, the
  /// first line of every connection must be exactly {"auth":"<token>"}
  /// or the connection closes unserved (fail-closed).
  std::string auth_token;
  SessionOptions session;
  /// Open-connection cap; further accepts are closed immediately.
  std::size_t max_connections = 1024;
  /// Per-connection outbound-queue bound that pauses reading (see
  /// header comment). Not a hard memory cap: results already accepted
  /// still queue past it — it stops NEW work from entering.
  std::size_t outbound_limit_bytes = 256 * 1024;
  /// Deadline for the auth handshake (only enforced when auth_token is
  /// set); 0 disables.
  int auth_timeout_ms = 10'000;
  /// Drop a connection idle this long with nothing in flight; 0
  /// disables (an idle-parked client is legal by default — the shard
  /// router keeps quiet health-check connections open).
  int idle_timeout_ms = 0;
  /// Test hook: use the portable poll backend even where epoll exists.
  bool force_poll = false;
};

class EventServer {
 public:
  /// Binds the listener (throws std::runtime_error like net::Listener on
  /// failure) and registers the connection metrics on `service`.
  EventServer(SolveService& service, EventServerOptions options);
  ~EventServer();

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  /// The bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] int port() const noexcept { return listener_.port(); }

  /// Serves until a session's {"cmd":"shutdown"} or stop(). Returns the
  /// saim_serve exit code: 1 when any session produced an error line,
  /// else 0. Call from exactly one thread.
  int run();

  /// Thread-safe: asks run() to begin the graceful shutdown sequence.
  void stop();

  /// Test-visible counters (readable from any thread while run() spins).
  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;   ///< over-cap fail-fast closes
    std::uint64_t timed_out = 0;  ///< auth-deadline + idle drops
    std::uint64_t backpressure_pauses = 0;
    std::uint64_t open = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Client;

  void accept_pending();
  void on_client_event(int fd, std::uint32_t ready);
  /// Feeds buffered-but-unprocessed lines to the session while the
  /// outbound queue is under the backpressure limit.
  void process_pending_lines(Client& client);
  void read_client(Client& client);
  /// Pumps writes, applies backpressure state, recomputes fd interest;
  /// closes the client when it is finished. Returns false if the client
  /// was destroyed.
  bool update_client(Client& client);
  void sweep_sessions();
  void housekeeping();
  void begin_shutdown();
  void close_client(Client& client);
  [[nodiscard]] bool any_needs_sweep() const;

  SolveService& service_;
  const EventServerOptions options_;
  net::Listener listener_;
  net::EventLoop loop_;

  std::map<int, std::unique_ptr<Client>> clients_;
  bool stopping_ = false;
  bool done_ = false;
  bool any_error_ = false;
  std::chrono::steady_clock::time_point grace_deadline_{};
  std::atomic<bool> stop_requested_{false};

  // Counters are atomics (tests poll them from outside the loop thread)
  // mirrored into the service registry for scrapes and stats lines.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> backpressure_pauses_{0};
  obs::Counter& accepted_metric_;
  obs::Counter& rejected_metric_;
  obs::Counter& timed_out_metric_;
  obs::Gauge& open_metric_;
};

}  // namespace saim::service
