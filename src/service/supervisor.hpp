// Supervisor — the self-healing layer over the shard fleet.
//
// PR 4's front door was fail-static: a crashed shard was dropped from
// the ring forever and --shards was fixed at spawn. The Supervisor owns
// the fleet's endpoints (local fork/exec children and remote TCP shards
// behind one net::ShardEndpoint interface) and adds the management
// behaviors on top of the same ShardRouter/pump cycle:
//
//   * respawn — a crashed LOCAL child is re-exec'd with exponential
//     backoff and re-added to the ring (revive_shard: consistent hashing
//     moves exactly its old keyslice back). While survivors exist its
//     unanswered jobs fail over to them first (PR 4 path); when it was
//     the ONLY shard they are held on its pending queue instead of
//     orphaning, and replay into the replacement. A child that stays up
//     `stable_ms` earns its restart budget back; one that crash-loops
//     `max_restarts` times is declared down for good. A remote shard is
//     not respawned (this process cannot re-exec another machine's
//     server) but its session IS redialed on the same backoff/budget:
//     its jobs fail over immediately, and when the reconnect lands the
//     slot rejoins the ring exactly like a respawned local child.
//
//   * live resharding — reshard(n) grows or shrinks the LOCAL fleet to n
//     while jobs are in flight. Grow spawns children into recycled dead
//     slots first, then brand-new slots. Shrink retires the
//     highest-indexed local shards: each is asked to export_warm, has
//     its unanswered jobs requeued onto the survivors via the PR 4
//     failover path (exactly-once: a late result from the retiree and
//     the rerun's result dedupe by routing token, first one wins), and
//     is then sent {"cmd":"shutdown"} — its tail output is pumped until
//     the farewell EOF so nothing it already computed is discarded.
//
//   * warm handoff — whenever ring membership changes (respawn rejoin,
//     grow, shrink), every live shard is probed with export_warm; each
//     returned pool entry is forwarded as import_warm to every member of
//     its fingerprint's replica set (owner + next R-1) except the donor,
//     so requeued, hedged and hot-key-routed jobs start from the best
//     configurations already found. With gossip_ms > 0 the same probe
//     also runs on a timer, warming late joiners between membership
//     changes.
//
//   * health — the ping/5-missed-pongs watchdog from PR 4's tool loop
//     lives here now; an unresponsive shard is terminated and flows into
//     the same death/respawn path.
//
// Single-threaded like the router: the owning loop calls pump()
// repeatedly; every management action advances inside pump.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/shard_endpoint.hpp"
#include "service/shard_router.hpp"
#include "util/thread_checker.hpp"

namespace saim::service {

struct SupervisorOptions {
  /// argv to exec one local shard (a `saim_serve --stream` invocation).
  std::vector<std::string> local_argv;
  /// Re-exec crashed local children. Off = PR 4 fail-static behavior.
  bool respawn = true;
  /// Redial remote (--connect) endpoints whose connection dropped, on
  /// the same exponential-backoff/budget machinery as local respawns.
  /// The remote server is never re-exec'd — it belongs to its operator;
  /// this only re-establishes the session (the server may have been
  /// restarted, or the drop may have been transient network weather).
  bool reconnect_remotes = true;
  /// Consecutive crashes before a slot is abandoned (counter resets
  /// after a child survives stable_ms).
  int max_restarts = 5;
  int backoff_initial_ms = 100;
  int backoff_max_ms = 2000;
  int stable_ms = 5000;
  /// Health-probe interval; a shard missing 5 pongs in a row is
  /// terminated (0 disables probing).
  int ping_ms = 1000;
  /// A shard retired by a shrink gets this long to drain its tail and
  /// exit on its own before being terminated (a wedged retiree must not
  /// haunt the fleet until final teardown).
  int retire_grace_ms = 10000;
  /// Periodic warm-pool gossip: every gossip_ms the fleet is probed with
  /// export_warm and each entry is re-forwarded to its key's replica set
  /// (same path as the membership-change handoff), so a late-joining or
  /// respawned replica warms up between membership changes too. 0 = only
  /// membership changes trigger the handoff.
  int gossip_ms = 0;
  /// Auth token presented to remote `--listen` shards on connect and on
  /// every redial (they close unauthenticated sessions when started with
  /// --auth-token). Empty = no handshake line.
  std::string remote_auth_token;
};

class Supervisor {
 public:
  struct Stats {
    std::uint64_t respawns = 0;        ///< successful local re-execs
    std::uint64_t remote_reconnects = 0;  ///< successful remote redials
    std::uint64_t respawn_failures = 0;///< slots abandoned after max_restarts
    std::uint64_t reshards = 0;        ///< reshard() membership changes
    std::uint64_t retired = 0;         ///< shards removed by shrink
    std::uint64_t warm_forwarded = 0;  ///< pool entries moved to a new owner
    std::uint64_t unresponsive_kills = 0;
  };

  /// The router must outlive the supervisor. Slots are attached (or
  /// grown) explicitly; router slot `s` pairs with endpoint slot `s`.
  Supervisor(ShardRouter& router, SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns a local child into router slot `slot` (must be < the
  /// router's shard_slots and not yet attached).
  void attach_local(std::size_t slot);
  /// Connects router slot `slot` to a remote `saim_serve --listen`.
  /// Throws std::runtime_error when the connection fails.
  void attach_remote(std::size_t slot, const std::string& host, int port);

  /// One cycle: flush windows, poll, route lines, advance deaths /
  /// respawns / retirements / warm handoffs / health probes. Returns
  /// result lines to emit downstream, in order.
  std::vector<std::string> pump(int poll_ms);

  /// Fleet stats: broadcasts a {"cmd":"stats"} probe to every live shard
  /// and registers an aggregation keyed by `reply_id`. Once every probed
  /// shard has answered — or a 2 s deadline passes, whichever is first —
  /// pump() emits one {"id":reply_id,"fleet":{...}} snapshot line
  /// downstream: router totals, supervisor counters, and a per-shard
  /// array with liveness, restart count, queue depth, inflight count,
  /// round-trip latency quantiles and the shard's own service snapshot
  /// (null for shards that did not answer in time).
  void request_fleet_stats(const std::string& reply_id);

  /// Live resharding: grow or shrink the LOCAL fleet so that
  /// `target_locals` local shards serve the ring (remote shards are
  /// never touched; target is clamped to >= 1 when no remotes exist).
  /// Returns the number of local shards after the change is applied
  /// (the membership change itself completes over subsequent pumps).
  std::size_t reshard(std::size_t target_locals);

  /// Graceful teardown: {"cmd":"shutdown"} + input EOF to every child,
  /// pump until each exits (bounded), reap — no SIGKILL unless a child
  /// overstays `grace_ms`. Lines harvested during teardown surface via
  /// drain_deferred().
  void shutdown_fleet(int grace_ms = 5000);

  /// Output produced outside pump() (reshard requeues, teardown tails);
  /// pump() also drains this, so only call it after the last pump.
  [[nodiscard]] std::vector<std::string> drain_deferred() {
    return std::exchange(deferred_out_, {});
  }

  /// Live local shards wanted (attached or respawning).
  [[nodiscard]] std::size_t desired_locals() const;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// The endpoint currently serving router slot `s` (nullptr when the
  /// slot is dead/retired). Exposed for tests and the tool's 127 check.
  [[nodiscard]] net::ShardEndpoint* endpoint(std::size_t s) const;
  [[nodiscard]] bool is_local(std::size_t s) const;

 private:
  struct Slot {
    std::unique_ptr<net::ShardEndpoint> endpoint;
    bool local = false;
    bool attached = false;   ///< slot was ever given an endpoint
    bool want = true;        ///< desired fleet member (false once retired)
    bool retiring = false;   ///< removed from ring, draining tail output
    bool respawn_pending = false;
    int restarts = 0;
    /// Remote endpoint address, kept for redials (empty host = local).
    std::string host;
    int port = 0;
    std::chrono::steady_clock::time_point respawn_at{};
    std::chrono::steady_clock::time_point spawned_at{};
    std::chrono::steady_clock::time_point retire_deadline{};
    int missed_pongs = 0;
    bool ping_outstanding = false;
  };

  /// One outstanding request_fleet_stats aggregation.
  struct StatsProbe {
    std::string reply_id;
    std::set<std::size_t> waiting;               ///< shards not yet answered
    std::map<std::size_t, std::string> replies;  ///< shard -> service JSON
    std::chrono::steady_clock::time_point deadline;
  };

  void ensure_slot(std::size_t slot);
  /// Handles one observed endpoint death; appends orphan lines to out.
  void on_death(std::size_t slot, std::vector<std::string>* out);
  /// Spawns the replacement for a due slot; true on success.
  bool try_respawn(std::size_t slot, std::vector<std::string>* out);
  /// Probes every live shard for its warm pool (handoff/gossip trigger).
  void request_warm_rebalance();
  /// Routes one shard's export to each entry's current replica set (the
  /// owner plus the next R-1 shards), skipping the donor itself.
  void forward_warm(std::size_t donor, const std::string& warm_json);
  void send_health_pings();
  /// Emits every complete (or expired) fleet-stats aggregation.
  void advance_stats_probes(std::vector<std::string>* out);
  [[nodiscard]] std::string fleet_stats_line(const StatsProbe& probe) const;

  /// Same contract as ShardRouter: one loop owns this object; entry
  /// points abort when entered from a second thread.
  util::ThreadChecker thread_checker_{"Supervisor"};

  ShardRouter& router_;
  SupervisorOptions options_;
  std::vector<Slot> slots_;
  std::vector<std::string> deferred_out_;
  std::vector<StatsProbe> stats_probes_;
  std::chrono::steady_clock::time_point last_ping_;
  std::chrono::steady_clock::time_point last_gossip_;
  std::uint64_t probe_counter_ = 0;
  Stats stats_;
};

}  // namespace saim::service
