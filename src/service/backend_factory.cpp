#include "service/backend_factory.hpp"

#include <stdexcept>

#include "anneal/parallel_tempering.hpp"
#include "anneal/simulated_annealing.hpp"
#include "anneal/sqa.hpp"
#include "anneal/tabu.hpp"
#include "pbit/schedule.hpp"

namespace saim::service {

std::unique_ptr<anneal::IsingSolverBackend> make_backend(
    const BackendSpec& spec) {
  if (spec.name == "pbit") {
    return std::make_unique<anneal::PBitBackend>(
        pbit::Schedule::linear(spec.beta_max), spec.sweeps);
  }
  if (spec.name == "metropolis-sa") {
    return std::make_unique<anneal::MetropolisSaBackend>(
        pbit::Schedule::linear(spec.beta_max), spec.sweeps);
  }
  if (spec.name == "parallel-tempering") {
    anneal::PtOptions options;
    options.sweeps = spec.sweeps;
    options.beta_max = spec.beta_max;
    return std::make_unique<anneal::ParallelTemperingBackend>(options);
  }
  if (spec.name == "sqa") {
    anneal::SqaOptions options;
    options.sweeps = spec.sweeps;
    return std::make_unique<anneal::SqaBackend>(options);
  }
  if (spec.name == "tabu") {
    anneal::TabuOptions options;
    options.steps = spec.sweeps;
    return std::make_unique<anneal::TabuBackend>(options);
  }
  std::string known;
  for (const auto& name : known_backends()) {
    known += known.empty() ? name : ", " + name;
  }
  throw std::invalid_argument("make_backend: unknown backend '" + spec.name +
                              "' (known: " + known + ")");
}

std::vector<std::string> known_backends() {
  return {"pbit", "metropolis-sa", "parallel-tempering", "sqa", "tabu"};
}

}  // namespace saim::service
