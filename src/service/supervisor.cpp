#include "service/supervisor.hpp"

#include <poll.h>
#include <sys/wait.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/socket_child.hpp"
#include "service/process_child.hpp"
#include "service/service_stats.hpp"
#include "service/stream_session.hpp"
#include "util/jsonl.hpp"
#include "util/logging.hpp"

namespace saim::service {

namespace {

using Clock = std::chrono::steady_clock;

void append(std::vector<std::string>* out, std::vector<std::string> lines) {
  out->insert(out->end(), std::make_move_iterator(lines.begin()),
              std::make_move_iterator(lines.end()));
}

}  // namespace

Supervisor::Supervisor(ShardRouter& router, SupervisorOptions options)
    : router_(router), options_(std::move(options)),
      last_ping_(Clock::now()), last_gossip_(Clock::now()) {
  slots_.resize(router_.shard_slots());
}

Supervisor::~Supervisor() = default;

void Supervisor::ensure_slot(std::size_t slot) {
  if (slot >= slots_.size()) slots_.resize(slot + 1);
}

void Supervisor::attach_local(std::size_t slot) {
  thread_checker_.assert_current_thread();
  if (slot >= router_.shard_slots()) {
    throw std::logic_error("Supervisor: slot beyond the router's shards");
  }
  ensure_slot(slot);
  Slot& s = slots_[slot];
  if (s.attached) throw std::logic_error("Supervisor: slot already attached");
  s.endpoint = std::make_unique<ProcessChild>(options_.local_argv);
  s.local = true;
  s.attached = true;
  s.want = true;
  s.spawned_at = Clock::now();
}

void Supervisor::attach_remote(std::size_t slot, const std::string& host,
                               int port) {
  thread_checker_.assert_current_thread();
  if (slot >= router_.shard_slots()) {
    throw std::logic_error("Supervisor: slot beyond the router's shards");
  }
  ensure_slot(slot);
  Slot& s = slots_[slot];
  if (s.attached) throw std::logic_error("Supervisor: slot already attached");
  s.endpoint =
      std::make_unique<net::SocketChild>(host, port,
                                         options_.remote_auth_token);
  s.local = false;
  s.attached = true;
  s.want = true;
  s.host = host;
  s.port = port;
  s.spawned_at = Clock::now();
}

net::ShardEndpoint* Supervisor::endpoint(std::size_t s) const {
  return s < slots_.size() ? slots_[s].endpoint.get() : nullptr;
}

bool Supervisor::is_local(std::size_t s) const {
  return s < slots_.size() && slots_[s].local;
}

std::size_t Supervisor::desired_locals() const {
  std::size_t count = 0;
  for (const Slot& s : slots_) {
    if (s.local && s.want) ++count;
  }
  return count;
}

std::vector<std::string> Supervisor::pump(int poll_ms) {
  thread_checker_.assert_current_thread();
  std::vector<std::string> out;
  std::swap(out, deferred_out_);
  const auto now = Clock::now();

  // Respawns that have served their backoff.
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].respawn_pending && now >= slots_[s].respawn_at) {
      try_respawn(s, &out);
    }
  }

  // Hedge pass: queue replica copies of jobs stuck in flight past their
  // shard's adaptive threshold, so the send loop below writes them in
  // this same cycle (mirrors shard_driver's pump).
  router_.dispatch_hedges();

  // Send: fill each live shard's window; keep flushing retiring shards
  // so their farewell control lines leave the user-space buffer, then
  // half-close them.
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    if (!slot.endpoint) continue;
    if (slot.retiring) {
      slot.endpoint->pump_writes();
      if (slot.endpoint->outbound_bytes() == 0) {
        slot.endpoint->shutdown_input();
      }
      if (now >= slot.retire_deadline) {
        // Wedged retiree (not reading, not exiting): it already left the
        // ring and its jobs were requeued, so cut it loose.
        slot.endpoint->terminate();
      }
      continue;
    }
    if (!router_.alive(s)) continue;
    for (auto& line : router_.take_sendable(s)) slot.endpoint->send_line(line);
    slot.endpoint->pump_writes();
  }

  // Wait for output anywhere (live or retiring).
  std::vector<pollfd> fds;
  fds.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    if (slot.endpoint && !slot.endpoint->eof() &&
        slot.endpoint->read_fd() >= 0) {
      fds.push_back(pollfd{slot.endpoint->read_fd(), POLLIN, 0});
    }
  }
  if (!fds.empty() && poll_ms >= 0) {
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_ms);
  } else if (poll_ms > 0) {
    // Nothing pollable (every endpoint dead, respawns on backoff):
    // honor the wait anyway so the caller's loop does not spin hot
    // through the backoff window.
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }

  // Read everyone — retiring shards included, so results they computed
  // before departure are harvested, not recomputed. Deaths are declared
  // only at EOF (flushed results are never discarded).
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    if (!slot.endpoint) continue;
    for (const auto& line : slot.endpoint->read_lines()) {
      append(&out, router_.on_child_line(s, line));
    }
    if (const auto warm = router_.take_warm_export(s)) {
      forward_warm(s, *warm);
    }
    if (const auto stats_json = router_.take_stats_export(s)) {
      // Deliver to the oldest aggregation still waiting on this shard.
      for (auto& probe : stats_probes_) {
        if (probe.waiting.erase(s) > 0) {
          probe.replies[s] = *stats_json;
          break;
        }
      }
    }
    if (slot.endpoint->eof()) {
      if (slot.retiring) {
        slot.endpoint->reap();
        slot.endpoint.reset();
        slot.retiring = false;  // retirement complete
      } else {
        on_death(s, &out);
      }
    }
  }

  send_health_pings();
  if (options_.gossip_ms > 0 &&
      now - last_gossip_ >= std::chrono::milliseconds(options_.gossip_ms)) {
    // Periodic warm-pool gossip: the same export_warm probe the
    // membership-change handoff uses, on a timer — replies route through
    // forward_warm above on later pumps, warming replicas that joined
    // (or respawned) after the pool entries were found.
    last_gossip_ = now;
    request_warm_rebalance();
  }
  advance_stats_probes(&out);
  return out;
}

void Supervisor::request_fleet_stats(const std::string& reply_id) {
  thread_checker_.assert_current_thread();
  StatsProbe probe;
  probe.reply_id = reply_id;
  probe.deadline = Clock::now() + std::chrono::milliseconds(2000);
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].endpoint || slots_[s].retiring || !router_.alive(s)) {
      continue;
    }
    slots_[s].endpoint->send_line(R"({"cmd":"stats","id":"_stats)" +
                                  std::to_string(probe_counter_++) + "\"}");
    slots_[s].endpoint->pump_writes();
    probe.waiting.insert(s);
  }
  stats_probes_.push_back(std::move(probe));
}

void Supervisor::advance_stats_probes(std::vector<std::string>* out) {
  if (stats_probes_.empty()) return;
  const auto now = Clock::now();
  for (auto it = stats_probes_.begin(); it != stats_probes_.end();) {
    // Emit when complete — or at the deadline with whatever arrived: a
    // wedged shard must not make the whole fleet unobservable.
    if (it->waiting.empty() || now >= it->deadline) {
      out->push_back(fleet_stats_line(*it));
      it = stats_probes_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string Supervisor::fleet_stats_line(const StatsProbe& probe) const {
  const ShardRouter::Stats& rs = router_.stats();

  util::JsonWriter router_json;
  router_json.field("accepted", rs.accepted)
      .field("rejected", rs.rejected)
      .field("emitted", rs.emitted)
      .field("requeued", rs.requeued)
      .field("orphaned", rs.orphaned)
      .field("hedges", rs.hedges)
      .field("hedge_wins", rs.hedge_wins)
      .field("sheds", rs.sheds)
      .field("replica_hits", rs.replica_hits)
      .field("replicas",
             static_cast<std::uint64_t>(router_.replication_factor()))
      .field("outstanding", static_cast<std::uint64_t>(router_.outstanding()));

  util::JsonWriter sup;
  sup.field("respawns", stats_.respawns)
      .field("remote_reconnects", stats_.remote_reconnects)
      .field("respawn_failures", stats_.respawn_failures)
      .field("reshards", stats_.reshards)
      .field("retired", stats_.retired)
      .field("warm_forwarded", stats_.warm_forwarded)
      .field("unresponsive_kills", stats_.unresponsive_kills);

  std::string shards = "[";
  for (std::size_t s = 0; s < router_.shard_slots(); ++s) {
    if (s > 0) shards += ",";
    util::JsonWriter shard;
    shard.field("shard", static_cast<std::uint64_t>(s))
        .field("alive", router_.alive(s))
        .field("local", is_local(s))
        .field("restarts",
               s < slots_.size() ? slots_[s].restarts : 0)
        .field("routed", s < rs.routed_per_shard.size()
                             ? rs.routed_per_shard[s]
                             : 0)
        .field("queue_depth", static_cast<std::uint64_t>(router_.pending(s)))
        .field("inflight", static_cast<std::uint64_t>(router_.inflight(s)))
        .raw_field("latency",
                   latency_quantiles_json(router_.latency_snapshot(s)));
    const auto reply = probe.replies.find(s);
    shard.raw_field("service",
                    reply != probe.replies.end() ? reply->second : "null");
    shards += shard.str();
  }
  shards += "]";

  util::JsonWriter fleet;
  fleet
      .field("live_shards", static_cast<std::uint64_t>(router_.live_shards()))
      .field("shard_slots", static_cast<std::uint64_t>(router_.shard_slots()))
      .raw_field("router", router_json.str())
      .raw_field("supervisor", sup.str())
      .raw_field("shards", shards);

  util::JsonWriter line;
  line.field("id", probe.reply_id).raw_field("fleet", fleet.str());
  return line.str();
}

void Supervisor::on_death(std::size_t s, std::vector<std::string>* out) {
  Slot& slot = slots_[s];
  slot.endpoint->reap();
  // An exec failure (bad --serve path after a respawn) deserves a loud,
  // specific note — it looks like an instant crash otherwise.
  if (auto* child = dynamic_cast<ProcessChild*>(slot.endpoint.get());
      child && WIFEXITED(child->exit_status()) &&
      WEXITSTATUS(child->exit_status()) == 127) {
    util::log_error() << "shard " << s << " could not exec its saim_serve";
  }
  slot.endpoint.reset();
  slot.ping_outstanding = false;
  slot.missed_pongs = 0;

  const auto now = Clock::now();
  if (now - slot.spawned_at >=
      std::chrono::milliseconds(options_.stable_ms)) {
    slot.restarts = 0;  // it earned its budget back before dying
  }

  const bool revivable =
      slot.local ? options_.respawn
                 : options_.reconnect_remotes && !slot.host.empty();
  const bool will_respawn =
      slot.want && revivable && slot.restarts < options_.max_restarts;
  if (will_respawn) {
    if (router_.alive(s) && router_.live_shards() == 1) {
      // Sole shard: nowhere to fail over to. Hold its jobs on its own
      // pending queue (ring intact) and replay into the replacement —
      // nothing orphans just because the fleet momentarily has no
      // member.
      router_.requeue_inflight(s);
    } else if (router_.alive(s)) {
      append(out, router_.on_child_down(s));  // PR 4 failover first
    }
    const int backoff = std::min(
        options_.backoff_max_ms,
        options_.backoff_initial_ms << std::min(slot.restarts, 20));
    slot.respawn_pending = true;
    slot.respawn_at = now + std::chrono::milliseconds(backoff);
    if (slot.local) {
      util::log_warn() << "shard " << s << " down, respawning in " << backoff
                       << " ms (attempt " << slot.restarts + 1 << "/"
                       << options_.max_restarts << ")";
    } else {
      util::log_warn() << "remote shard " << s << " (" << slot.host << ":"
                       << slot.port << ") dropped, reconnecting in "
                       << backoff << " ms (attempt " << slot.restarts + 1
                       << "/" << options_.max_restarts << ")";
    }
    return;
  }

  // Dead for good: reconnect/respawn disabled or budget exhausted.
  if (router_.alive(s)) append(out, router_.on_child_down(s));
  if (revivable && slot.want) {
    ++stats_.respawn_failures;
    util::log_error() << "shard " << s << " abandoned after " << slot.restarts
                      << " crashes";
  }
  slot.want = false;
  slot.respawn_pending = false;
}

bool Supervisor::try_respawn(std::size_t s, std::vector<std::string>* out) {
  Slot& slot = slots_[s];
  slot.respawn_pending = false;
  if (!slot.want || (!slot.local && slot.host.empty())) return false;
  try {
    if (slot.local) {
      slot.endpoint = std::make_unique<ProcessChild>(options_.local_argv);
    } else {
      slot.endpoint = std::make_unique<net::SocketChild>(
          slot.host, slot.port, options_.remote_auth_token);
    }
  } catch (const std::exception&) {
    // fork/pipe failure (fd or process exhaustion) — or, for a remote,
    // a server that is not back yet: retry on backoff like a crash,
    // give up on the same budget.
    ++slot.restarts;
    if (slot.restarts >= options_.max_restarts) {
      if (router_.alive(s)) append(out, router_.on_child_down(s));
      slot.want = false;
      ++stats_.respawn_failures;
      return false;
    }
    const int backoff = std::min(
        options_.backoff_max_ms,
        options_.backoff_initial_ms << std::min(slot.restarts, 20));
    slot.respawn_pending = true;
    slot.respawn_at = Clock::now() + std::chrono::milliseconds(backoff);
    return false;
  }
  slot.spawned_at = Clock::now();
  ++slot.restarts;
  if (slot.local) {
    ++stats_.respawns;
    util::log_info() << "shard " << s << " respawned";
  } else {
    ++stats_.remote_reconnects;
    util::log_info() << "remote shard " << s << " reconnected to "
                     << slot.host << ":" << slot.port;
  }
  if (!router_.alive(s)) {
    router_.revive_shard(s);  // the old keyslice routes back here
    request_warm_rebalance();  // ... and its warm entries follow
  }
  return true;
}

std::size_t Supervisor::reshard(std::size_t target_locals) {
  thread_checker_.assert_current_thread();
  // A fleet with no remote members must keep at least one local shard —
  // an empty ring rejects every job.
  std::size_t live_remotes = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].local && slots_[s].endpoint && router_.alive(s)) {
      ++live_remotes;
    }
  }
  if (live_remotes == 0) {
    target_locals = std::max<std::size_t>(1, target_locals);
  }
  const std::size_t current = desired_locals();
  if (target_locals == current) return current;
  ++stats_.reshards;

  if (target_locals > current) {
    std::size_t needed = target_locals - current;
    std::size_t failed_spawns = 0;
    // Recycle dead local slots first: revive_shard restores their exact
    // old keyslice, so a shrink-then-grow round trip moves keys back
    // where their caches were warm.
    for (std::size_t s = 0; s < slots_.size() && needed > 0; ++s) {
      Slot& slot = slots_[s];
      if (!slot.attached || !slot.local || slot.want || slot.retiring ||
          slot.endpoint) {
        continue;
      }
      try {
        slot.endpoint = std::make_unique<ProcessChild>(options_.local_argv);
      } catch (const std::exception&) {
        continue;  // try another slot; brand-new slots below may work
      }
      slot.want = true;
      slot.restarts = 0;
      slot.respawn_pending = false;
      slot.spawned_at = Clock::now();
      if (!router_.alive(s)) router_.revive_shard(s);
      --needed;
    }
    while (needed > 0) {
      // Spawn BEFORE touching the ring: a fork/pipe failure must not
      // leave a live ring slot with no endpoint behind it (jobs hashing
      // there would wait forever).
      std::unique_ptr<net::ShardEndpoint> endpoint;
      try {
        endpoint = std::make_unique<ProcessChild>(options_.local_argv);
      } catch (const std::exception&) {
        ++failed_spawns;
        break;  // partial grow; the reply reports the applied count
      }
      const std::size_t s = router_.add_shard();
      ensure_slot(s);
      Slot& slot = slots_[s];
      slot.endpoint = std::move(endpoint);
      slot.local = true;
      slot.attached = true;
      slot.want = true;
      slot.spawned_at = Clock::now();
      --needed;
    }
    if (failed_spawns > 0) {
      util::log_warn() << "reshard grow stopped short (spawn failed)";
    }
    request_warm_rebalance();  // new owners inherit their keys' pools
    return desired_locals();
  }

  // Shrink: retire the highest-indexed local members. Ask each for its
  // warm pool (forwarded to the keys' new owners when the reply lands),
  // requeue its unanswered jobs via the failover path, and let it drain
  // out through a polite shutdown.
  std::size_t to_remove = current - target_locals;
  for (std::size_t i = slots_.size(); i-- > 0 && to_remove > 0;) {
    Slot& slot = slots_[i];
    if (!slot.local || !slot.want || slot.retiring) continue;
    slot.want = false;
    slot.respawn_pending = false;
    ++stats_.retired;
    --to_remove;
    if (slot.endpoint) {
      slot.endpoint->send_line(
          R"({"cmd":"export_warm","id":"_probe)" +
          std::to_string(probe_counter_++) + "\"}");
      slot.endpoint->send_line(R"({"cmd":"shutdown","id":"_retire"})");
      slot.endpoint->pump_writes();
      slot.retiring = true;
      slot.retire_deadline =
          Clock::now() +
          std::chrono::milliseconds(options_.retire_grace_ms);
    }
    if (router_.alive(i)) {
      append(&deferred_out_, router_.on_child_down(i));
    }
  }
  return desired_locals();
}

void Supervisor::request_warm_rebalance() {
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].endpoint || slots_[s].retiring || !router_.alive(s)) {
      continue;
    }
    slots_[s].endpoint->send_line(
        R"({"cmd":"export_warm","id":"_probe)" +
        std::to_string(probe_counter_++) + "\"}");
  }
}

void Supervisor::forward_warm(std::size_t donor, const std::string& warm_json) {
  util::JsonValue warm;
  try {
    warm = util::parse_json(warm_json);
  } catch (const std::exception&) {
    return;  // defensive: a child never sends garbage
  }
  if (!warm.is_object()) return;

  // Group the donor's entries by every member of their CURRENT replica
  // set (owner + next R-1 shards); the donor's own copy stays put.
  std::map<std::size_t, std::string> per_owner;
  std::map<std::size_t, std::uint64_t> forwarded;
  for (const auto& [fp_hex, samples] : warm.object()) {
    const auto fp = parse_fp_hex(fp_hex);
    if (!fp || !samples.is_array() || samples.array().empty()) continue;
    std::vector<std::size_t> members;
    try {
      members = router_.replica_set(*fp);
    } catch (const std::exception&) {
      return;  // empty ring: nobody to hand anything to
    }
    for (const std::size_t member : members) {
      if (member == donor || member >= slots_.size() ||
          !slots_[member].endpoint || slots_[member].retiring) {
        continue;
      }
      std::string& payload = per_owner[member];
      payload += payload.empty() ? "{" : ",";
      payload += "\"" + fp_hex + "\":" + util::to_json(samples);
      forwarded[member] += samples.array().size();
    }
  }
  for (auto& [owner, payload] : per_owner) {
    payload += "}";
    util::JsonWriter line;
    line.field("cmd", "import_warm")
        .field("id", "_warm" + std::to_string(probe_counter_++))
        .raw_field("warm", payload);
    slots_[owner].endpoint->send_line(line.str());
    slots_[owner].endpoint->pump_writes();
    stats_.warm_forwarded += forwarded[owner];
  }
}

void Supervisor::send_health_pings() {
  if (options_.ping_ms <= 0) return;
  const auto now = Clock::now();
  if (now - last_ping_ < std::chrono::milliseconds(options_.ping_ms)) return;
  last_ping_ = now;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    if (!slot.endpoint || slot.retiring || !router_.alive(s)) continue;
    if (router_.take_pong(s)) {
      slot.missed_pongs = 0;
    } else if (slot.ping_outstanding && ++slot.missed_pongs >= 5) {
      // Wedged: terminate; EOF then routes into the death/respawn path.
      slot.endpoint->terminate();
      slot.ping_outstanding = false;
      ++stats_.unresponsive_kills;
      continue;
    }
    slot.endpoint->send_line(R"({"cmd":"ping"})");
    slot.ping_outstanding = true;
  }
}

void Supervisor::shutdown_fleet(int grace_ms) {
  thread_checker_.assert_current_thread();
  for (Slot& slot : slots_) {
    slot.want = false;
    slot.respawn_pending = false;
    // Local children are OURS: tell them to shut the whole process down.
    // A remote server belongs to its operator and may be serving other
    // front doors — only this session ends (the input half-close below),
    // never the server.
    if (slot.local && slot.endpoint && !slot.endpoint->eof()) {
      slot.endpoint->send_line(R"({"cmd":"shutdown","id":"_bye"})");
      slot.endpoint->pump_writes();
    }
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(grace_ms);
  for (;;) {
    bool open = false;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (!slot.endpoint) continue;
      if (!slot.endpoint->eof()) {
        slot.endpoint->pump_writes();
        if (slot.endpoint->outbound_bytes() == 0) {
          slot.endpoint->shutdown_input();
        }
        // Tail results still count: feed them through the router so a
        // drain initiated right before teardown loses nothing.
        for (const auto& line : slot.endpoint->read_lines()) {
          append(&deferred_out_, router_.on_child_line(s, line));
        }
        if (!slot.endpoint->eof()) {
          open = true;
          continue;
        }
      }
      slot.endpoint->reap();
      slot.endpoint.reset();
    }
    if (!open || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (Slot& slot : slots_) {
    if (slot.endpoint) {
      slot.endpoint->terminate();  // overstayed the grace period
      slot.endpoint.reset();       // dtor reaps
    }
  }
}

}  // namespace saim::service
