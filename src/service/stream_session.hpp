// StreamSession — one JSONL serving conversation over any line IO.
//
// PR 4's saim_serve had the whole wire protocol (docs/PROTOCOL.md) woven
// into its main(): read job lines, submit to the SolveService, emit
// result lines (input order after EOF, or completion order with "seq"
// under --stream), answer control lines. run_stream_session() is that
// loop extracted behind a SessionIO seam, so the identical protocol —
// byte for byte — now serves
//
//   * stdin/stdout            (IostreamSessionIO; saim_serve's default),
//   * one accepted TCP socket (FdSessionIO; saim_serve --listen
//     --threaded spawns a session thread per connection),
//   * many multiplexed TCP sockets on one reactor thread (the default
//     --listen path: service/event_server.{hpp,cpp} drives one
//     StreamSessionCore per connection from a net::EventLoop).
//
// The protocol state machine itself lives in StreamSessionCore: a
// non-blocking, push/pull core (feed lines in, poll finished result
// lines out) shared by BOTH transports, so the event-driven server and
// the thread-per-connection server emit identical bytes by construction.
// run_stream_session() is the blocking driver around it.
//
// Per-session state: job table, seq counter (stream mode numbers each
// CONNECTION's accepted jobs 0..n-1), drain barriers. Shared state: the
// SolveService. The emitter thread (stream mode, blocking driver) writes
// results the moment they complete, even while the reader blocks on a
// slow producer.
//
// Control lines handled here: ping, stats (immediate service snapshot:
// counters, cache stats, latency quantiles — see service_stats.hpp),
// drain, shutdown (stop intake, drain everything accepted, emit
// {"bye":true}, end the session), export_warm (warm-pool snapshot as
// {"warm":{...}}), import_warm (deposit exported samples). reshard is
// the sharding front door's command and is answered with an error line.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "service/solve_service.hpp"
#include "util/jsonl.hpp"

namespace saim::service {

struct SessionOptions {
  /// Emit results as jobs finish (tagged with "seq") instead of in input
  /// order after EOF.
  bool stream = false;
  /// --warm-start: per-job "warm_start" default.
  bool warm_default = false;
};

struct SessionResult {
  bool any_error = false;  ///< some line produced an error line
  bool shutdown = false;   ///< {"cmd":"shutdown"} ended the session
};

/// The line transport a session speaks through. read_line blocks; the
/// session serializes write_line calls itself (implementations need no
/// locking against the session, only against other sessions if they
/// share a sink).
class SessionIO {
 public:
  virtual ~SessionIO() = default;
  /// Blocks for the next input line; false on EOF / peer close.
  virtual bool read_line(std::string& line) = 0;
  /// Writes `line` plus a newline; may buffer until flush().
  virtual void write_line(const std::string& line) = 0;
  /// Pushes buffered output to the peer. The session flushes after
  /// every burst of result lines in stream mode (a coprocess is
  /// waiting) but only once at the end in batch mode — a big file run
  /// must not pay one flush per line.
  virtual void flush() {}
};

/// std::istream/std::ostream adapter (stdin/stdout or files).
class IostreamSessionIO : public SessionIO {
 public:
  IostreamSessionIO(std::istream& in, std::ostream& out) : in_(in), out_(out) {}
  bool read_line(std::string& line) override;
  void write_line(const std::string& line) override;
  void flush() override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// Blocking-fd adapter (an accepted socket). Owns the fd by default;
/// pass owns_fd=false when the caller keeps the fd alive past the
/// session (e.g. a server that must shutdown() parked sessions' fds —
/// safe only while the fd cannot be closed and reused underneath it).
class FdSessionIO : public SessionIO {
 public:
  explicit FdSessionIO(int fd, bool owns_fd = true)
      : fd_(fd), owns_fd_(owns_fd) {}
  ~FdSessionIO() override;
  bool read_line(std::string& line) override;
  void write_line(const std::string& line) override;

 private:
  int fd_ = -1;
  bool owns_fd_ = true;
  net::LineFramer framer_;
  std::deque<std::string> lines_;
  std::string write_buffer_;  ///< reused per line: no alloc on the hot path
  bool eof_ = false;
  bool broken_ = false;  ///< write side failed; drop further output
};

/// The protocol state machine of one session, decoupled from any
/// transport or thread: feed input lines with on_line() (immediate
/// replies — pong, stats, import acks — come back through `replies`),
/// mark EOF with finish_input(), and pull finished result lines with
/// poll_emittable(), which NEVER blocks. Internally synchronized: the
/// blocking driver calls on_line and poll_emittable from two threads;
/// the event server calls everything from its one reactor thread (the
/// lock is then uncontended).
///
/// Emission contract (identical to the historical in-line loop, pinned
/// by the transport-equality tests):
///   * stream mode — completion order; every rendered line of an
///     accepted job carries the next "seq"; a drain/shutdown/export
///     barrier waits until every entry before it has emitted;
///   * batch mode — nothing emits before finish_input(); afterwards
///     results render in input order (poll_emittable yields the maximal
///     finished prefix per call; drain_blocking waits for everything).
class StreamSessionCore {
 public:
  StreamSessionCore(SolveService& service, const SessionOptions& options);
  ~StreamSessionCore();

  StreamSessionCore(const StreamSessionCore&) = delete;
  StreamSessionCore& operator=(const StreamSessionCore&) = delete;

  /// Processes one input line (job, control, or garbage — garbage
  /// becomes a queued error line). Immediate replies are appended to
  /// `replies`. Returns false once intake stops ({"cmd":"shutdown"});
  /// further calls are ignored.
  bool on_line(const std::string& line, std::vector<std::string>& replies);

  /// Marks end of input (EOF or the transport dropping the session).
  void finish_input();

  /// Appends every line emittable right now (non-blocking; see the
  /// emission contract above). Returns true once the session is fully
  /// drained: input finished and nothing left to emit.
  bool poll_emittable(std::vector<std::string>& out);

  /// Blocking drain for the thread-per-session batch path: renders
  /// everything still pending, waiting on unfinished jobs, in input
  /// order.
  void drain_blocking(std::vector<std::string>& out);

  /// True when input is finished and every accepted line has emitted.
  [[nodiscard]] bool drained() const;
  /// True when poll_emittable could make progress soon: unemitted
  /// entries exist (stream mode) or exist after EOF (batch mode). The
  /// event server's completion-sweep cadence keys off this.
  [[nodiscard]] bool needs_poll() const;
  /// Accepted-but-unemitted lines (jobs and barriers) — nonzero while
  /// work is still in flight, whatever the mode.
  [[nodiscard]] std::size_t unemitted_count() const;
  [[nodiscard]] SessionResult result() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Serves one complete conversation: reads until EOF or shutdown,
/// answers every line per docs/PROTOCOL.md, returns once everything
/// accepted has been emitted.
SessionResult run_stream_session(SolveService& service, SessionIO& io,
                                 const SessionOptions& options);

// --------------------------------------------------------- warm payloads
// The {"warm":{...}} wire object: problem fingerprints (16 hex digits,
// the same rendering as result-line fingerprints) mapping to arrays of
// {"cost":C,"bits":"0101..."} samples, best cost first.

/// Serializes a pool snapshot as the warm payload object.
std::string warm_pool_to_json(
    const std::vector<ResultCache::WarmSnapshot>& pool);

/// Offers every sample in a parsed warm payload to `service`'s pool.
/// Returns the number of samples offered; throws std::runtime_error on a
/// malformed payload.
std::size_t import_warm_json(SolveService& service,
                             const util::JsonValue& warm);

/// "9c0f4a6e12b35d88" -> the fingerprint; std::nullopt when not 1-16
/// lowercase hex digits.
std::optional<std::uint64_t> parse_fp_hex(const std::string& hex);

}  // namespace saim::service
