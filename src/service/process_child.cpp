#include "service/process_child.hpp"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <mutex>
#include <stdexcept>

namespace saim::service {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

ProcessChild::ProcessChild(std::vector<std::string> argv) {
  if (argv.empty()) throw std::runtime_error("ProcessChild: empty argv");
  net::ignore_sigpipe_once();

  int to_child[2];   // parent writes [1] -> child reads [0]
  int from_child[2]; // child writes [1] -> parent reads [0]
  if (::pipe(to_child) != 0) {
    throw std::runtime_error("ProcessChild: pipe failed");
  }
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw std::runtime_error("ProcessChild: pipe failed");
  }

  // Built BEFORE fork(): between fork and exec only async-signal-safe
  // calls are allowed in a multithreaded parent — a heap allocation there
  // could deadlock the child on another thread's malloc lock.
  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (auto& arg : argv) c_argv.push_back(arg.data());
  c_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    throw std::runtime_error("ProcessChild: fork failed");
  }

  if (pid == 0) {  // child
    // Leave the parent's process group: a terminal Ctrl-C signals the
    // whole foreground group, and the front door must stay in charge of
    // draining its shards instead of watching them die with it.
    ::setpgid(0, 0);
    // Inherited dispositions would leak through exec: SIG_IGN survives
    // it, and this process ignores SIGPIPE (and a front door may ignore
    // more). The shard deserves a default signal table.
    ::signal(SIGPIPE, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    ::execvp(c_argv[0], c_argv.data());
    // exec failed: the parent sees immediate EOF and exit status 127.
    ::_exit(127);
  }

  pid_ = pid;
  in_fd_ = to_child[1];
  out_fd_ = from_child[0];
  ::close(to_child[0]);
  ::close(from_child[1]);
  set_nonblocking(in_fd_);
  set_nonblocking(out_fd_);
  set_cloexec(in_fd_);
  set_cloexec(out_fd_);
}

ProcessChild::~ProcessChild() {
  close_stdin();
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
  if (!reaped_ && pid_ > 0) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, &status_, 0);
    reaped_ = true;
  }
}

void ProcessChild::send_line(const std::string& line) {
  if (write_broken_ || in_fd_ < 0) return;
  outbuf_ += line;
  outbuf_ += '\n';
}

bool ProcessChild::pump_writes() {
  if (write_broken_) return false;
  if (in_fd_ < 0 || outbuf_.empty()) return true;
  switch (net::write_some(in_fd_, outbuf_)) {
    case net::WriteStatus::kOk:
    case net::WriteStatus::kBlocked:
      return true;
    case net::WriteStatus::kBroken:
      write_broken_ = true;  // EPIPE or a real error: the child is gone
      outbuf_.clear();
      return false;
  }
  return false;  // unreachable
}

std::vector<std::string> ProcessChild::read_lines() {
  if (out_fd_ >= 0 && !eof_) {
    switch (net::read_available(out_fd_, framer_)) {
      case net::ReadStatus::kOk:
        break;
      case net::ReadStatus::kEof:
      case net::ReadStatus::kError:
        eof_ = true;
        break;
    }
  }
  return framer_.take_lines();
}

void ProcessChild::close_stdin() {
  if (in_fd_ >= 0) {
    ::close(in_fd_);
    in_fd_ = -1;
  }
}

void ProcessChild::kill(int signal) {
  if (!reaped_ && pid_ > 0) ::kill(pid_, signal);
}

bool ProcessChild::running() {
  if (reaped_) return false;
  if (pid_ <= 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    status_ = status;
    reaped_ = true;
    return false;
  }
  return true;
}

}  // namespace saim::service
