#include "service/event_server.hpp"

#include <unistd.h>

#include <deque>
#include <utility>
#include <vector>

#include "net/connection.hpp"
#include "util/jsonl.hpp"
#include "util/logging.hpp"

namespace saim::service {

namespace {

/// The auth handshake line cap, matching the threaded server: a peer
/// that streams an endless first "line" is cut off, not buffered.
constexpr std::size_t kMaxAuthLineBytes = 4096;

/// Exactly {"auth":"<token>"} — wrong token, no auth field, malformed
/// JSON all fail closed.
bool auth_line_ok(const std::string& line, const std::string& token) {
  try {
    const util::JsonValue parsed = util::parse_json(line);
    if (!parsed.is_object()) return false;
    const auto* auth = parsed.find("auth");
    return auth != nullptr && auth->as_string() == token;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

struct EventServer::Client {
  net::Connection conn;
  /// Null while the auth handshake is outstanding: an unauthenticated
  /// peer never reaches the parser or the service.
  std::unique_ptr<StreamSessionCore> core;
  /// Read-but-not-yet-fed lines. Non-empty only under backpressure: the
  /// feed stops the moment the outbound queue passes the limit, so one
  /// read burst cannot amplify into an unbounded reply queue.
  std::deque<std::string> pending_lines;
  bool awaiting_auth = false;
  bool input_closed = false;
  bool reading_paused = false;
  bool kill = false;  ///< condemned (auth failure, flood); close ASAP
  std::chrono::steady_clock::time_point accepted_at;
  std::chrono::steady_clock::time_point last_activity;
};

EventServer::EventServer(SolveService& service, EventServerOptions options)
    : service_(service),
      options_(std::move(options)),
      listener_(options_.host, options_.port),
      loop_(options_.force_poll),
      accepted_metric_(service.metrics().counter(
          "saim_connections_accepted_total",
          "connections accepted by the listen server")),
      rejected_metric_(service.metrics().counter(
          "saim_connections_rejected_total",
          "connections closed unserved: over the connection cap")),
      timed_out_metric_(service.metrics().counter(
          "saim_sessions_timed_out_total",
          "connections dropped by the auth or idle deadline")),
      open_metric_(service.metrics().gauge(
          "saim_connections_open", "connections open right now")) {}

EventServer::~EventServer() = default;

EventServer::Counters EventServer::counters() const {
  Counters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.timed_out = timed_out_.load(std::memory_order_relaxed);
  c.backpressure_pauses = backpressure_pauses_.load(std::memory_order_relaxed);
  c.open = static_cast<std::uint64_t>(open_metric_.value());
  return c;
}

void EventServer::stop() {
  stop_requested_.store(true);
  loop_.wakeup();
}

int EventServer::run() {
  loop_.add_fd(listener_.fd(), net::EventLoop::kRead,
               [this](std::uint32_t) { accept_pending(); });
  while (!done_) {
    // 2 ms while completions may be pending (the same cadence as the
    // threaded emitter thread, so emit latency matches), 100 ms when
    // only timeouts need the clock.
    loop_.run_once(any_needs_sweep() ? 2 : 100);
    if (stop_requested_.exchange(false)) begin_shutdown();
    sweep_sessions();
    housekeeping();
  }
  return any_error_ ? 1 : 0;
}

bool EventServer::any_needs_sweep() const {
  for (const auto& [fd, client] : clients_) {
    if (client->core && client->core->needs_poll()) return true;
  }
  return false;
}

void EventServer::accept_pending() {
  while (const auto fd = listener_.accept_fd()) {
    if (clients_.size() >= options_.max_connections) {
      // Fail fast: nothing is written, the service never hears about
      // it, the peer reads EOF. A queue here would just convert the
      // overload into latency for everyone already connected.
      ::close(*fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      rejected_metric_.add();
      util::log_warn() << "saim_serve: rejected connection (cap "
                       << options_.max_connections << " reached)";
      continue;
    }
    auto client = std::make_unique<Client>();
    client->conn = net::Connection(*fd);
    client->awaiting_auth = !options_.auth_token.empty();
    if (!client->awaiting_auth) {
      client->core =
          std::make_unique<StreamSessionCore>(service_, options_.session);
    }
    client->accepted_at = std::chrono::steady_clock::now();
    client->last_activity = client->accepted_at;
    const int cfd = client->conn.fd();
    clients_.emplace(cfd, std::move(client));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    accepted_metric_.add();
    open_metric_.set(static_cast<double>(clients_.size()));
    loop_.add_fd(cfd, net::EventLoop::kRead,
                 [this, cfd](std::uint32_t ready) {
                   on_client_event(cfd, ready);
                 });
  }
}

void EventServer::on_client_event(int fd, std::uint32_t ready) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client& client = *it->second;
  if (ready & net::EventLoop::kWrite) client.conn.pump_writes();
  if (ready & (net::EventLoop::kRead | net::EventLoop::kError)) {
    read_client(client);
  }
  update_client(client);
}

void EventServer::read_client(Client& client) {
  auto lines = client.conn.read_lines();
  if (client.input_closed) return;  // intake over; reads only detect EOF
  if (!lines.empty()) {
    client.last_activity = std::chrono::steady_clock::now();
    for (auto& line : lines) client.pending_lines.push_back(std::move(line));
  }
  if (client.awaiting_auth &&
      client.conn.inbound_partial_bytes() > kMaxAuthLineBytes) {
    util::log_warn() << "saim_serve: closed unauthenticated connection";
    client.kill = true;
    return;
  }
  process_pending_lines(client);
}

void EventServer::process_pending_lines(Client& client) {
  if (client.input_closed) {
    client.pending_lines.clear();
    return;
  }
  while (!client.pending_lines.empty() && !client.kill &&
         client.conn.outbound_bytes() <= options_.outbound_limit_bytes) {
    const std::string line = std::move(client.pending_lines.front());
    client.pending_lines.pop_front();
    if (client.awaiting_auth) {
      if (line.size() > kMaxAuthLineBytes ||
          !auth_line_ok(line, options_.auth_token)) {
        // Same wording and fate as the threaded path: closed before any
        // job line reaches the parser, the service, or the filesystem.
        util::log_warn() << "saim_serve: closed unauthenticated connection";
        client.kill = true;
        return;
      }
      client.awaiting_auth = false;
      client.core =
          std::make_unique<StreamSessionCore>(service_, options_.session);
      continue;
    }
    std::vector<std::string> replies;
    const bool keep_reading = client.core->on_line(line, replies);
    for (auto& reply : replies) client.conn.send_line(std::move(reply));
    if (!keep_reading) {
      // {"cmd":"shutdown"}: this session's intake is over (its bye
      // barrier drains through the sweep), and the whole server begins
      // the graceful stop.
      client.input_closed = true;
      client.pending_lines.clear();
      client.core->finish_input();
      begin_shutdown();
      return;
    }
  }
  if (client.conn.eof() && client.pending_lines.empty() &&
      !client.input_closed) {
    client.input_closed = true;
    if (client.core) client.core->finish_input();
  }
}

bool EventServer::update_client(Client& client) {
  client.conn.pump_writes();
  if (client.kill || client.conn.broken()) {
    close_client(client);
    return false;
  }
  // Resuming from backpressure: feed the lines parked while the queue
  // was over the limit (this may push it back over — the loop in
  // process_pending_lines stops again, and reading stays paused).
  if (!client.pending_lines.empty() &&
      client.conn.outbound_bytes() <= options_.outbound_limit_bytes / 2) {
    process_pending_lines(client);
    if (client.kill) {
      close_client(client);
      return false;
    }
  }
  const std::size_t outbound = client.conn.outbound_bytes();
  const bool want_pause =
      outbound > options_.outbound_limit_bytes ||
      !client.pending_lines.empty();
  if (want_pause && !client.reading_paused) {
    client.reading_paused = true;
    backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
  } else if (!want_pause && client.reading_paused) {
    client.reading_paused = false;
  }
  const bool session_drained = !client.core || client.core->drained();
  if (client.input_closed && session_drained && outbound == 0) {
    close_client(client);
    return false;
  }
  if (client.conn.eof() && client.awaiting_auth) {
    close_client(client);  // peer gone before the handshake
    return false;
  }
  std::uint32_t interest = 0;
  if (!client.reading_paused && !client.input_closed &&
      !client.conn.eof()) {
    interest |= net::EventLoop::kRead;
  }
  if (outbound > 0) interest |= net::EventLoop::kWrite;
  loop_.set_interest(client.conn.fd(), interest);
  return true;
}

void EventServer::sweep_sessions() {
  std::vector<int> fds;
  fds.reserve(clients_.size());
  for (const auto& [fd, client] : clients_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = clients_.find(fd);
    if (it == clients_.end()) continue;
    Client& client = *it->second;
    if (client.core && client.core->needs_poll()) {
      std::vector<std::string> lines;
      client.core->poll_emittable(lines);
      for (auto& line : lines) client.conn.send_line(std::move(line));
    }
    update_client(client);  // may destroy the client
  }
}

void EventServer::housekeeping() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> expired;
  for (const auto& [fd, client_ptr] : clients_) {
    const Client& client = *client_ptr;
    if (client.awaiting_auth && options_.auth_timeout_ms > 0 &&
        now - client.accepted_at >
            std::chrono::milliseconds(options_.auth_timeout_ms)) {
      util::log_warn()
          << "saim_serve: dropped connection (no auth within "
          << options_.auth_timeout_ms << " ms)";
      expired.push_back(fd);
      continue;
    }
    if (options_.idle_timeout_ms > 0 && !client.input_closed &&
        client.conn.outbound_bytes() == 0 &&
        (!client.core || client.core->unemitted_count() == 0) &&
        now - client.last_activity >
            std::chrono::milliseconds(options_.idle_timeout_ms)) {
      util::log_warn() << "saim_serve: dropped idle connection ("
                       << options_.idle_timeout_ms << " ms)";
      expired.push_back(fd);
    }
  }
  for (const int fd : expired) {
    const auto it = clients_.find(fd);
    if (it == clients_.end()) continue;
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    timed_out_metric_.add();
    close_client(*it->second);
  }
  if (stopping_ && now >= grace_deadline_ && !clients_.empty()) {
    // Grace over: whatever is still here was blocked on a client that
    // stopped reading — its remaining output is forfeit (that client
    // was not consuming it anyway), same policy as the threaded server.
    std::vector<int> fds;
    fds.reserve(clients_.size());
    for (const auto& [fd, client] : clients_) fds.push_back(fd);
    for (const int fd : fds) {
      const auto it = clients_.find(fd);
      if (it != clients_.end()) close_client(*it->second);
    }
  }
  if (stopping_ && clients_.empty()) done_ = true;
}

void EventServer::begin_shutdown() {
  if (stopping_) return;
  stopping_ = true;
  grace_deadline_ =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  loop_.remove_fd(listener_.fd());
  listener_.close();
  // Stop intake everywhere (the event-loop twin of the threaded
  // server's shutdown(SHUT_RD) on every parked session): accepted work
  // still drains out over the intact write side.
  for (const auto& [fd, client_ptr] : clients_) {
    Client& client = *client_ptr;
    if (client.input_closed) continue;
    client.input_closed = true;
    client.pending_lines.clear();
    if (client.core) {
      client.core->finish_input();
    } else {
      client.kill = true;  // unauthenticated: nothing to drain
    }
  }
}

void EventServer::close_client(Client& client) {
  if (client.core && client.core->result().any_error) any_error_ = true;
  const int fd = client.conn.fd();
  loop_.remove_fd(fd);
  clients_.erase(fd);  // destroys `client`; do not touch it past here
  open_metric_.set(static_cast<double>(clients_.size()));
}

}  // namespace saim::service
