// Job-line parsing for the JSONL serving protocol (docs/PROTOCOL.md),
// shared by every process that speaks it: tools/saim_serve parses lines it
// will submit to its own SolveService, and tools/saim_shard parses the
// same lines to validate them and compute the problem fingerprint it
// routes by — so a line rejected by the front door is rejected with the
// exact error text the shard would have produced.
//
// Also home to the control-line dialect ({"cmd":"ping"|"drain"}): control
// lines are answered by the serving layer itself, never become jobs, and
// never consume completion-order sequence numbers.
#pragma once

#include <optional>
#include <string>

#include "service/solve_service.hpp"
#include "util/jsonl.hpp"

namespace saim::service {

struct ParsedJob {
  /// Ready-to-submit request; tag is the line's "id" ("" when absent).
  SolveRequest request;
  /// Instance display name (generated spec or file-derived).
  std::string instance;
};

/// Validates a job object's shape without building its instance: unknown
/// keys, scalar field types/ranges, priority, and that an instance source
/// is named (gen, or path with a resolvable type). Throws
/// std::runtime_error like parse_job; building the source can still fail
/// later (bad gen spec, unreadable file). Lets a router re-check instance
/// twins cheaply when the expensive instance build is memoized.
void validate_job(const util::JsonValue& job);

/// Parses one JSONL job object into a ready-to-submit request
/// (validate_job + instance build + extraction). `warm_default` is the
/// --warm-start flag; a per-job "warm_start" field overrides it either
/// way. Throws std::runtime_error on unknown fields, bad values, or a
/// missing/unloadable instance source.
ParsedJob parse_job(const util::JsonValue& job, bool warm_default);

/// Convenience: parse_json + parse_job (also throws on malformed JSON).
ParsedJob parse_job_line(const std::string& line, bool warm_default);

/// Control-line detection. Returns the command ("ping", "drain",
/// "shutdown", "export_warm", "import_warm" or "reshard") when `line` is
/// a control object, std::nullopt when it is a plain job. Throws
/// std::runtime_error on an unknown command or stray keys (control lines
/// accept "cmd" and "id", plus "warm" on import_warm and "shards" on
/// reshard). Which layer answers which command is the serving layer's
/// business: saim_serve handles everything but reshard, the saim_shard
/// front door handles reshard/shutdown itself and forwards nothing.
std::optional<std::string> control_cmd(const util::JsonValue& line);

/// Stable key naming the job's instance source before any instance is
/// built: "gen:<spec>" for generated instances, "file:<type>|<format>|
/// <path>" (with the same type/format defaulting parse_job applies) for
/// file-backed ones. Jobs with equal keys build content-identical
/// problems, so a router can memoize the problem fingerprint per key.
/// Empty when the line names no source (parse_job would reject it).
std::string instance_source_key(const util::JsonValue& job);

}  // namespace saim::service
