// ProcessChild — a supervised line-oriented coprocess over pipes.
//
// The sharding front door (tools/saim_shard, service/shard_router) runs
// each local shard as a `saim_serve --stream` child process and speaks
// the JSONL protocol to it through this wrapper: fork/exec with
// stdin/stdout piped back to the parent, both parent ends non-blocking so
// one thread can multiplex many children without ever deadlocking on a
// full pipe (outbound lines buffer in user space until the child drains
// them; inbound bytes accumulate until a full line is available). It is
// the pipe implementation of net::ShardEndpoint — the Supervisor and the
// shard pump drive it and net::SocketChild (TCP) through one interface.
//
// Lifecycle: the child is alive until running() observes its exit via
// waitpid(WNOHANG). A clean shutdown is shutdown_input() (close stdin) —
// saim_serve answers EOF by emitting every remaining result and exiting —
// followed by reading until eof(). The destructor is the crash path: it
// SIGKILLs and reaps whatever is still alive, so a throwing caller never
// leaks a process. SIGPIPE is ignored process-wide on first use (writes
// to a dead child report EPIPE instead of killing the router).
//
// The child starts in its own process group with SIGINT/SIGTERM/SIGPIPE
// restored to their defaults: a Ctrl-C aimed at the front door must not
// also mow down the shard fleet the front door is about to drain, and a
// parent that ignores signals must not leak that disposition through
// exec into every shard.
#pragma once

#include <signal.h>
#include <sys/types.h>

#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/shard_endpoint.hpp"

namespace saim::service {

class ProcessChild : public net::ShardEndpoint {
 public:
  /// Spawns argv[0] with arguments argv[1..] (execvp, so bare names
  /// resolve through PATH; stderr is inherited). Throws std::runtime_error
  /// when pipe/fork fail. An unexecutable path surfaces as the child
  /// exiting 127 with immediate EOF, not as a constructor failure.
  explicit ProcessChild(std::vector<std::string> argv);
  ~ProcessChild() override;

  ProcessChild(const ProcessChild&) = delete;
  ProcessChild& operator=(const ProcessChild&) = delete;

  /// Queues `line` (plus the trailing newline) for the child's stdin.
  void send_line(const std::string& line) override;

  /// Flushes as much queued output as the pipe accepts right now.
  /// Returns false once the pipe is broken (child gone); queued bytes
  /// are then discarded.
  bool pump_writes() override;

  /// Non-blocking read: drains whatever the child has written and returns
  /// the complete lines (without newlines). Sets eof() when the child
  /// closed its end; a trailing half-line at EOF is dropped.
  std::vector<std::string> read_lines() override;

  /// Closes the child's stdin — the graceful drain signal.
  void shutdown_input() override { close_stdin(); }
  void close_stdin();

  /// Sends `signal` (e.g. SIGKILL) if the child has not been reaped yet.
  void kill(int signal);
  void terminate() override { kill(SIGKILL); }

  /// Reaps the child via waitpid(WNOHANG) if it already exited; repeated
  /// supervisor respawns must not accumulate zombies.
  void reap() noexcept override { (void)running(); }

  /// Polls waitpid(WNOHANG); false once the child exited and was reaped.
  [[nodiscard]] bool running();

  /// True once the child closed its stdout (all output received).
  [[nodiscard]] bool eof() const noexcept override { return eof_; }

  /// Raw waitpid status; meaningful once running() returned false.
  [[nodiscard]] int exit_status() const noexcept { return status_; }

  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  /// The fd to poll() for readability.
  [[nodiscard]] int read_fd() const noexcept override { return out_fd_; }
  /// Bytes queued but not yet accepted by the pipe.
  [[nodiscard]] std::size_t outbound_bytes() const noexcept override {
    return outbuf_.size();
  }
  [[nodiscard]] std::string describe() const override {
    return "pid " + std::to_string(pid_);
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;   ///< parent write end -> child stdin
  int out_fd_ = -1;  ///< parent read end  <- child stdout
  std::string outbuf_;
  net::LineFramer framer_;
  bool write_broken_ = false;
  bool eof_ = false;
  bool reaped_ = false;
  int status_ = 0;
};

}  // namespace saim::service
