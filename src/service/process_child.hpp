// ProcessChild — a supervised line-oriented coprocess over pipes.
//
// The sharding front door (tools/saim_shard, service/shard_router) runs
// each shard as a `saim_serve --stream` child process and speaks the
// JSONL protocol to it through this wrapper: fork/exec with stdin/stdout
// piped back to the parent, both parent ends non-blocking so one thread
// can multiplex many children without ever deadlocking on a full pipe
// (outbound lines buffer in user space until the child drains them;
// inbound bytes accumulate until a full line is available).
//
// Lifecycle: the child is alive until running() observes its exit via
// waitpid(WNOHANG). A clean shutdown is close_stdin() — saim_serve
// answers EOF by emitting every remaining result and exiting — followed
// by reading until eof(). The destructor is the crash path: it SIGKILLs
// and reaps whatever is still alive, so a throwing caller never leaks a
// process. SIGPIPE is ignored process-wide on first use (writes to a dead
// child report EPIPE instead of killing the router).
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace saim::service {

class ProcessChild {
 public:
  /// Spawns argv[0] with arguments argv[1..] (execvp, so bare names
  /// resolve through PATH; stderr is inherited). Throws std::runtime_error
  /// when pipe/fork fail. An unexecutable path surfaces as the child
  /// exiting 127 with immediate EOF, not as a constructor failure.
  explicit ProcessChild(std::vector<std::string> argv);
  ~ProcessChild();

  ProcessChild(const ProcessChild&) = delete;
  ProcessChild& operator=(const ProcessChild&) = delete;

  /// Queues `line` (plus the trailing newline) for the child's stdin.
  void send_line(const std::string& line);

  /// Flushes as much queued output as the pipe accepts right now.
  /// Returns false once the pipe is broken (child gone); queued bytes
  /// are then discarded.
  bool pump_writes();

  /// Non-blocking read: drains whatever the child has written and returns
  /// the complete lines (without newlines). Sets eof() when the child
  /// closed its end; a trailing half-line at EOF is dropped.
  std::vector<std::string> read_lines();

  /// Closes the child's stdin — the graceful drain signal.
  void close_stdin();

  /// Sends `signal` (e.g. SIGKILL) if the child has not been reaped yet.
  void kill(int signal);

  /// Polls waitpid(WNOHANG); false once the child exited and was reaped.
  [[nodiscard]] bool running();

  /// True once the child closed its stdout (all output received).
  [[nodiscard]] bool eof() const noexcept { return eof_; }

  /// Raw waitpid status; meaningful once running() returned false.
  [[nodiscard]] int exit_status() const noexcept { return status_; }

  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  /// The fd to poll() for readability.
  [[nodiscard]] int read_fd() const noexcept { return out_fd_; }
  /// Bytes queued but not yet accepted by the pipe.
  [[nodiscard]] std::size_t outbound_bytes() const noexcept {
    return outbuf_.size();
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;   ///< parent write end -> child stdin
  int out_fd_ = -1;  ///< parent read end  <- child stdout
  std::string outbuf_;
  std::string inbuf_;
  bool write_broken_ = false;
  bool eof_ = false;
  bool reaped_ = false;
  int status_ = 0;
};

}  // namespace saim::service
