#include "service/result_cache.hpp"

namespace saim::service {

std::shared_ptr<const core::SolveResult> ResultCache::get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->second;
}

void ResultCache::put(std::uint64_t key,
                      std::shared_ptr<const core::SolveResult> value) {
  if (capacity_ == 0 || !value) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  ++stats_.insertions;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace saim::service
