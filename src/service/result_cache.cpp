#include "service/result_cache.hpp"

#include <algorithm>

namespace saim::service {

std::shared_ptr<const core::SolveResult> ResultCache::get(std::uint64_t key) {
  util::MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->value;
}

void ResultCache::evict_one_locked() {
  // Cost-weighted LRU: among the tail (least-recently-used) entries, drop
  // the one that is cheapest to recompute (total_sweeps). The window is
  // capped at both kEvictionWindow and HALF the list, so the
  // most-recently-used half keeps plain-LRU protection — a hot cheap
  // entry bumped by get() can never be sacrificed to keep cold expensive
  // ones. Strictly-less comparison walking back-to-front keeps the older
  // entry on ties, so with uniform costs this degenerates to plain LRU.
  const std::size_t window =
      std::min(kEvictionWindow, std::max<std::size_t>(1, lru_.size() / 2));
  auto victim = std::prev(lru_.end());
  std::size_t victim_cost = victim->value->total_sweeps;
  auto it = victim;
  for (std::size_t scanned = 1; scanned < window; ++scanned) {
    --it;
    if (it->value->total_sweeps < victim_cost) {
      victim = it;
      victim_cost = it->value->total_sweeps;
    }
  }
  index_.erase(victim->key);
  lru_.erase(victim);
  ++stats_.evictions;
}

void ResultCache::put(std::uint64_t key,
                      std::shared_ptr<const core::SolveResult> value) {
  if (capacity_ == 0 || !value) return;
  util::MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) evict_one_locked();
  lru_.push_front(Entry{key, std::move(value)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
}

void ResultCache::put_warm(std::uint64_t problem_fp,
                           const ising::Bits& config, double cost) {
  if (warm_capacity_ == 0 || config.empty()) return;
  util::MutexLock lock(mutex_);
  auto it = warm_index_.find(problem_fp);
  if (it == warm_index_.end()) {
    if (warm_lru_.size() >= warm_capacity_) {
      // Plain LRU for pools: a problem nobody solves anymore has no
      // claim on pool space regardless of how good its samples were.
      warm_index_.erase(warm_lru_.back().key);
      warm_lru_.pop_back();
    }
    warm_lru_.push_front(WarmEntry{problem_fp, {}});
    it = warm_index_.emplace(problem_fp, warm_lru_.begin()).first;
  } else {
    warm_lru_.splice(warm_lru_.begin(), warm_lru_, it->second);
  }

  auto& samples = it->second->samples;
  for (const auto& [pooled_cost, pooled] : samples) {
    if (pooled == config) return;  // already pooled
  }
  const auto pos = std::upper_bound(
      samples.begin(), samples.end(), cost,
      [](double c, const auto& s) { return c < s.first; });
  if (pos == samples.end() && samples.size() >= kWarmSamplesPerProblem) {
    return;  // worse than everything pooled
  }
  samples.emplace(pos, cost, config);
  if (samples.size() > kWarmSamplesPerProblem) samples.pop_back();
  ++stats_.warm_inserts;
}

std::vector<ising::Bits> ResultCache::warm_samples(std::uint64_t problem_fp) {
  if (warm_capacity_ == 0) return {};
  util::MutexLock lock(mutex_);
  const auto it = warm_index_.find(problem_fp);
  if (it == warm_index_.end() || it->second->samples.empty()) {
    ++stats_.warm_misses;
    return {};
  }
  ++stats_.warm_hits;
  warm_lru_.splice(warm_lru_.begin(), warm_lru_, it->second);
  std::vector<ising::Bits> out;
  out.reserve(it->second->samples.size());
  for (const auto& [cost, config] : it->second->samples) {
    out.push_back(config);
  }
  return out;
}

std::vector<ResultCache::WarmSnapshot> ResultCache::export_warm() const {
  util::MutexLock lock(mutex_);
  std::vector<WarmSnapshot> out;
  out.reserve(warm_lru_.size());
  for (const auto& entry : warm_lru_) {
    if (entry.samples.empty()) continue;
    out.push_back(WarmSnapshot{entry.key, entry.samples});
  }
  return out;
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  util::MutexLock lock(mutex_);
  return lru_.size();
}

std::size_t ResultCache::warm_pool_size() const {
  util::MutexLock lock(mutex_);
  return warm_lru_.size();
}

void ResultCache::clear() {
  util::MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  warm_lru_.clear();
  warm_index_.clear();
}

}  // namespace saim::service
