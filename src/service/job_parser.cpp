#include "service/job_parser.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>

#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "service/request_builders.hpp"

namespace saim::service {

namespace {

// Every key a job line may carry. A misspelled key ("iteration", "sweep")
// would otherwise silently run the job with defaults; hand-written job
// files deserve a hard error. scripts/check_protocol_docs.sh greps this
// block, so docs/PROTOCOL.md must document every name listed here.
const std::set<std::string>& known_keys() {
  static const std::set<std::string> kKnownKeys = {
      "id",         "type",      "path",          "format",
      "gen",        "backend",   "sweeps",        "beta_max",
      "iterations", "eta",       "penalty_alpha", "seed",
      "replicas",   "priority",  "deadline_ms",   "cache",
      "warm_start", "trace"};
  return kKnownKeys;
}

// Keys a control line may carry (gate-checked like kKnownKeys above).
// "warm" rides only on import_warm and "shards" only on reshard; the
// per-command whitelists in control_cmd() enforce that split.
const std::set<std::string>& control_keys() {
  static const std::set<std::string> kControlKeys = {"cmd", "id", "warm",
                                                     "shards"};
  return kControlKeys;
}

/// Extra keys (beyond cmd/id) each control command accepts.
const std::set<std::string>& control_extra_keys(const std::string& cmd) {
  static const std::set<std::string> kNone;
  static const std::set<std::string> kImportWarm = {"warm"};
  static const std::set<std::string> kReshard = {"shards"};
  if (cmd == "import_warm") return kImportWarm;
  if (cmd == "reshard") return kReshard;
  return kNone;
}

/// "qkp:100-25-1" -> generated paper instance. Throws on a malformed spec.
SolveRequest request_from_gen(const std::string& spec,
                              std::string* instance_name) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::size_t a = 0, b = 0, c = 0;
  if (colon == std::string::npos ||
      std::sscanf(spec.c_str() + colon + 1, "%zu-%zu-%zu", &a, &b, &c) != 3) {
    throw std::runtime_error("bad gen spec '" + spec +
                             "' (want qkp:N-density-k or mkp:N-M-k)");
  }
  SolveRequest request;
  if (kind == "qkp") {
    request = request_for(std::make_shared<problems::QkpInstance>(
        problems::make_paper_qkp(a, static_cast<int>(b),
                                 static_cast<int>(c))));
  } else if (kind == "mkp") {
    request = request_for(std::make_shared<problems::MkpInstance>(
        problems::make_paper_mkp(a, b, static_cast<int>(c))));
  } else {
    throw std::runtime_error("bad gen spec '" + spec + "': unknown type '" +
                             kind + "'");
  }
  *instance_name = request.tag;
  return request;
}

/// Loads the instance named by path/format and lowers it to a request.
SolveRequest request_from_file(const std::string& type,
                               const std::string& path,
                               const std::string& format,
                               std::string* instance_name) {
  SolveRequest request;
  if (type == "qkp") {
    request = request_for(std::make_shared<problems::QkpInstance>(
        format == "native" ? problems::load_qkp(path)
                           : problems::load_qkp_billionnet(path)));
  } else if (type == "mkp") {
    request = request_for(std::make_shared<problems::MkpInstance>(
        format == "native" ? problems::load_mkp(path)
                           : problems::load_mkp_orlib(path)));
  } else {
    throw std::runtime_error("job needs \"type\": \"qkp\" or \"mkp\"");
  }
  *instance_name = request.tag;
  return request;
}

Priority parse_priority(const std::string& p) {
  if (p == "low") return Priority::kLow;
  if (p == "high") return Priority::kHigh;
  if (p.empty() || p == "normal") return Priority::kNormal;
  throw std::runtime_error("bad priority '" + p +
                           "' (want low, normal or high)");
}

/// The file source's (type, format) after the defaulting parse_job
/// applies: type inferred from format, format defaulted by type.
std::pair<std::string, std::string> file_type_format(
    const util::JsonValue& job) {
  auto str = [&](const char* key) {
    const auto* v = job.find(key);
    return v ? v->as_string() : std::string{};
  };
  std::string type = str("type");
  std::string format = str("format");
  if (type.empty()) {  // infer from format
    if (format == "billionnet") type = "qkp";
    if (format == "orlib") type = "mkp";
  }
  if (format.empty()) format = type == "mkp" ? "orlib" : "billionnet";
  return {type, format};
}

/// Borrowed view of a string field ("" when absent or not a string) —
/// the parse path reads several of these per job line, so no copies.
const std::string& field_string(const util::JsonValue& job, const char* key) {
  static const std::string kEmpty;
  const auto* v = job.find(key);
  return v ? v->as_string() : kEmpty;
}

double require_number(const util::JsonValue& job, const char* key,
                      double fallback) {
  const auto* v = job.find(key);
  if (v && !v->is_number()) {
    throw std::runtime_error(std::string("field \"") + key +
                             "\" must be a number");
  }
  return v ? v->as_double(fallback) : fallback;
}

// Counts must be nonnegative integers: a raw double->size_t cast of -1
// or 1e300 is UB and would silently produce a near-endless job.
std::uint64_t require_count(const util::JsonValue& job, const char* key,
                            std::uint64_t fallback) {
  const auto* v = job.find(key);
  if (!v) return fallback;
  if (!v->is_number()) {
    throw std::runtime_error(std::string("field \"") + key +
                             "\" must be a number");
  }
  const double d = v->as_double();
  if (!(d >= 0.0) || d > 9007199254740992.0 /* 2^53 */ ||
      d != std::floor(d)) {
    throw std::runtime_error(std::string("field \"") + key +
                             "\" must be a nonnegative integer");
  }
  return static_cast<std::uint64_t>(d);
}

}  // namespace

void validate_job(const util::JsonValue& job) {
  if (!job.is_object()) throw std::runtime_error("job line is not an object");

  for (const auto& [key, value] : job.object()) {
    if (!known_keys().contains(key)) {
      throw std::runtime_error("unknown job field \"" + key + "\"");
    }
  }
  require_count(job, "sweeps", 0);
  require_count(job, "iterations", 0);
  require_count(job, "seed", 0);
  require_count(job, "replicas", 0);
  require_count(job, "deadline_ms", 0);
  require_number(job, "beta_max", 0.0);
  require_number(job, "eta", 0.0);
  require_number(job, "penalty_alpha", 0.0);
  parse_priority(field_string(job, "priority"));

  if (!job.find("gen")) {
    if (!job.find("path")) {
      throw std::runtime_error("job needs either \"gen\" or \"path\"");
    }
    const auto [type, format] = file_type_format(job);
    if (type != "qkp" && type != "mkp") {
      throw std::runtime_error("job needs \"type\": \"qkp\" or \"mkp\"");
    }
  }
}

ParsedJob parse_job(const util::JsonValue& job, bool warm_default) {
  validate_job(job);

  ParsedJob parsed;
  SolveRequest& request = parsed.request;
  if (const auto* gen = job.find("gen")) {
    request = request_from_gen(gen->as_string(), &parsed.instance);
  } else {
    const auto [type, format] = file_type_format(job);
    request = request_from_file(type, job.find("path")->as_string(), format,
                                &parsed.instance);
  }

  const std::string& backend = field_string(job, "backend");
  request.backend.name = backend.empty() ? "pbit" : backend;
  request.backend.sweeps =
      static_cast<std::size_t>(require_count(job, "sweeps", 1000));
  request.backend.beta_max = require_number(job, "beta_max", 10.0);

  request.options.iterations =
      static_cast<std::size_t>(require_count(job, "iterations", 2000));
  request.options.eta = require_number(job, "eta", 20.0);
  request.options.penalty_alpha = require_number(job, "penalty_alpha", 2.0);
  request.options.seed = require_count(job, "seed", 1);
  request.options.replicas =
      static_cast<std::size_t>(require_count(job, "replicas", 1));

  request.priority = parse_priority(field_string(job, "priority"));
  request.timeout = std::chrono::milliseconds(
      static_cast<long>(require_count(job, "deadline_ms", 0)));
  if (const auto* cache = job.find("cache")) {
    request.use_cache = cache->as_bool(true);
  }
  request.warm_start = warm_default;
  if (const auto* warm = job.find("warm_start")) {
    request.warm_start = warm->as_bool(warm_default);
  }
  if (const auto* trace = job.find("trace")) {
    request.trace = trace->as_bool(false);
  }
  request.tag = field_string(job, "id");
  return parsed;
}

ParsedJob parse_job_line(const std::string& line, bool warm_default) {
  return parse_job(util::parse_json(line), warm_default);
}

std::optional<std::string> control_cmd(const util::JsonValue& line) {
  if (!line.is_object()) return std::nullopt;
  const auto* cmd = line.find("cmd");
  if (!cmd) return std::nullopt;
  const std::string& name = cmd->as_string();
  static const std::set<std::string> kCommands = {
      "ping",        "drain",   "shutdown", "stats",
      "export_warm", "import_warm", "reshard"};
  if (!kCommands.contains(name)) {
    throw std::runtime_error(
        "unknown control cmd \"" + name +
        "\" (want ping, drain, shutdown, stats, export_warm, import_warm "
        "or reshard)");
  }
  const auto& extras = control_extra_keys(name);
  for (const auto& [key, value] : line.object()) {
    if (key == "cmd" || key == "id" || extras.contains(key)) continue;
    if (control_keys().contains(key)) {
      throw std::runtime_error("control field \"" + key +
                               "\" does not belong on cmd \"" + name + "\"");
    }
    throw std::runtime_error("unknown control field \"" + key + "\"");
  }
  return name;
}

std::string instance_source_key(const util::JsonValue& job) {
  if (!job.is_object()) return {};
  if (const auto* gen = job.find("gen")) {
    return "gen:" + gen->as_string();
  }
  if (const auto* path = job.find("path")) {
    const auto [type, format] = file_type_format(job);
    return "file:" + type + "|" + format + "|" + path->as_string();
  }
  return {};
}

}  // namespace saim::service
