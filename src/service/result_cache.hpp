// LRU cache of completed solve results, keyed by request fingerprint.
//
// Values are shared_ptr<const SolveResult>: a hit hands back the *same*
// object the original computation produced, so cached results are
// bit-identical to the first solve by construction (and tests can assert
// "no recompute" by pointer equality). Only kCompleted results belong here
// — the service never caches partial (cancelled/deadline) solves.
// Thread-safe; all operations are O(1).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/result.hpp"

namespace saim::service {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t lookups = hits + misses;
      return lookups ? static_cast<double>(hits) /
                           static_cast<double>(lookups)
                     : 0.0;
    }
  };

  /// capacity == 0 disables the cache (every lookup misses, puts drop).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result and bumps it to most-recently-used, or
  /// nullptr on miss. Counts toward stats either way.
  std::shared_ptr<const core::SolveResult> get(std::uint64_t key);

  /// Inserts/overwrites, evicting the least-recently-used entry when full.
  void put(std::uint64_t key, std::shared_ptr<const core::SolveResult> value);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  using Entry = std::pair<std::uint64_t, std::shared_ptr<const core::SolveResult>>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace saim::service
