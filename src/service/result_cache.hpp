// LRU cache of completed solve results, keyed by request fingerprint —
// plus the per-problem warm-start pool.
//
// Result cache: values are shared_ptr<const SolveResult>: a hit hands back
// the *same* object the original computation produced, so cached results
// are bit-identical to the first solve by construction (and tests can
// assert "no recompute" by pointer equality). Only kCompleted results
// belong here — the service never caches partial (cancelled/deadline)
// solves. Eviction is cost-weighted LRU: when the cache is full, the tail
// of the recency list — at most kEvictionWindow entries, never more than
// half the list, so recency still protects the hot half — is scanned and
// the entry with the smallest recompute cost (SolveResult::total_sweeps)
// is dropped: a 2-ms solve makes room before a 2-second one, scans stay
// O(1).
//
// Warm-start pool: keyed by *problem* fingerprint (not request — jobs over
// one instance with different seeds/options share it), each entry keeps the
// kWarmSamplesPerProblem best-cost feasible full configurations seen across
// completed jobs. Opt-in jobs (SolveRequest::warm_start) seed their backend
// initial states from here; every completed feasible job deposits back.
// Pool entries are LRU-bounded independently of the result cache.
//
// Thread-safe; all operations are O(1) in the table size.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/result.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace saim::service {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t warm_hits = 0;    ///< warm_samples() with a non-empty pool
    std::uint64_t warm_misses = 0;  ///< warm_samples() with nothing pooled
    std::uint64_t warm_inserts = 0; ///< samples accepted into a pool

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t lookups = hits + misses;
      return lookups ? static_cast<double>(hits) /
                           static_cast<double>(lookups)
                     : 0.0;
    }
  };

  /// Best-cost samples retained per problem fingerprint.
  static constexpr std::size_t kWarmSamplesPerProblem = 4;
  /// Tail entries considered per eviction (cost-weighted LRU).
  static constexpr std::size_t kEvictionWindow = 8;

  /// capacity == 0 disables the result cache (every lookup misses, puts
  /// drop); warm_capacity == 0 likewise disables the warm-start pool.
  explicit ResultCache(std::size_t capacity, std::size_t warm_capacity = 0)
      : capacity_(capacity), warm_capacity_(warm_capacity) {}

  /// Returns the cached result and bumps it to most-recently-used, or
  /// nullptr on miss. Counts toward stats either way.
  std::shared_ptr<const core::SolveResult> get(std::uint64_t key)
      SAIM_EXCLUDES(mutex_);

  /// Inserts/overwrites; when full, evicts the cheapest-to-recompute entry
  /// among the kEvictionWindow least-recently-used ones.
  void put(std::uint64_t key, std::shared_ptr<const core::SolveResult> value)
      SAIM_EXCLUDES(mutex_);

  /// Offers one feasible full configuration to `problem_fp`'s pool. Kept
  /// only while it ranks among the kWarmSamplesPerProblem best costs;
  /// duplicates of an already-pooled configuration are dropped.
  void put_warm(std::uint64_t problem_fp, const ising::Bits& config,
                double cost) SAIM_EXCLUDES(mutex_);

  /// The pooled configurations for `problem_fp`, best cost first (empty
  /// when nothing is pooled). Bumps the pool's recency.
  [[nodiscard]] std::vector<ising::Bits> warm_samples(std::uint64_t problem_fp)
      SAIM_EXCLUDES(mutex_);

  /// One problem's pooled samples, for cross-process warm handoff.
  struct WarmSnapshot {
    std::uint64_t problem_fp = 0;
    /// (cost, config), best cost first — put_warm's retention order.
    std::vector<std::pair<double, ising::Bits>> samples;
  };

  /// Snapshot of the whole warm pool, most recently used problem first.
  /// Recency is NOT bumped (an export is bookkeeping, not demand);
  /// re-import on another process is plain put_warm per sample.
  [[nodiscard]] std::vector<WarmSnapshot> export_warm() const
      SAIM_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const SAIM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const SAIM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t warm_pool_size() const SAIM_EXCLUDES(mutex_);
  void clear() SAIM_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const core::SolveResult> value;
  };
  struct WarmEntry {
    std::uint64_t key = 0;
    /// (cost, config), sorted ascending by cost (best first).
    std::vector<std::pair<double, ising::Bits>> samples;
  };

  void evict_one_locked() SAIM_REQUIRES(mutex_);

  std::size_t capacity_;
  std::size_t warm_capacity_;
  mutable util::Mutex mutex_;
  std::list<Entry> lru_ SAIM_GUARDED_BY(mutex_);  ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
      SAIM_GUARDED_BY(mutex_);
  std::list<WarmEntry> warm_lru_
      SAIM_GUARDED_BY(mutex_);  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<WarmEntry>::iterator> warm_index_
      SAIM_GUARDED_BY(mutex_);
  Stats stats_ SAIM_GUARDED_BY(mutex_);
};

}  // namespace saim::service
