#include "service/shard_router.hpp"

#include <algorithm>
#include <stdexcept>

#include "problems/fingerprint.hpp"
#include "service/job_parser.hpp"
#include "util/jsonl.hpp"

namespace saim::service {

// ------------------------------------------------------------------- ring

HashRing::HashRing(std::size_t vnodes)
    : vnodes_(std::max<std::size_t>(1, vnodes)) {}

void HashRing::add(std::size_t shard) {
  if (!shards_.insert(shard).second) return;
  for (std::size_t v = 0; v < vnodes_; ++v) {
    const std::uint64_t point = problems::Fingerprint()
                                    .mix(std::uint64_t{shard})
                                    .mix(std::uint64_t{v})
                                    .digest();
    // Collisions between different shards' points are 2^-64-rare; keep
    // the first owner so add order cannot silently reassign a key range.
    ring_.emplace(point, shard);
  }
}

void HashRing::remove(std::size_t shard) {
  if (shards_.erase(shard) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == shard ? ring_.erase(it) : std::next(it);
  }
}

bool HashRing::contains(std::size_t shard) const {
  return shards_.contains(shard);
}

std::size_t HashRing::route(std::uint64_t key) const {
  if (ring_.empty()) throw std::runtime_error("no live shards");
  const auto it = ring_.lower_bound(key);
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

std::vector<std::size_t> HashRing::replicas(std::uint64_t key,
                                            std::size_t count) const {
  if (ring_.empty()) throw std::runtime_error("no live shards");
  count = std::max<std::size_t>(1, std::min(count, shards_.size()));
  std::vector<std::size_t> members;
  members.reserve(count);
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();
  // A full lap visits every live shard at least once, so this terminates
  // with exactly `count` distinct members.
  while (members.size() < count) {
    if (std::find(members.begin(), members.end(), it->second) ==
        members.end()) {
      members.push_back(it->second);
    }
    if (++it == ring_.end()) it = ring_.begin();
  }
  return members;
}

// ----------------------------------------------------------------- router

namespace {

/// Instance-source keys memoized per router (see accept_line).
constexpr std::size_t kFingerprintMemoCap = 4096;

/// Routing tokens replace job ids on the wire to the shards: unique, so
/// duplicate client ids cannot collide, and alphanumeric, so the token is
/// byte-identical before and after JSON escaping.
std::string token_for(std::uint64_t ordinal) {
  return "_r" + std::to_string(ordinal);
}

/// Replaces the token in `"id":"<token>"` with the escaped original id.
void restore_id(std::string* line, const std::string& token,
                const std::string& display_id) {
  const std::string needle = "\"id\":\"" + token + "\"";
  const auto pos = line->find(needle);
  if (pos == std::string::npos) return;  // defensive: emit unrestored
  line->replace(pos, needle.size(),
                "\"id\":\"" + util::json_escape(display_id) + "\"");
}

/// The job's priority band for admission-control ranking. The line was
/// already validated, so anything but the known strings is "normal".
int priority_band(const util::JsonValue& job) {
  const auto* priority = job.find("priority");
  if (!priority) return 1;
  const std::string p = priority->as_string();
  if (p == "low") return 0;
  if (p == "high") return 2;
  return 1;
}

/// Rewrites the trailing per-shard `"seq":N` (always the last field on
/// accepted-job lines) to `global_seq`. Returns false when the line has
/// no seq — i.e. the shard rejected it at submission.
bool remap_seq(std::string* line, std::int64_t global_seq) {
  const std::string needle = ",\"seq\":";
  const auto pos = line->rfind(needle);
  if (pos == std::string::npos) return false;
  const std::size_t digits = pos + needle.size();
  std::size_t end = digits;
  while (end < line->size() && line->at(end) >= '0' && line->at(end) <= '9') {
    ++end;
  }
  if (end == digits || end + 1 != line->size() || line->at(end) != '}') {
    return false;  // not the trailing seq field; leave untouched
  }
  line->replace(digits, end - digits, std::to_string(global_seq));
  return true;
}

}  // namespace

ShardRouter::ShardRouter(RouterOptions options)
    : options_(options), ring_(options.vnodes) {
  if (options_.shards == 0) {
    throw std::invalid_argument("ShardRouter: need at least one shard");
  }
  options_.window = std::max<std::size_t>(1, options_.window);
  alive_.assign(options_.shards, true);
  pending_.resize(options_.shards);
  inflight_.resize(options_.shards);
  pong_.assign(options_.shards, false);
  warm_export_.resize(options_.shards);
  stats_export_.resize(options_.shards);
  stats_.routed_per_shard.assign(options_.shards, 0);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    latency_.push_back(std::make_unique<obs::Histogram>());
    ring_.add(s);
  }
}

std::vector<std::string> ShardRouter::accept_line(const std::string& line,
                                                  std::size_t line_no) {
  thread_checker_.assert_current_thread();
  std::vector<std::string> out;
  std::string display_id = "job" + std::to_string(line_no);
  try {
    const util::JsonValue parsed = util::parse_json(line);
    if (const auto* id = parsed.find("id")) {
      if (!id->as_string().empty()) display_id = id->as_string();
    }
    if (const auto cmd = control_cmd(parsed)) {
      if (*cmd == "ping") {
        util::JsonWriter pong;
        pong.field("id", display_id)
            .field("pong", true)
            .field("inflight", static_cast<std::uint64_t>(jobs_.size()));
        out.push_back(pong.str());
        return out;
      }
      if (*cmd == "drain") {
        // drain: certifies every job accepted BEFORE this line.
        Drain drain{next_ordinal_, jobs_.size(), display_id};
        if (drain.remaining == 0) {
          out.push_back(drained_line(drain));
        } else {
          drains_.push_back(std::move(drain));
        }
        return out;
      }
      // shutdown/reshard/export_warm/import_warm are fleet-management
      // commands the front door answers before lines reach the router;
      // one arriving here means no supervisor is in charge of them.
      throw std::runtime_error("control cmd \"" + *cmd +
                               "\" is handled by the fleet supervisor, "
                               "not the router");
    }

    // Routing key: the canonical problem fingerprint. The first line for
    // an instance source builds the instance (validating the whole job
    // with the shard's own parser); twins hit the memo and are re-checked
    // with the cheap field validation only — so every line the router
    // forwards is one the shard would have accepted, and rejected/
    // accepted stats stay truthful.
    const std::string source = instance_source_key(parsed);
    std::uint64_t fingerprint = 0;
    bool twin = false;  // an instance seen before: replicas can cache-hit
    const auto memo = fingerprint_memo_.find(source);
    if (!source.empty() && memo != fingerprint_memo_.end()) {
      validate_job(parsed);
      fingerprint = memo->second;
      twin = true;
    } else {
      const ParsedJob job = parse_job(parsed, /*warm_default=*/false);
      fingerprint = problems::fingerprint(*job.request.problem);
      if (!source.empty()) {
        // The memo is a pure speedup; cap it so a long-lived front door
        // fed ever-new sources (rotating temp paths) cannot leak. A rare
        // full reset just re-derives fingerprints on the next lines.
        if (fingerprint_memo_.size() >= kFingerprintMemoCap) {
          fingerprint_memo_.clear();
        }
        fingerprint_memo_.emplace(source, fingerprint);
      }
    }

    // Admission control: past the global pending bound, someone gets shed
    // with a "delayed"-tagged error — the lowest-priority pending job if
    // the incoming one outranks it, the incoming job otherwise. Shedding
    // happens BEFORE the job is accepted, so a shed incoming job never
    // gets an ordinal or a seq (it was never accepted), while a shed
    // victim keeps its seq: accepted jobs still see the contiguous range.
    const int priority = priority_band(parsed);
    if (options_.max_queue_depth > 0 &&
        total_pending() >= options_.max_queue_depth &&
        !shed_for(priority, &out)) {
      ++stats_.sheds;
      any_error_ = true;
      util::JsonWriter err;
      err.field("id", display_id)
          .field("error", "shed by admission control: " +
                              std::to_string(total_pending()) +
                              " jobs already queued (bound " +
                              std::to_string(options_.max_queue_depth) +
                              "); resubmit when the backlog drains")
          .field("delayed", true);
      out.push_back(err.str());
      return out;
    }

    // Rewrite the id to a unique routing token; everything else in the
    // line is forwarded as parsed.
    Job job;
    job.ordinal = next_ordinal_++;
    job.display_id = std::move(display_id);
    job.fingerprint = fingerprint;
    job.priority = priority;
    job.shard = ring_.route(fingerprint);
    if (twin && options_.replicas > 1 && options_.hot_key_depth > 0 &&
        depth(job.shard) >= options_.hot_key_depth) {
      // Hot-key route: the owner is saturated and this twin is
      // cache-hittable on any replica that warmed its fingerprint; run it
      // on the least-loaded replica when one is strictly less loaded.
      std::size_t best = job.shard;
      for (std::size_t member :
           ring_.replicas(fingerprint, options_.replicas)) {
        if (member != job.shard && depth(member) < depth(best)) best = member;
      }
      if (best != job.shard) {
        job.shard = best;
        ++stats_.replica_hits;
      }
    }
    const std::string token = token_for(job.ordinal);
    util::JsonValue::Object rewritten = parsed.object();
    rewritten["id"] = util::JsonValue(token);
    job.line = util::to_json(util::JsonValue(std::move(rewritten)));

    ++stats_.accepted;
    ++stats_.routed_per_shard[job.shard];
    pending_[job.shard].push_back(token);
    jobs_.emplace(token, std::move(job));
  } catch (const std::exception& e) {
    any_error_ = true;
    ++stats_.rejected;
    util::JsonWriter err;
    err.field("id", display_id).field("error", e.what());
    out.push_back(err.str());
  }
  return out;
}

std::vector<std::string> ShardRouter::take_sendable(std::size_t shard) {
  thread_checker_.assert_current_thread();
  std::vector<std::string> out;
  if (shard >= pending_.size() || !alive_[shard]) return out;
  auto& pending = pending_[shard];
  auto& inflight = inflight_[shard];
  while (!pending.empty() && inflight.size() < options_.window) {
    const std::string token = std::move(pending.front());
    pending.pop_front();
    auto it = jobs_.find(token);
    if (it == jobs_.end()) continue;  // defensive
    Job& job = it->second;
    if (job.hedge_shard == shard && job.shard != shard) {
      // Hedge copy going out: the primary stays in flight elsewhere;
      // stamp the hedge's own clock so a hedge win measures ITS trip.
      job.hedge_inflight = true;
      job.hedge_sent_at = std::chrono::steady_clock::now();
    } else {
      job.inflight = true;
      job.sent_at = std::chrono::steady_clock::now();
    }
    out.push_back(job.line);
    inflight.insert(token);
  }
  return out;
}

std::vector<std::string> ShardRouter::on_child_line(std::size_t shard,
                                                    const std::string& line) {
  thread_checker_.assert_current_thread();
  std::vector<std::string> out;
  util::JsonValue parsed;
  try {
    parsed = util::parse_json(line);
  } catch (const std::exception&) {
    return out;  // a child never emits garbage; drop defensively
  }
  if (!parsed.is_object()) return out;
  if (parsed.find("pong")) {
    if (shard < pong_.size()) pong_[shard] = true;
    return out;
  }
  if (parsed.find("drained")) return out;  // child drain ack: internal
  if (const auto* warm = parsed.find("warm")) {
    // Reply to a Supervisor export_warm probe: stash the snapshot for
    // the warm handoff; never forwarded downstream.
    if (shard < warm_export_.size()) {
      warm_export_[shard] = util::to_json(*warm);
    }
    return out;
  }
  if (const auto* service = parsed.find("service")) {
    // Reply to a Supervisor stats probe: stash the shard's own service
    // snapshot for fleet aggregation; never forwarded downstream.
    if (shard < stats_export_.size()) {
      stats_export_[shard] = util::to_json(*service);
    }
    return out;
  }
  // import_warm acks and shutdown farewells are fleet-internal too.
  if (parsed.find("imported") || parsed.find("bye")) return out;

  const auto* id = parsed.find("id");
  if (!id) return out;
  const auto it = jobs_.find(id->as_string());
  if (it == jobs_.end()) return out;  // unknown token (late duplicate)
  Job job = std::move(it->second);
  const std::string token = id->as_string();
  jobs_.erase(it);
  // Release BOTH copies of a hedged job: the loser is either still
  // pending on the other shard (pulled from its queue here, never sent)
  // or in flight there (its late line will dedupe as an unknown token).
  if (job.shard < inflight_.size()) inflight_[job.shard].erase(token);
  unqueue(job.shard, token);
  if (job.hedge_shard) {
    if (*job.hedge_shard < inflight_.size()) {
      inflight_[*job.hedge_shard].erase(token);
    }
    unqueue(*job.hedge_shard, token);
  }
  const auto now = std::chrono::steady_clock::now();
  const bool from_hedge = job.hedge_shard == shard && job.shard != shard;
  if (from_hedge) {
    ++stats_.hedge_wins;
    if (job.hedge_sent_at != std::chrono::steady_clock::time_point{}) {
      hedge_win_ms_.observe(
          std::chrono::duration<double, std::milli>(now - job.hedge_sent_at)
              .count());
    }
  }
  const auto sent = from_hedge ? job.hedge_sent_at : job.sent_at;
  if (shard < latency_.size() &&
      sent != std::chrono::steady_clock::time_point{}) {
    latency_[shard]->observe(
        std::chrono::duration<double, std::milli>(now - sent).count());
  }

  // Byte-level surgery keeps every solver-produced field bit-identical:
  // restore the client's id, remap the per-shard seq to the global
  // completion order. A line without seq was rejected by the shard at
  // submission and stays unnumbered (docs/PROTOCOL.md).
  std::string rewritten = line;
  restore_id(&rewritten, token, job.display_id);
  if (remap_seq(&rewritten, next_seq_)) ++next_seq_;
  if (parsed.find("error")) any_error_ = true;
  ++stats_.emitted;
  out.push_back(std::move(rewritten));
  finished(job.ordinal, &out);
  return out;
}

std::vector<std::string> ShardRouter::on_child_down(std::size_t shard) {
  thread_checker_.assert_current_thread();
  std::vector<std::string> out;
  if (shard >= alive_.size() || !alive_[shard]) return out;
  alive_[shard] = false;
  ring_.remove(shard);

  // Collect the shard's unanswered jobs — in flight first, then pending —
  // and replay them in original accept order so requeued streams stay
  // close to their submission order.
  std::vector<std::string> tokens(inflight_[shard].begin(),
                                  inflight_[shard].end());
  tokens.insert(tokens.end(), pending_[shard].begin(), pending_[shard].end());
  inflight_[shard].clear();
  pending_[shard].clear();
  std::sort(tokens.begin(), tokens.end(), [&](const auto& a, const auto& b) {
    return jobs_.at(a).ordinal < jobs_.at(b).ordinal;
  });

  for (const std::string& token : tokens) {
    auto it = jobs_.find(token);
    if (it == jobs_.end()) continue;
    {
      Job& hedged = it->second;
      if (hedged.hedge_shard == shard && hedged.shard != shard) {
        // Only the hedge copy died; the primary is still out there on a
        // live shard. Drop the hedge — dispatch_hedges may re-hedge the
        // job onto the post-crash ring.
        hedged.hedge_shard.reset();
        hedged.hedge_inflight = false;
        hedged.hedge_sent_at = {};
        continue;
      }
      if (hedged.shard == shard && hedged.hedge_shard &&
          *hedged.hedge_shard < alive_.size() &&
          alive_[*hedged.hedge_shard]) {
        // The owner died but a hedge copy is already queued or in flight
        // on a live replica: promote it to primary instead of requeueing
        // from scratch — the zero-stall crash rescue.
        hedged.shard = *hedged.hedge_shard;
        hedged.inflight = hedged.hedge_inflight;
        hedged.sent_at = hedged.hedge_sent_at;
        hedged.hedge_shard.reset();
        hedged.hedge_inflight = false;
        hedged.hedge_sent_at = {};
        continue;
      }
    }
    if (ring_.shard_count() == 0) {
      // Nothing left to run it on: the job errors out, but still gets its
      // global seq — it WAS accepted, and downstream consumers count on
      // one numbered line per accepted job.
      Job job = std::move(it->second);
      jobs_.erase(it);
      any_error_ = true;
      ++stats_.orphaned;
      util::JsonWriter err;
      err.field("id", job.display_id)
          .field("error",
                 "shard " + std::to_string(shard) +
                     " exited with the job unfinished and no live shard "
                     "remains")
          .field("shard", static_cast<std::uint64_t>(shard))
          .field("seq", next_seq_++);
      out.push_back(err.str());
      finished(job.ordinal, &out);
    } else {
      Job& job = it->second;
      job.inflight = false;
      job.hedge_shard.reset();
      job.hedge_inflight = false;
      job.hedge_sent_at = {};
      job.shard = ring_.route(job.fingerprint);
      ++stats_.requeued;
      ++stats_.routed_per_shard[job.shard];
      pending_[job.shard].push_back(token);
    }
  }
  return out;
}

void ShardRouter::revive_shard(std::size_t shard) {
  thread_checker_.assert_current_thread();
  if (shard >= alive_.size() || alive_[shard]) return;
  alive_[shard] = true;
  pong_[shard] = false;
  warm_export_[shard].reset();
  stats_export_[shard].reset();
  ring_.add(shard);
}

std::size_t ShardRouter::add_shard() {
  thread_checker_.assert_current_thread();
  const std::size_t shard = alive_.size();
  alive_.push_back(true);
  pending_.emplace_back();
  inflight_.emplace_back();
  pong_.push_back(false);
  warm_export_.emplace_back();
  stats_export_.emplace_back();
  latency_.push_back(std::make_unique<obs::Histogram>());
  stats_.routed_per_shard.push_back(0);
  ring_.add(shard);
  return shard;
}

void ShardRouter::requeue_inflight(std::size_t shard) {
  thread_checker_.assert_current_thread();
  if (shard >= inflight_.size() || inflight_[shard].empty()) return;
  std::vector<std::string> tokens(inflight_[shard].begin(),
                                  inflight_[shard].end());
  inflight_[shard].clear();
  std::sort(tokens.begin(), tokens.end(), [&](const auto& a, const auto& b) {
    return jobs_.at(a).ordinal < jobs_.at(b).ordinal;
  });
  // Replayed jobs precede anything not yet sent: the pending queue keeps
  // the original accept order.
  for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
    auto job = jobs_.find(*it);
    if (job == jobs_.end()) continue;
    job->second.inflight = false;
    ++stats_.requeued;
    pending_[shard].push_front(std::move(*it));
  }
}

std::size_t ShardRouter::dispatch_hedges() {
  thread_checker_.assert_current_thread();
  if (options_.hedge_min_ms <= 0.0 || options_.replicas < 2 ||
      ring_.shard_count() < 2) {
    return 0;
  }
  const auto now = std::chrono::steady_clock::now();
  std::size_t dispatched = 0;
  for (auto& [token, job] : jobs_) {
    if (!job.inflight || job.hedge_shard) continue;
    // Adaptive threshold: this shard's observed round-trip p95, floored
    // by hedge_min_ms so an empty histogram (or a pathologically fast
    // one) cannot trigger a hedge storm.
    double threshold_ms = options_.hedge_min_ms;
    const obs::HistogramSnapshot snap = latency_snapshot(job.shard);
    if (snap.count > 0) {
      threshold_ms = std::max(threshold_ms, snap.quantile(0.95));
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(now - job.sent_at).count();
    if (elapsed_ms < threshold_ms) continue;
    // The hedge target: the first replica that is not the job's own
    // shard. replicas() only walks live shards, so the target can take
    // the copy right now.
    std::optional<std::size_t> target;
    for (std::size_t member :
         ring_.replicas(job.fingerprint, options_.replicas)) {
      if (member != job.shard) {
        target = member;
        break;
      }
    }
    if (!target) continue;  // replica set collapsed to the owner alone
    job.hedge_shard = target;
    job.hedge_inflight = false;
    job.hedge_sent_at = {};
    pending_[*target].push_back(token);
    ++stats_.hedges;
    ++stats_.routed_per_shard[*target];
    ++dispatched;
  }
  return dispatched;
}

bool ShardRouter::take_pong(std::size_t shard) {
  thread_checker_.assert_current_thread();
  if (shard >= pong_.size()) return false;
  const bool seen = pong_[shard];
  pong_[shard] = false;
  return seen;
}

std::optional<std::string> ShardRouter::take_warm_export(std::size_t shard) {
  thread_checker_.assert_current_thread();
  if (shard >= warm_export_.size()) return std::nullopt;
  std::optional<std::string> out;
  warm_export_[shard].swap(out);
  return out;
}

std::optional<std::string> ShardRouter::take_stats_export(std::size_t shard) {
  thread_checker_.assert_current_thread();
  if (shard >= stats_export_.size()) return std::nullopt;
  std::optional<std::string> out;
  stats_export_[shard].swap(out);
  return out;
}

obs::HistogramSnapshot ShardRouter::latency_snapshot(std::size_t shard) const {
  return shard < latency_.size() ? latency_[shard]->snapshot()
                                 : obs::HistogramSnapshot{};
}

bool ShardRouter::alive(std::size_t shard) const {
  return shard < alive_.size() && alive_[shard];
}

std::size_t ShardRouter::pending(std::size_t shard) const {
  return shard < pending_.size() ? pending_[shard].size() : 0;
}

std::size_t ShardRouter::inflight(std::size_t shard) const {
  return shard < inflight_.size() ? inflight_[shard].size() : 0;
}

std::size_t ShardRouter::total_pending() const {
  std::size_t total = 0;
  for (const auto& p : pending_) total += p.size();
  return total;
}

std::size_t ShardRouter::depth(std::size_t shard) const {
  if (shard >= pending_.size()) return 0;
  return pending_[shard].size() + inflight_[shard].size();
}

void ShardRouter::unqueue(std::size_t shard, const std::string& token) {
  if (shard >= pending_.size()) return;
  auto& queue = pending_[shard];
  const auto it = std::find(queue.begin(), queue.end(), token);
  if (it != queue.end()) queue.erase(it);
}

bool ShardRouter::shed_for(int incoming_priority,
                           std::vector<std::string>* out) {
  // Victim: the lowest-priority job still waiting in a pending queue —
  // never one in flight or hedged (those hold window slots and may be
  // answered any moment). Ties break toward the newest ordinal: the jobs
  // that waited longest are shed last.
  const Job* victim = nullptr;
  for (const auto& [token, job] : jobs_) {
    if (job.inflight || job.hedge_shard) continue;
    if (victim == nullptr || job.priority < victim->priority ||
        (job.priority == victim->priority && job.ordinal > victim->ordinal)) {
      victim = &job;
    }
  }
  if (victim == nullptr || incoming_priority <= victim->priority) {
    return false;  // nothing ranks below the incoming job: shed IT
  }
  const std::string token = token_for(victim->ordinal);
  auto it = jobs_.find(token);
  Job job = std::move(it->second);
  jobs_.erase(it);
  unqueue(job.shard, token);
  ++stats_.sheds;
  any_error_ = true;
  // The victim WAS accepted, so like an orphan it keeps its place in the
  // global seq order — downstream consumers still see one numbered line
  // per accepted job, contiguous 0..N-1.
  util::JsonWriter err;
  err.field("id", job.display_id)
      .field("error",
             "shed by admission control: displaced by a higher-priority "
             "job past the queue-depth bound")
      .field("delayed", true)
      .field("seq", next_seq_++);
  out->push_back(err.str());
  finished(job.ordinal, out);
  return true;
}

void ShardRouter::finished(std::uint64_t ordinal,
                           std::vector<std::string>* out) {
  for (auto it = drains_.begin(); it != drains_.end();) {
    if (ordinal < it->before && --it->remaining == 0) {
      out->push_back(drained_line(*it));
      it = drains_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string ShardRouter::drained_line(const Drain& drain) const {
  util::JsonWriter ack;
  ack.field("id", drain.id).field("drained", true);
  return ack.str();
}

}  // namespace saim::service
