#include "service/service_stats.hpp"

#include <utility>

#include "util/jsonl.hpp"

namespace saim::service {

namespace {

/// The per-stage latency histograms a service registers (solve_service
/// constructor) plus the serving layer's emit delay (stream_session).
/// Rendered under these short keys in the "latency" object.
constexpr std::pair<const char*, const char*> kLatencyStages[] = {
    {"queue_ms", "saim_job_queue_ms"},
    {"setup_ms", "saim_job_setup_ms"},
    {"solve_ms", "saim_job_solve_ms"},
    {"total_ms", "saim_job_total_ms"},
    {"emit_ms", "saim_emit_ms"},
};

}  // namespace

std::string latency_quantiles_json(const obs::HistogramSnapshot& snap) {
  util::JsonWriter json;
  json.field("count", snap.count)
      .field("mean_ms", snap.mean())
      .field("p50_ms", snap.quantile(0.50))
      .field("p95_ms", snap.quantile(0.95))
      .field("p99_ms", snap.quantile(0.99));
  return json.str();
}

std::string service_stats_json(const SolveService& service) {
  const SolveService::Stats s = service.stats();

  util::JsonWriter cache;
  cache.field("hits", s.cache.hits)
      .field("misses", s.cache.misses)
      .field("hit_rate", s.cache.hit_rate())
      .field("insertions", s.cache.insertions)
      .field("evictions", s.cache.evictions)
      .field("size", static_cast<std::uint64_t>(service.cache_size()))
      .field("warm_hits", s.cache.warm_hits)
      .field("warm_misses", s.cache.warm_misses)
      .field("warm_inserts", s.cache.warm_inserts)
      .field("warm_pool_size",
             static_cast<std::uint64_t>(service.warm_pool_size()));

  util::JsonWriter latency;
  for (const auto& [key, metric] : kLatencyStages) {
    if (const auto snap = service.metrics().histogram_snapshot(metric)) {
      latency.raw_field(key, latency_quantiles_json(*snap));
    }
  }

  util::JsonWriter json;
  json.field("submitted", s.submitted)
      .field("executed", s.executed)
      .field("completed", s.completed)
      .field("cancelled", s.cancelled)
      .field("deadline_expired", s.deadline_expired)
      .field("errors", s.errors)
      .field("coalesced", s.coalesced)
      .field("batches", s.batches)
      .field("batched_jobs", s.batched_jobs)
      .field("warm_seeded", s.warm_seeded)
      .field("workers", static_cast<std::uint64_t>(service.worker_count()))
      .raw_field("cache", cache.str())
      .raw_field("latency", latency.str());

  // Front-door state, present only when a listen server (event-driven or
  // --threaded) registered its connection metrics — a plain stdin/stdout
  // run has no front door and no "connections" object. Values come from
  // the shared registry, so both server flavours report identically.
  const obs::MetricsRegistry& registry = service.metrics();
  if (const auto accepted =
          registry.counter_value("saim_connections_accepted_total")) {
    util::JsonWriter connections;
    connections
        .field("open",
               static_cast<std::uint64_t>(
                   registry.gauge_value("saim_connections_open").value_or(0)))
        .field("accepted", *accepted)
        .field("rejected",
               registry.counter_value("saim_connections_rejected_total")
                   .value_or(0))
        .field("timed_out",
               registry.counter_value("saim_sessions_timed_out_total")
                   .value_or(0));
    json.raw_field("connections", connections.str());
  }
  return json.str();
}

std::string service_metrics_prometheus(const SolveService& service) {
  const SolveService::Stats s = service.stats();

  obs::PromText text;
  const auto counter = [&](const char* name, std::uint64_t value,
                           const char* help) {
    text.header(name, "counter", help);
    text.series(name, {}, value);
  };
  const auto gauge = [&](const char* name, double value, const char* help) {
    text.header(name, "gauge", help);
    text.series(name, {}, value);
  };

  counter("saim_jobs_submitted_total", s.submitted, "jobs accepted by submit");
  counter("saim_jobs_executed_total", s.executed,
          "solves actually run on a worker");
  counter("saim_jobs_completed_total", s.completed,
          "executed jobs finishing with status completed");
  counter("saim_jobs_cancelled_total", s.cancelled, "jobs cancelled");
  counter("saim_jobs_deadline_expired_total", s.deadline_expired,
          "jobs stopped by their deadline");
  counter("saim_jobs_errors_total", s.errors, "jobs failing with an error");
  counter("saim_jobs_coalesced_total", s.coalesced,
          "submits joined onto an in-flight twin");
  counter("saim_batches_total", s.batches,
          "same-instance batch executions with >= 2 members");
  counter("saim_batched_jobs_total", s.batched_jobs,
          "jobs executed as members of those batches");
  counter("saim_warm_seeded_total", s.warm_seeded,
          "jobs seeded from the warm-start pool");
  counter("saim_cache_hits_total", s.cache.hits, "result cache hits");
  counter("saim_cache_misses_total", s.cache.misses, "result cache misses");
  counter("saim_cache_insertions_total", s.cache.insertions,
          "result cache insertions");
  counter("saim_cache_evictions_total", s.cache.evictions,
          "result cache evictions");
  counter("saim_warm_pool_hits_total", s.cache.warm_hits,
          "warm-pool lookups returning samples");
  counter("saim_warm_pool_misses_total", s.cache.warm_misses,
          "warm-pool lookups finding nothing pooled");
  counter("saim_warm_pool_inserts_total", s.cache.warm_inserts,
          "samples accepted into the warm pool");
  gauge("saim_cache_size", static_cast<double>(service.cache_size()),
        "result cache entries right now");
  gauge("saim_warm_pool_size", static_cast<double>(service.warm_pool_size()),
        "problems tracked by the warm-start pool right now");
  gauge("saim_workers", static_cast<double>(service.worker_count()),
        "solver worker threads");

  // The registry carries the latency histograms (and anything the serving
  // layer registered alongside); its names never collide with the derived
  // series above, so plain concatenation is a well-formed exposition.
  return text.str() + service.metrics().render_prometheus();
}

}  // namespace saim::service
