// Priority job queue for the solve service.
//
// Three strict priority bands with FIFO order inside each band: a kHigh
// job always pops before any kNormal job, and two jobs of equal priority
// pop in submission order. pop() blocks until an item arrives or the queue
// is closed; close() wakes every blocked consumer, and drain() atomically
// removes whatever is still pending so shutdown can fail those jobs
// explicitly instead of leaving their waiters hanging.
//
// Templated on the item type so the ordering logic is testable with plain
// values; the service instantiates it with shared_ptr<JobState>.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace saim::service {

/// Higher pops first; FIFO within a band.
enum class Priority : int { kLow = 0, kNormal = 1, kHigh = 2 };

[[nodiscard]] constexpr const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "unknown";
}

template <typename T>
class JobQueue {
 public:
  static constexpr std::size_t kBands = 3;

  /// Enqueues into the priority band. Returns false (item dropped) once
  /// the queue is closed.
  bool push(T item, Priority priority = Priority::kNormal)
      SAIM_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      if (closed_) return false;
      bands_[band(priority)].push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed; nullopt
  /// means closed-and-empty (consumers should exit).
  std::optional<T> pop() SAIM_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    while (!closed_ && empty_locked()) cv_.wait(lock.native());
    return pop_locked();
  }

  /// Non-blocking pop; nullopt when nothing is pending.
  std::optional<T> try_pop() SAIM_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return pop_locked();
  }

  /// Stops intake and wakes all blocked consumers. Pending items remain
  /// poppable unless drain()ed first.
  void close() SAIM_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Atomically removes and returns up to `max` pending items satisfying
  /// `pred`, highest priority first (FIFO within priority). Non-matching
  /// items keep their positions. This is the batch scheduler's
  /// drain-by-key: a worker that popped a job pulls its queued
  /// same-instance twins into one shared execution (the service's
  /// predicate restricts matches to the popped job's own priority band —
  /// see ServiceOptions::max_batch — this method itself scans all bands).
  template <typename Pred>
  std::vector<T> drain_matching(std::size_t max, Pred&& pred)
      SAIM_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    std::vector<T> out;
    for (std::size_t b = kBands; b-- > 0 && out.size() < max;) {
      for (auto it = bands_[b].begin();
           it != bands_[b].end() && out.size() < max;) {
        if (pred(std::as_const(*it))) {
          out.push_back(std::move(*it));
          it = bands_[b].erase(it);
        } else {
          ++it;
        }
      }
    }
    return out;
  }

  /// Atomically removes and returns every pending item, highest priority
  /// first (FIFO within priority).
  std::vector<T> drain() SAIM_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    std::vector<T> out;
    for (std::size_t b = kBands; b-- > 0;) {
      for (auto& item : bands_[b]) out.push_back(std::move(item));
      bands_[b].clear();
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const SAIM_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    std::size_t total = 0;
    for (const auto& b : bands_) total += b.size();
    return total;
  }

  [[nodiscard]] bool closed() const SAIM_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return closed_;
  }

 private:
  static constexpr std::size_t band(Priority p) noexcept {
    const int v = static_cast<int>(p);
    return static_cast<std::size_t>(v < 0 ? 0 : v >= int(kBands) ? kBands - 1
                                                                 : v);
  }

  [[nodiscard]] bool empty_locked() const SAIM_REQUIRES(mutex_) {
    for (const auto& b : bands_) {
      if (!b.empty()) return false;
    }
    return true;
  }

  std::optional<T> pop_locked() SAIM_REQUIRES(mutex_) {
    for (std::size_t b = kBands; b-- > 0;) {
      if (!bands_[b].empty()) {
        T item = std::move(bands_[b].front());
        bands_[b].pop_front();
        return item;
      }
    }
    return std::nullopt;
  }

  mutable util::Mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<T>, kBands> bands_ SAIM_GUARDED_BY(mutex_);
  bool closed_ SAIM_GUARDED_BY(mutex_) = false;
};

}  // namespace saim::service
