// SolveService — in-process asynchronous SAIM solve service.
//
// The ROADMAP's serving story starts here: instead of blocking on
// SaimSolver::solve, callers submit() SolveRequests and get back a
// JobHandle future. The service owns
//   * a persistent util::ThreadPool of solver workers,
//   * a JobQueue with strict priority bands (FIFO within a band),
//   * a content-keyed LRU ResultCache of completed results, and
//   * an in-flight table that coalesces duplicate requests onto one
//     computation.
//
// Requests share problem instances by shared_ptr (the shared-handle idiom:
// many jobs over one instance, no copies), carry a priority, an optional
// deadline, and a replica count, and are identified by a canonical 64-bit
// fingerprint of (problem contents, backend spec, SaimOptions incl. seed).
// Identical work is never done twice: a finished twin is served from the
// cache (the *same* SolveResult object, bit-identical by construction) and
// a running twin is joined in flight.
//
// Cancellation is cooperative end to end: JobHandle::cancel() (or an
// expired deadline) trips the job's StopToken, which SaimSolver polls per
// outer iteration and the p-bit anneal per sweep chunk, so the partial
// result comes back with Status::kCancelled / kDeadline within one inner
// run. shutdown() drains queued-but-unstarted jobs as kCancelled, lets
// running jobs finish, and joins the workers; the destructor does the same.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/result.hpp"
#include "core/saim_solver.hpp"
#include "problems/constrained_problem.hpp"
#include "service/backend_factory.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "util/parallel.hpp"
#include "util/stop_token.hpp"

namespace saim::service {

struct ServiceOptions {
  /// Solver worker threads; 0 picks hardware_threads().
  std::size_t workers = 0;
  /// ResultCache entries; 0 disables caching entirely.
  std::size_t cache_capacity = 256;
  /// Thread cap for a job's own replica batches (SaimOptions::replicas).
  /// Defaults to 1: with several workers running whole jobs in parallel,
  /// per-job fan-out would only oversubscribe.
  std::size_t backend_batch_threads = 1;
};

struct SolveRequest {
  /// Shared instance handle; many requests may point at one problem.
  std::shared_ptr<const problems::ConstrainedProblem> problem;
  /// Judges samples against the raw instance (empty = the solver's
  /// normalized-equality fallback). NOT part of the fingerprint: it must
  /// be a pure function determined by `problem`'s originating instance.
  core::SampleEvaluator evaluator;
  BackendSpec backend;
  core::SaimOptions options;  ///< includes seed and replica count
  Priority priority = Priority::kNormal;
  /// Wall-clock budget from submission; zero means none.
  std::chrono::milliseconds timeout{0};
  bool use_cache = true;
  /// Echo-through label (job id / instance name); not fingerprinted.
  std::string tag;
};

struct SolveResponse {
  std::shared_ptr<const core::SolveResult> result;
  core::Status status = core::Status::kCompleted;  ///< == result->status
  bool cache_hit = false;
  double wall_ms = 0.0;  ///< solve time; 0 for cache hits
  std::uint64_t fingerprint = 0;
  std::string tag;
  std::string error;  ///< non-empty iff status == kError
};

namespace detail {
struct JobState;
}

/// Future-like handle to a submitted job. Move-only: each handle holds one
/// cancellation vote on the (possibly shared) underlying computation, and
/// dropping a handle without voting withdraws it from the quorum — when
/// the last handle of an unfinished job is dropped, the job is abandoned
/// and cancels itself (keep the handle alive for fire-and-forget warming).
class JobHandle {
 public:
  JobHandle() = default;
  ~JobHandle();
  JobHandle(JobHandle&& other) noexcept;
  JobHandle& operator=(JobHandle&& other) noexcept;
  JobHandle(const JobHandle&) = delete;
  JobHandle& operator=(const JobHandle&) = delete;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until the job finishes (completed, stopped, or failed).
  /// Returns nullptr only on an invalid (default-constructed) handle, as
  /// do wait_for() and try_get().
  std::shared_ptr<const SolveResponse> wait() const;

  /// Blocks up to `timeout`; nullptr if still running.
  std::shared_ptr<const SolveResponse> wait_for(
      std::chrono::milliseconds timeout) const;

  /// Non-blocking; nullptr while the job is still running.
  [[nodiscard]] std::shared_ptr<const SolveResponse> try_get() const;

  /// Requests cooperative cancellation. When several handles share one
  /// coalesced computation, the underlying solve is only stopped once
  /// every handle has cancelled — one impatient caller cannot kill a twin
  /// request's job. Returns true if this call tripped the stop.
  bool cancel();

  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  friend class SolveService;
  explicit JobHandle(std::shared_ptr<detail::JobState> state) noexcept
      : state_(std::move(state)) {}

  /// Withdraws this handle's subscription (see class comment) and resets.
  void release() noexcept;

  std::shared_ptr<detail::JobState> state_;
  bool cancel_voted_ = false;
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions options = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Enqueues a request (or serves it from cache / joins it onto an
  /// in-flight twin). Throws std::invalid_argument on a null problem and
  /// std::runtime_error after shutdown().
  JobHandle submit(SolveRequest request);

  /// Stops intake, completes queued-but-unstarted jobs as kCancelled,
  /// waits for running jobs to finish, joins the workers. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t worker_count() const noexcept;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;   ///< solves actually run on a worker
    std::uint64_t completed = 0;  ///< executed with Status::kCompleted
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t errors = 0;
    std::uint64_t coalesced = 0;  ///< submits joined onto an in-flight twin
    ResultCache::Stats cache;
  };
  [[nodiscard]] Stats stats() const;

  /// Canonical fingerprint of (problem contents, backend spec, options):
  /// the cache/coalescing key. Exposed for tests and tooling.
  [[nodiscard]] static std::uint64_t request_fingerprint(
      const SolveRequest& request);

 private:
  void worker_loop();
  void execute(const std::shared_ptr<detail::JobState>& job);
  void finish(const std::shared_ptr<detail::JobState>& job,
              std::shared_ptr<const SolveResponse> response);

  /// Memoized problems::fingerprint keyed by instance address: a stream of
  /// requests over one shared handle hashes the (possibly large) problem
  /// content once, not once per submit. A weak_ptr per entry detects
  /// address reuse after the instance dies, so stale memo hits are
  /// impossible.
  std::uint64_t problem_fingerprint(
      const std::shared_ptr<const problems::ConstrainedProblem>& problem);

  ServiceOptions options_;
  std::mutex memo_mutex_;
  std::unordered_map<
      const void*,
      std::pair<std::weak_ptr<const problems::ConstrainedProblem>,
                std::uint64_t>>
      problem_fp_memo_;
  ResultCache cache_;
  JobQueue<std::shared_ptr<detail::JobState>> queue_;
  std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, std::weak_ptr<detail::JobState>> inflight_;
  bool accepting_ = true;  ///< guarded by inflight_mutex_

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> coalesced_{0};

  std::once_flag shutdown_once_;
  util::ThreadPool pool_;  ///< last member: workers die before the queues
};

}  // namespace saim::service
