// SolveService — in-process asynchronous SAIM solve service.
//
// The ROADMAP's serving story starts here: instead of blocking on
// SaimSolver::solve, callers submit() SolveRequests and get back a
// JobHandle future. The service owns
//   * a persistent util::ThreadPool of solver workers,
//   * a JobQueue with strict priority bands (FIFO within a band),
//   * a content-keyed LRU ResultCache of completed results (with the
//     per-problem warm-start pool riding along),
//   * an in-flight table that coalesces duplicate requests onto one
//     computation, and
//   * a same-instance batch scheduler: a worker that pops a job drains its
//     queued batch-key twins (same problem fingerprint, backend spec and
//     penalty shaping, up to ServiceOptions::max_batch) and executes them
//     as ONE model build + ONE backend bind via core::solve_batch,
//     demultiplexing per-job results, statuses and deadlines.
//
// Requests share problem instances by shared_ptr (the shared-handle idiom:
// many jobs over one instance, no copies), carry a priority, an optional
// deadline, and a replica count, and are identified by a canonical 64-bit
// fingerprint of (problem contents, backend spec, SaimOptions incl. seed).
// Identical work is never done twice: a finished twin is served from the
// cache (the *same* SolveResult object, bit-identical by construction) and
// a running twin is joined in flight.
//
// Cancellation is cooperative end to end: JobHandle::cancel() (or an
// expired deadline) trips the job's StopToken, which SaimSolver polls per
// outer iteration and the p-bit anneal per sweep chunk, so the partial
// result comes back with Status::kCancelled / kDeadline within one inner
// run. shutdown() drains queued-but-unstarted jobs as kCancelled, lets
// running jobs finish, and joins the workers; the destructor does the same.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/result.hpp"
#include "core/saim_solver.hpp"
#include "obs/metrics.hpp"
#include "problems/constrained_problem.hpp"
#include "service/backend_factory.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "util/mutex.hpp"
#include "util/parallel.hpp"
#include "util/stop_token.hpp"
#include "util/thread_annotations.hpp"

namespace saim::service {

struct ServiceOptions {
  /// Solver worker threads; 0 picks hardware_threads().
  std::size_t workers = 0;
  /// ResultCache entries; 0 disables caching entirely.
  std::size_t cache_capacity = 256;
  /// Thread cap for a job's own replica batches (SaimOptions::replicas).
  /// Defaults to 1: with several workers running whole jobs in parallel,
  /// per-job fan-out would only oversubscribe.
  std::size_t backend_batch_threads = 1;
  /// Same-instance batching: a worker that pops a job also drains up to
  /// max_batch - 1 queued jobs sharing its batch key (problem fingerprint
  /// + backend spec + penalty shaping) and its priority band, and runs
  /// them as ONE model build + ONE backend bind via core::solve_batch,
  /// demultiplexing per-job results, statuses and deadlines. Draining is
  /// idle-aware — it never starves an idle worker of queued work, since
  /// parallel solo execution beats lockstep sharing of one thread — and a
  /// deadline-carrying popped job batches nothing extra (lockstep mates
  /// would dilute the compute rate its time budget was sized for; it can
  /// still ride along in a deadline-free job's batch, where it loses no
  /// queue wait). 0 or 1 disables batching.
  std::size_t max_batch = 8;
  /// Problem fingerprints the warm-start pool may track (each keeping the
  /// ResultCache::kWarmSamplesPerProblem best feasible configurations).
  /// 0 disables the pool — warm_start requests then run cold.
  std::size_t warm_pool_capacity = 64;
};

struct SolveRequest {
  /// Shared instance handle; many requests may point at one problem.
  std::shared_ptr<const problems::ConstrainedProblem> problem;
  /// Judges samples against the raw instance (empty = the solver's
  /// normalized-equality fallback). NOT part of the fingerprint: it must
  /// be a pure function determined by `problem`'s originating instance.
  core::SampleEvaluator evaluator;
  BackendSpec backend;
  core::SaimOptions options;  ///< includes seed and replica count
  Priority priority = Priority::kNormal;
  /// Wall-clock budget from submission; zero means none.
  std::chrono::milliseconds timeout{0};
  bool use_cache = true;
  /// Opt-in cross-job warm start: seed this job's first inner run from the
  /// per-problem pool of best-known feasible samples (and import the
  /// pooled samples as its initial best-so-far). Off by default because a
  /// warm job's result depends on what the pool held when it ran — it is
  /// neither reproducible nor cacheable, so warm jobs bypass the result
  /// cache and in-flight coalescing entirely. The flag IS fingerprinted,
  /// keeping warm and cold twins distinct.
  bool warm_start = false;
  /// Echo-through label (job id / instance name); not fingerprinted.
  std::string tag;
  /// Echo per-stage timing on the result line ("timing" object, see
  /// docs/PROTOCOL.md). Pure observation — NOT fingerprinted, so traced
  /// and untraced twins still coalesce and share cache entries.
  bool trace = false;
};

/// Per-job stage timing (milliseconds), measured along accept ->
/// queue-pop -> batch-form/model-build -> solve-start -> solve-end ->
/// response. All zero for jobs served from the cache (nothing ran) and
/// for jobs cancelled before a worker claimed them.
struct JobTiming {
  double queue_ms = 0.0;  ///< submit -> claimed by a worker
  double setup_ms = 0.0;  ///< claim -> solve start (batch drain + build)
  double solve_ms = 0.0;  ///< solve start -> this job's completion
  double total_ms = 0.0;  ///< submit -> response ready
};

struct SolveResponse {
  std::shared_ptr<const core::SolveResult> result;
  core::Status status = core::Status::kCompleted;  ///< == result->status
  bool cache_hit = false;
  double wall_ms = 0.0;  ///< solve time; 0 for cache hits
  std::uint64_t fingerprint = 0;
  /// Members of the same-instance batch this job executed in (1 = solo).
  /// For batch members, wall_ms measures from batch start to THIS member's
  /// completion — members share the worker, so per-member compute time is
  /// not separable.
  std::size_t batch_size = 1;
  /// True when the job was seeded from the warm-start pool (requested
  /// warm_start AND the pool had samples for its problem).
  bool warm_started = false;
  std::string tag;
  std::string error;  ///< non-empty iff status == kError
  /// Stage latencies for this job (see JobTiming). Always populated;
  /// echoed on the wire only when the request set `trace`.
  JobTiming timing;
  /// When the response became ready (steady clock) — lets the emitter
  /// measure completion-to-emission delay without re-deriving submit
  /// time. Default-constructed (epoch) only for responses built outside
  /// the service.
  std::chrono::steady_clock::time_point finished_at{};
};

namespace detail {
struct JobState;
}

/// Future-like handle to a submitted job. Move-only: each handle holds one
/// cancellation vote on the (possibly shared) underlying computation, and
/// dropping a handle without voting withdraws it from the quorum — when
/// the last handle of an unfinished job is dropped, the job is abandoned
/// and cancels itself (keep the handle alive for fire-and-forget warming).
class JobHandle {
 public:
  JobHandle() = default;
  ~JobHandle();
  JobHandle(JobHandle&& other) noexcept;
  JobHandle& operator=(JobHandle&& other) noexcept;
  JobHandle(const JobHandle&) = delete;
  JobHandle& operator=(const JobHandle&) = delete;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until the job finishes (completed, stopped, or failed).
  /// Returns nullptr only on an invalid (default-constructed) handle, as
  /// do wait_for() and try_get().
  std::shared_ptr<const SolveResponse> wait() const;

  /// Blocks up to `timeout`; nullptr if still running.
  std::shared_ptr<const SolveResponse> wait_for(
      std::chrono::milliseconds timeout) const;

  /// Non-blocking; nullptr while the job is still running.
  [[nodiscard]] std::shared_ptr<const SolveResponse> try_get() const;

  /// Requests cooperative cancellation. When several handles share one
  /// coalesced computation, the underlying solve is only stopped once
  /// every handle has cancelled — one impatient caller cannot kill a twin
  /// request's job. Returns true if this call tripped the stop.
  bool cancel();

  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  friend class SolveService;
  explicit JobHandle(std::shared_ptr<detail::JobState> state) noexcept
      : state_(std::move(state)) {}

  /// Withdraws this handle's subscription (see class comment) and resets.
  void release() noexcept;

  std::shared_ptr<detail::JobState> state_;
  bool cancel_voted_ = false;
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions options = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Enqueues a request (or serves it from cache / joins it onto an
  /// in-flight twin). Throws std::invalid_argument on a null problem and
  /// std::runtime_error after shutdown().
  JobHandle submit(SolveRequest request) SAIM_EXCLUDES(inflight_mutex_);

  /// Stops intake, completes queued-but-unstarted jobs as kCancelled,
  /// waits for running jobs to finish, joins the workers. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t worker_count() const noexcept;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;   ///< solves actually run on a worker
    std::uint64_t completed = 0;  ///< executed with Status::kCompleted
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t errors = 0;
    std::uint64_t coalesced = 0;  ///< submits joined onto an in-flight twin
    std::uint64_t batches = 0;       ///< batch executions with >= 2 members
    std::uint64_t batched_jobs = 0;  ///< jobs executed as members of those
    std::uint64_t warm_seeded = 0;   ///< jobs seeded from the warm pool
    ResultCache::Stats cache;
  };
  [[nodiscard]] Stats stats() const;

  /// Result-cache entry count right now (stats snapshots for the
  /// {"cmd":"stats"} control line and the metrics endpoint).
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] std::size_t warm_pool_size() const {
    return cache_.warm_pool_size();
  }

  /// This service's metric registry: the per-stage latency histograms
  /// (saim_job_queue_ms, saim_job_setup_ms, saim_job_solve_ms,
  /// saim_job_total_ms — all pre-registered) plus whatever the serving
  /// layer registers alongside (stream_session's saim_emit_ms). Owned
  /// per service, not process-global, so tests running several services
  /// in one process never cross streams.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return registry_;
  }

  /// Canonical fingerprint of (problem contents, backend spec, options):
  /// the cache/coalescing key. Exposed for tests and tooling.
  [[nodiscard]] static std::uint64_t request_fingerprint(
      const SolveRequest& request);

  /// Snapshot of the warm-start pool (per-problem best feasible configs)
  /// for cross-process handoff: the {"cmd":"export_warm"} control line.
  /// Problem fingerprints are stable across processes, so another
  /// service can import_warm_sample() these verbatim.
  [[nodiscard]] std::vector<ResultCache::WarmSnapshot> export_warm_pool()
      const {
    return cache_.export_warm();
  }

  /// Offers one exported configuration to this service's pool (the
  /// {"cmd":"import_warm"} control line). Samples are re-judged at use —
  /// an import can only seed, never corrupt, a warm job.
  void import_warm_sample(std::uint64_t problem_fp, const ising::Bits& bits,
                          double cost) {
    cache_.put_warm(problem_fp, bits, cost);
  }

 private:
  void worker_loop();
  void execute(const std::shared_ptr<detail::JobState>& job);
  /// Runs claimed same-batch-key jobs as one core::solve_batch (one model
  /// build + one bind), finishing each member the moment it completes.
  void execute_batch(
      const std::vector<std::shared_ptr<detail::JobState>>& members);
  /// Stamps the response's timing/finished_at from the job's stage
  /// timestamps, records the latency histograms, then publishes it.
  void finish(const std::shared_ptr<detail::JobState>& job,
              std::shared_ptr<SolveResponse> response)
      SAIM_EXCLUDES(inflight_mutex_);
  void record_outcome(const std::shared_ptr<detail::JobState>& job,
                      const std::shared_ptr<core::SolveResult>& result);

  /// Memoized problems::fingerprint keyed by instance address: a stream of
  /// requests over one shared handle hashes the (possibly large) problem
  /// content once, not once per submit. A weak_ptr per entry detects
  /// address reuse after the instance dies, so stale memo hits are
  /// impossible.
  std::uint64_t problem_fingerprint(
      const std::shared_ptr<const problems::ConstrainedProblem>& problem)
      SAIM_EXCLUDES(memo_mutex_);

  ServiceOptions options_;
  obs::MetricsRegistry registry_;
  /// Pre-registered hot-path handles (see JobTiming for stage bounds).
  obs::Histogram& hist_queue_ms_;
  obs::Histogram& hist_setup_ms_;
  obs::Histogram& hist_solve_ms_;
  obs::Histogram& hist_total_ms_;
  util::Mutex memo_mutex_;
  std::unordered_map<
      const void*,
      std::pair<std::weak_ptr<const problems::ConstrainedProblem>,
                std::uint64_t>>
      problem_fp_memo_ SAIM_GUARDED_BY(memo_mutex_);
  ResultCache cache_;
  JobQueue<std::shared_ptr<detail::JobState>> queue_;
  util::Mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, std::weak_ptr<detail::JobState>> inflight_
      SAIM_GUARDED_BY(inflight_mutex_);
  bool accepting_ SAIM_GUARDED_BY(inflight_mutex_) = true;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_jobs_{0};
  std::atomic<std::uint64_t> warm_seeded_{0};
  /// Workers currently blocked in queue_.pop(); the batch drain leaves at
  /// least this many queued jobs behind (see ServiceOptions::max_batch).
  std::atomic<std::size_t> idle_workers_{0};

  std::once_flag shutdown_once_;
  util::ThreadPool pool_;  ///< last member: workers die before the queues
};

}  // namespace saim::service
