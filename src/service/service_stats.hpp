// Service observability snapshots — the two read-side renderings of one
// SolveService's counters, cache statistics and latency histograms:
//
//   * service_stats_json():      the {"cmd":"stats"} control line's
//                                "service" payload (docs/PROTOCOL.md),
//   * service_metrics_prometheus(): the --metrics endpoint's text
//                                exposition (format 0.0.4).
//
// Both read only atomics and the mutex-guarded registry, so they are safe
// to call from any thread (the metrics server's scrape thread included)
// while workers run. scripts/check_protocol_docs.sh greps this module's
// .cpp for emitted field names — keep docs/PROTOCOL.md in lockstep.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "service/solve_service.hpp"

namespace saim::service {

/// {"count":N,"mean_ms":..,"p50_ms":..,"p95_ms":..,"p99_ms":..} for one
/// latency histogram snapshot. Quantiles are log-bucket interpolations
/// (obs::HistogramSnapshot::quantile); all zero when nothing was observed.
std::string latency_quantiles_json(const obs::HistogramSnapshot& snap);

/// One service's full stats snapshot as a JSON object: lifetime job
/// counters, cache/warm-pool statistics, worker count, and per-stage
/// latency quantiles (queue/setup/solve/total, plus emit when the serving
/// layer has registered it).
std::string service_stats_json(const SolveService& service);

/// Prometheus text exposition for one service: saim_jobs_*_total and
/// saim_cache_* series derived from SolveService::Stats, gauges for the
/// cache/pool/worker sizes, then every histogram in the service registry
/// (saim_job_queue_ms, saim_job_setup_ms, saim_job_solve_ms,
/// saim_job_total_ms, saim_emit_ms, ...).
std::string service_metrics_prometheus(const SolveService& service);

}  // namespace saim::service
