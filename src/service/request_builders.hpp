// Instance -> SolveRequest lowering shared by the serving front-ends
// (tools/saim_serve, bench/service_throughput): build the normalized
// ConstrainedProblem once, wrap the paper's raw-instance evaluator so it
// keeps the instance alive, and hand back a request skeleton — backend,
// options, priority and deadline stay at their defaults for the caller to
// fill. The tag starts as the instance name (callers may overwrite it with
// a job id).
#pragma once

#include <memory>
#include <utility>

#include "core/penalty_method.hpp"
#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "service/solve_service.hpp"

namespace saim::service {

inline SolveRequest request_for(
    std::shared_ptr<const problems::QkpInstance> instance) {
  SolveRequest request;
  auto mapping = problems::qkp_to_problem(*instance);
  request.problem = std::make_shared<problems::ConstrainedProblem>(
      std::move(mapping.problem));
  request.evaluator = [instance,
                       ev = core::make_qkp_evaluator(*instance)](
                          std::span<const std::uint8_t> x) { return ev(x); };
  request.tag = instance->name();
  return request;
}

inline SolveRequest request_for(
    std::shared_ptr<const problems::MkpInstance> instance) {
  SolveRequest request;
  auto mapping = problems::mkp_to_problem(*instance);
  request.problem = std::make_shared<problems::ConstrainedProblem>(
      std::move(mapping.problem));
  request.evaluator = [instance,
                       ev = core::make_mkp_evaluator(*instance)](
                          std::span<const std::uint8_t> x) { return ev(x); };
  request.tag = instance->name();
  return request;
}

}  // namespace saim::service
