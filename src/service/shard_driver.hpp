// One pump cycle over a shard fleet: the small amount of glue between
// ShardRouter (pure routing state) and the transports (net::ShardEndpoint
// — fork/exec pipes or TCP sockets) that bench/service_throughput and the
// failover/transport tests share with the Supervisor — so the code the
// tests kill children under is the code the tools ship.
//
// A cycle: flush each live shard's sendable window into its endpoint,
// poll the endpoints' read fds (up to `poll_ms`), route every complete
// line back through the router, and — only once an endpoint hits EOF, so
// results it managed to flush before dying are never discarded — declare
// it down and let the router requeue its unanswered jobs. Returns every
// line to emit downstream, in order.
//
// This pump never resurrects anything: a dead shard stays dead (PR 4
// semantics). The self-healing layer — respawn with backoff, ring
// rejoin, live resharding, warm handoff — is service/Supervisor, whose
// pump() implements its own copy of this send/poll/read/eof cycle
// (interleaved with slot lifecycle management it needs at each step).
// When you fix a framing/ordering bug in one cycle, check the other;
// the router-level invariants both rely on are pinned transport-
// agnostically by tests/shard_router_test.cpp (this pump) AND
// tests/supervisor_test.cpp (the Supervisor's).
#pragma once

#include <poll.h>

#include <memory>
#include <string>
#include <vector>

#include "net/shard_endpoint.hpp"
#include "service/shard_router.hpp"

namespace saim::service {

inline std::vector<std::string> pump_shards(
    ShardRouter& router,
    std::vector<std::unique_ptr<net::ShardEndpoint>>& shards, int poll_ms) {
  std::vector<std::string> out;

  // Hedge pass: queue a replica copy of any job stuck in flight past its
  // shard's adaptive threshold (no-op unless hedging is configured), so
  // the send step below writes the copies in the same cycle.
  router.dispatch_hedges();

  // Send: fill each live shard's in-flight window, then flush.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s] || !router.alive(s)) continue;
    for (auto& line : router.take_sendable(s)) shards[s]->send_line(line);
    shards[s]->pump_writes();  // a broken transport resolves at EOF below
  }

  // Wait until some shard has output (or poll_ms passes).
  std::vector<pollfd> fds;
  fds.reserve(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s] && router.alive(s) && !shards[s]->eof() &&
        shards[s]->read_fd() >= 0) {
      fds.push_back(pollfd{shards[s]->read_fd(), POLLIN, 0});
    }
  }
  if (!fds.empty() && poll_ms >= 0) {
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_ms);
  }

  // Drain every live shard (reads are non-blocking; polling only spared
  // us a busy loop), then handle deaths after their output is exhausted.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s] || !router.alive(s)) continue;
    for (const auto& line : shards[s]->read_lines()) {
      auto emitted = router.on_child_line(s, line);
      out.insert(out.end(), std::make_move_iterator(emitted.begin()),
                 std::make_move_iterator(emitted.end()));
    }
    if (shards[s]->eof()) {
      shards[s]->reap();  // collect the zombie if already exited
      auto emitted = router.on_child_down(s);
      out.insert(out.end(), std::make_move_iterator(emitted.begin()),
                 std::make_move_iterator(emitted.end()));
    }
  }
  return out;
}

}  // namespace saim::service
