// One pump cycle over a shard fleet: the small amount of glue between
// ShardRouter (pure routing state) and ProcessChild (pipes) that
// tools/saim_shard, bench/service_throughput and the failover tests all
// share — so the code the tests kill children under is the code the tool
// ships.
//
// A cycle: flush each live shard's sendable window into its child, poll
// the children's stdout fds (up to `poll_ms`), route every complete line
// back through the router, and — only once a child's stdout hits EOF, so
// results it managed to flush before dying are never discarded — declare
// it down and let the router requeue its unanswered jobs. Returns every
// line to emit downstream, in order.
#pragma once

#include <poll.h>

#include <memory>
#include <string>
#include <vector>

#include "service/process_child.hpp"
#include "service/shard_router.hpp"

namespace saim::service {

inline std::vector<std::string> pump_shards(
    ShardRouter& router, std::vector<std::unique_ptr<ProcessChild>>& children,
    int poll_ms) {
  std::vector<std::string> out;

  // Send: fill each live shard's in-flight window, then flush.
  for (std::size_t s = 0; s < children.size(); ++s) {
    if (!children[s] || !router.alive(s)) continue;
    for (auto& line : router.take_sendable(s)) children[s]->send_line(line);
    children[s]->pump_writes();  // a broken pipe resolves at EOF below
  }

  // Wait until some child has output (or poll_ms passes).
  std::vector<pollfd> fds;
  fds.reserve(children.size());
  for (std::size_t s = 0; s < children.size(); ++s) {
    if (children[s] && router.alive(s) && !children[s]->eof()) {
      fds.push_back(pollfd{children[s]->read_fd(), POLLIN, 0});
    }
  }
  if (!fds.empty() && poll_ms >= 0) {
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_ms);
  }

  // Drain every live child (reads are non-blocking; polling only spared
  // us a busy loop), then handle deaths after their output is exhausted.
  for (std::size_t s = 0; s < children.size(); ++s) {
    if (!children[s] || !router.alive(s)) continue;
    for (const auto& line : children[s]->read_lines()) {
      auto emitted = router.on_child_line(s, line);
      out.insert(out.end(), std::make_move_iterator(emitted.begin()),
                 std::make_move_iterator(emitted.end()));
    }
    if (children[s]->eof()) {
      (void)children[s]->running();  // reap if already exited
      auto emitted = router.on_child_down(s);
      out.insert(out.end(), std::make_move_iterator(emitted.begin()),
                 std::make_move_iterator(emitted.end()));
    }
  }
  return out;
}

}  // namespace saim::service
