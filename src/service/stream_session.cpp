#include "service/stream_session.hpp"

#include <errno.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <thread>

#include "core/report.hpp"
#include "service/job_parser.hpp"
#include "service/service_stats.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace saim::service {

// ------------------------------------------------------------ IO adapters

bool IostreamSessionIO::read_line(std::string& line) {
  return static_cast<bool>(std::getline(in_, line));
}

void IostreamSessionIO::write_line(const std::string& line) {
  out_ << line << "\n";
}

void IostreamSessionIO::flush() { out_.flush(); }

FdSessionIO::~FdSessionIO() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

bool FdSessionIO::read_line(std::string& line) {
  for (;;) {
    if (!lines_.empty()) {
      line = std::move(lines_.front());
      lines_.pop_front();
      return true;
    }
    if (eof_ || fd_ < 0) return false;
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      framer_.feed(buf, static_cast<std::size_t>(n));
      for (auto& l : framer_.take_lines()) lines_.push_back(std::move(l));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    eof_ = true;  // orderly close, reset, or a hard error: input is over
  }
}

void FdSessionIO::write_line(const std::string& line) {
  if (broken_ || fd_ < 0) return;
  // The scratch buffer is a member: a session writes one line per job,
  // and reusing the allocation across lines keeps the per-job cost to a
  // copy instead of a copy plus a heap round-trip.
  write_buffer_.assign(line);
  write_buffer_ += '\n';
  for (;;) {
    switch (net::write_some(fd_, write_buffer_)) {
      case net::WriteStatus::kOk:
        return;
      case net::WriteStatus::kBlocked:
        continue;  // cannot happen on a blocking fd; spin-safe anyway
      case net::WriteStatus::kBroken:
        broken_ = true;  // peer gone; the read side will surface EOF
        return;
    }
  }
}

// ----------------------------------------------------------- warm payload

std::string warm_pool_to_json(
    const std::vector<ResultCache::WarmSnapshot>& pool) {
  std::string json = "{";
  bool first_problem = true;
  for (const auto& entry : pool) {
    char fp_hex[17];
    std::snprintf(fp_hex, sizeof fp_hex, "%016" PRIx64, entry.problem_fp);
    if (!first_problem) json += ",";
    first_problem = false;
    json += "\"";
    json += fp_hex;
    json += "\":[";
    bool first_sample = true;
    for (const auto& [cost, bits] : entry.samples) {
      std::string bit_string(bits.size(), '0');
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) bit_string[i] = '1';
      }
      util::JsonWriter sample;
      sample.field("cost", cost).field("bits", bit_string);
      if (!first_sample) json += ",";
      first_sample = false;
      json += sample.str();
    }
    json += "]";
  }
  json += "}";
  return json;
}

std::optional<std::uint64_t> parse_fp_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

std::size_t import_warm_json(SolveService& service,
                             const util::JsonValue& warm) {
  if (!warm.is_object()) {
    throw std::runtime_error("\"warm\" must be an object");
  }
  std::size_t imported = 0;
  for (const auto& [fp_hex, samples] : warm.object()) {
    const auto fp = parse_fp_hex(fp_hex);
    if (!fp) {
      throw std::runtime_error("bad warm fingerprint \"" + fp_hex + "\"");
    }
    if (!samples.is_array()) {
      throw std::runtime_error("warm entry \"" + fp_hex +
                               "\" must be an array");
    }
    for (const auto& sample : samples.array()) {
      const auto* cost = sample.find("cost");
      const auto* bits = sample.find("bits");
      if (!cost || !cost->is_number() || !bits || !bits->is_string()) {
        throw std::runtime_error("warm sample needs \"cost\" and \"bits\"");
      }
      const std::string& bit_string = bits->as_string();
      ising::Bits config(bit_string.size(), 0);
      for (std::size_t i = 0; i < bit_string.size(); ++i) {
        if (bit_string[i] == '1') {
          config[i] = 1;
        } else if (bit_string[i] != '0') {
          throw std::runtime_error("warm \"bits\" must be 0/1 characters");
        }
      }
      service.import_warm_sample(*fp, config, cost->as_double());
      ++imported;
    }
  }
  return imported;
}

// -------------------------------------------------------------- core

namespace {

struct PendingJob {
  std::string id;
  std::string instance;
  std::string backend;
  JobHandle handle;
  std::string error;   ///< submission-time failure; handle invalid
  bool trace = false;  ///< echo the "timing" object on the result line
  bool drain = false;  ///< {"cmd":"drain"} barrier, not a job
  bool bye = false;    ///< {"cmd":"shutdown"} farewell barrier
  bool export_warm = false;  ///< {"cmd":"export_warm"} snapshot barrier
  bool emitted = false;  ///< result line already printed (--stream)

  [[nodiscard]] bool barrier() const { return drain || bye || export_warm; }
};

}  // namespace

/// State shared between whoever feeds lines and whoever polls emissions
/// — two threads in the blocking driver (reader + emitter), one thread
/// in the event server (the lock is then uncontended). A named struct so
/// the guarded members can carry thread-safety annotations.
struct StreamSessionCore::Impl {
  SolveService& service;
  const SessionOptions options;
  /// Registered on the service's registry (get-or-create: sessions share
  /// one series) so emit delay rolls up with the solver-side stage
  /// histograms in stats snapshots and metrics scrapes.
  obs::Histogram& emit_hist;

  mutable util::Mutex mutex;
  std::vector<PendingJob> jobs SAIM_GUARDED_BY(mutex);
  std::vector<std::size_t> unemitted SAIM_GUARDED_BY(mutex);  ///< in order
  bool input_done SAIM_GUARDED_BY(mutex) = false;
  std::int64_t next_seq SAIM_GUARDED_BY(mutex) = 0;
  SessionResult session_result SAIM_GUARDED_BY(mutex);

  /// Touched only by the single line feeder — never concurrently.
  std::size_t line_no = 0;
  bool intake_stopped = false;

  Impl(SolveService& svc, const SessionOptions& opts)
      : service(svc),
        options(opts),
        emit_hist(svc.metrics().histogram(
            "saim_emit_ms",
            "response ready to result line written, milliseconds")) {}

  std::string render(PendingJob& job) SAIM_REQUIRES(mutex);
  std::string render_barrier(PendingJob& job) SAIM_REQUIRES(mutex);
};

// Renders (and marks emitted) the result/error line for a FINISHED job.
// In stream mode, lines for ACCEPTED jobs carry the emission sequence
// number; lines rejected at submission never consume one (the global
// completion order counts real jobs only). In batch mode results print
// after EOF in input order, without seq.
std::string StreamSessionCore::Impl::render(PendingJob& job) {
  job.emitted = true;
  if (!job.handle.valid()) {
    session_result.any_error = true;
    util::JsonWriter err;
    err.field("id", job.id).field("error", job.error);
    return err.take();
  }
  const std::int64_t seq = options.stream ? next_seq++ : -1;
  const auto response = job.handle.wait();  // finished: returns at once
  // Completion-to-emission delay, recorded for every rendered job (a
  // responsive emitter is a property of the SESSION, not of traced
  // jobs). Epoch finished_at = response built outside the service.
  double emit_ms = 0.0;
  if (response->finished_at != std::chrono::steady_clock::time_point{}) {
    emit_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - response->finished_at)
                  .count();
    emit_hist.observe(emit_ms);
  }
  if (response->status == core::Status::kError) {
    session_result.any_error = true;
    util::JsonWriter err;
    err.field("id", job.id).field("error", response->error);
    if (seq >= 0) err.field("seq", seq);
    return err.take();
  }
  core::JsonlContext context;
  context.id = job.id;
  context.instance = job.instance;
  context.backend = job.backend;
  context.wall_ms = response->wall_ms;
  context.cache_hit = response->cache_hit;
  context.fingerprint = response->fingerprint;
  context.batch_size = response->batch_size;
  context.warm_started = response->warm_started;
  if (job.trace) {
    context.trace = true;
    context.queue_ms = response->timing.queue_ms;
    context.setup_ms = response->timing.setup_ms;
    context.solve_ms = response->timing.solve_ms;
    context.emit_ms = emit_ms;
    context.total_ms = response->timing.total_ms;
  }
  context.seq = seq;
  return core::result_to_jsonl(*response->result, context);
}

// A barrier's acknowledgement line (no seq: control lines never consume
// completion-order numbers). drain says "drained", shutdown says "bye",
// export_warm snapshots the pool — at barrier time, so every feasible
// job accepted before it has already deposited its samples.
std::string StreamSessionCore::Impl::render_barrier(PendingJob& job) {
  job.emitted = true;
  util::JsonWriter ack;
  ack.field("id", job.id);
  if (job.bye) {
    ack.field("bye", true);
  } else if (job.export_warm) {
    ack.raw_field("warm", warm_pool_to_json(service.export_warm_pool()));
  } else {
    ack.field("drained", true);
  }
  return ack.take();
}

StreamSessionCore::StreamSessionCore(SolveService& service,
                                     const SessionOptions& options)
    : impl_(std::make_unique<Impl>(service, options)) {}

StreamSessionCore::~StreamSessionCore() = default;

bool StreamSessionCore::on_line(const std::string& line,
                                std::vector<std::string>& replies) {
  Impl& im = *impl_;
  if (im.intake_stopped) return false;
  ++im.line_no;
  if (line.find_first_not_of(" \t\r") == std::string::npos) return true;
  PendingJob pending;
  pending.id = "job" + std::to_string(im.line_no);
  bool stop_reading = false;
  try {
    const util::JsonValue parsed = util::parse_json(line);
    // Use the line's own id everywhere — result lines, error lines,
    // control acknowledgements — falling back to the line number.
    if (const auto* id = parsed.find("id")) {
      if (!id->as_string().empty()) pending.id = id->as_string();
    }
    if (const auto cmd = control_cmd(parsed)) {
      if (*cmd == "ping") {
        // Liveness probe: answered immediately, even in batch mode and
        // even while every worker is busy (submission never blocks).
        // "inflight" counts THIS session's accepted-but-unemitted jobs
        // — rejected lines and barriers are not load.
        std::size_t inflight = 0;
        {
          util::MutexLock lock(im.mutex);
          for (const std::size_t i : im.unemitted) {
            if (im.jobs[i].handle.valid()) ++inflight;
          }
        }
        util::JsonWriter pong;
        pong.field("id", pending.id)
            .field("pong", true)
            .field("inflight", static_cast<std::uint64_t>(inflight));
        replies.push_back(pong.take());
        return true;
      }
      if (*cmd == "stats") {
        // Snapshot, not a barrier: answered immediately with the
        // service's CURRENT counters and latency quantiles, like ping.
        // (saim_shard intercepts this cmd at the front door and
        // aggregates the whole fleet instead.)
        util::JsonWriter reply;
        reply.field("id", pending.id)
            .raw_field("service", service_stats_json(im.service));
        replies.push_back(reply.take());
        return true;
      }
      if (*cmd == "import_warm") {
        const auto* warm = parsed.find("warm");
        if (!warm) throw std::runtime_error("import_warm needs \"warm\"");
        const std::size_t imported = import_warm_json(im.service, *warm);
        util::JsonWriter reply;
        reply.field("id", pending.id)
            .field("imported", static_cast<std::uint64_t>(imported));
        replies.push_back(reply.take());
        return true;
      }
      if (*cmd == "reshard") {
        throw std::runtime_error(
            "control cmd \"reshard\" is only handled by the saim_shard "
            "front door");
      }
      if (*cmd == "shutdown") {
        // Farewell barrier: intake stops NOW; everything accepted
        // before it drains, then {"bye":true} ends the session.
        pending.bye = true;
        stop_reading = true;
        util::MutexLock lock(im.mutex);
        im.session_result.shutdown = true;
      } else if (*cmd == "export_warm") {
        // Snapshot barrier: replied once every job accepted before it
        // has emitted — their feasible samples are then in the pool,
        // so a handoff export never under-reports in-flight work.
        pending.export_warm = true;
      } else {
        pending.drain = true;  // barrier; acknowledged by the emitter
      }
    } else {
      ParsedJob job = parse_job(parsed, im.options.warm_default);
      job.request.tag = pending.id;
      pending.instance = job.instance;
      pending.backend = job.request.backend.name;
      pending.trace = job.request.trace;
      pending.handle = im.service.submit(std::move(job.request));
    }
  } catch (const std::exception& e) {
    pending.error = e.what();
  }
  {
    // Uncontended without a concurrent emitter (batch mode / event
    // server), so one always-locked push keeps the paths identical.
    util::MutexLock lock(im.mutex);
    im.jobs.push_back(std::move(pending));
    im.unemitted.push_back(im.jobs.size() - 1);
  }
  if (stop_reading) {
    im.intake_stopped = true;
    return false;
  }
  return true;
}

void StreamSessionCore::finish_input() {
  util::MutexLock lock(impl_->mutex);
  impl_->input_done = true;
}

// Each pass sweeps only the still-unemitted indices with non-blocking
// try_get. A drain/shutdown barrier emits only once every entry before
// it has — jobs after it may still overtake it, matching the contract
// that "drained" certifies the PAST, not the future.
//
// The sweep is a hand-written compaction loop rather than erase_if: the
// analysis treats a lambda body as its own (lock-free) function, so a
// predicate touching jobs/unemitted could not be checked against the
// lock held out here.
bool StreamSessionCore::poll_emittable(std::vector<std::string>& out) {
  Impl& im = *impl_;
  util::MutexLock lock(im.mutex);
  if (im.options.stream) {
    bool blocked = false;  // an earlier entry is still unfinished
    std::size_t kept = 0;
    for (std::size_t n = 0; n < im.unemitted.size(); ++n) {
      const std::size_t i = im.unemitted[n];
      PendingJob& job = im.jobs[i];
      if (job.barrier()) {
        if (blocked) {
          im.unemitted[kept++] = i;
        } else {
          out.push_back(im.render_barrier(job));
        }
        continue;
      }
      if (job.handle.valid() && !job.handle.try_get()) {
        blocked = true;
        im.unemitted[kept++] = i;
        continue;
      }
      out.push_back(im.render(job));
    }
    im.unemitted.resize(kept);
  } else if (im.input_done) {
    // Batch contract: nothing emits before EOF; afterwards, input order.
    // Render the maximal finished prefix; the rest waits for a later
    // poll (or drain_blocking).
    std::size_t taken = 0;
    while (taken < im.unemitted.size()) {
      PendingJob& job = im.jobs[im.unemitted[taken]];
      if (job.barrier()) {
        out.push_back(im.render_barrier(job));
      } else if (job.handle.valid() && !job.handle.try_get()) {
        break;
      } else {
        out.push_back(im.render(job));
      }
      ++taken;
    }
    im.unemitted.erase(im.unemitted.begin(),
                       im.unemitted.begin() +
                           static_cast<std::ptrdiff_t>(taken));
  }
  return im.input_done && im.unemitted.empty();
}

void StreamSessionCore::drain_blocking(std::vector<std::string>& out) {
  Impl& im = *impl_;
  // render() may block in handle.wait(); nothing else wants the lock at
  // drain time (the feeder is done, no emitter thread runs in batch
  // mode), so holding it across the waits is safe and keeps the guarded
  // accesses annotated.
  util::MutexLock lock(im.mutex);
  for (auto& job : im.jobs) {
    if (job.emitted) continue;
    out.push_back(job.barrier() ? im.render_barrier(job) : im.render(job));
  }
  im.unemitted.clear();
}

bool StreamSessionCore::drained() const {
  util::MutexLock lock(impl_->mutex);
  return impl_->input_done && impl_->unemitted.empty();
}

bool StreamSessionCore::needs_poll() const {
  util::MutexLock lock(impl_->mutex);
  if (impl_->unemitted.empty()) return false;
  return impl_->options.stream || impl_->input_done;
}

std::size_t StreamSessionCore::unemitted_count() const {
  util::MutexLock lock(impl_->mutex);
  return impl_->unemitted.size();
}

SessionResult StreamSessionCore::result() const {
  util::MutexLock lock(impl_->mutex);
  return impl_->session_result;
}

// -------------------------------------------------------------- session

SessionResult run_stream_session(SolveService& service, SessionIO& io,
                                 const SessionOptions& options) {
  StreamSessionCore core(service, options);
  util::Mutex out_mutex;  ///< serializes the sink between emitter and pongs

  // Stream mode emits from a dedicated thread so completions surface the
  // moment they happen — even while the main thread is blocked in
  // read_line waiting for a slow producer (a request-response coprocess
  // can keep the pipe open and still read results). Renders happen under
  // the core's lock but WRITES happen outside it (a slow result consumer
  // never stalls submission); the pass exits once input is done and
  // everything is emitted. poll_emittable computes "drained" inside the
  // same critical section as its sweep, so a final job pushed before
  // finish_input can never be skipped.
  std::thread emitter;
  if (options.stream) {
    emitter = std::thread([&] {
      for (;;) {
        std::vector<std::string> lines;
        const bool done = core.poll_emittable(lines);
        if (!lines.empty()) {
          util::MutexLock lock(out_mutex);
          for (const auto& l : lines) io.write_line(l);
          io.flush();  // a coprocess is waiting on these completions
        }
        if (done) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::string line;
  std::vector<std::string> replies;
  while (io.read_line(line)) {
    replies.clear();
    const bool keep_reading = core.on_line(line, replies);
    if (!replies.empty()) {
      util::MutexLock lock(out_mutex);
      for (const auto& r : replies) io.write_line(r);
      io.flush();  // a probe's whole point is promptness
    }
    if (!keep_reading) break;
  }
  core.finish_input();

  if (options.stream) {
    emitter.join();  // drains every remaining completion, then exits
  } else {
    std::vector<std::string> lines;
    core.drain_blocking(lines);
    for (const auto& l : lines) io.write_line(l);
    io.flush();  // batch mode: one flush for the whole run
  }
  return core.result();
}

}  // namespace saim::service
