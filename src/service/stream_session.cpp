#include "service/stream_session.hpp"

#include <errno.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <thread>

#include "core/report.hpp"
#include "service/job_parser.hpp"
#include "service/service_stats.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace saim::service {

// ------------------------------------------------------------ IO adapters

bool IostreamSessionIO::read_line(std::string& line) {
  return static_cast<bool>(std::getline(in_, line));
}

void IostreamSessionIO::write_line(const std::string& line) {
  out_ << line << "\n";
}

void IostreamSessionIO::flush() { out_.flush(); }

FdSessionIO::~FdSessionIO() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

bool FdSessionIO::read_line(std::string& line) {
  for (;;) {
    if (!lines_.empty()) {
      line = std::move(lines_.front());
      lines_.pop_front();
      return true;
    }
    if (eof_ || fd_ < 0) return false;
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      framer_.feed(buf, static_cast<std::size_t>(n));
      for (auto& l : framer_.take_lines()) lines_.push_back(std::move(l));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    eof_ = true;  // orderly close, reset, or a hard error: input is over
  }
}

void FdSessionIO::write_line(const std::string& line) {
  if (broken_ || fd_ < 0) return;
  std::string buffer = line;
  buffer += '\n';
  for (;;) {
    switch (net::write_some(fd_, buffer)) {
      case net::WriteStatus::kOk:
        return;
      case net::WriteStatus::kBlocked:
        continue;  // cannot happen on a blocking fd; spin-safe anyway
      case net::WriteStatus::kBroken:
        broken_ = true;  // peer gone; the read side will surface EOF
        return;
    }
  }
}

// ----------------------------------------------------------- warm payload

std::string warm_pool_to_json(
    const std::vector<ResultCache::WarmSnapshot>& pool) {
  std::string json = "{";
  bool first_problem = true;
  for (const auto& entry : pool) {
    char fp_hex[17];
    std::snprintf(fp_hex, sizeof fp_hex, "%016" PRIx64, entry.problem_fp);
    if (!first_problem) json += ",";
    first_problem = false;
    json += "\"";
    json += fp_hex;
    json += "\":[";
    bool first_sample = true;
    for (const auto& [cost, bits] : entry.samples) {
      std::string bit_string(bits.size(), '0');
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) bit_string[i] = '1';
      }
      util::JsonWriter sample;
      sample.field("cost", cost).field("bits", bit_string);
      if (!first_sample) json += ",";
      first_sample = false;
      json += sample.str();
    }
    json += "]";
  }
  json += "}";
  return json;
}

std::optional<std::uint64_t> parse_fp_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

std::size_t import_warm_json(SolveService& service,
                             const util::JsonValue& warm) {
  if (!warm.is_object()) {
    throw std::runtime_error("\"warm\" must be an object");
  }
  std::size_t imported = 0;
  for (const auto& [fp_hex, samples] : warm.object()) {
    const auto fp = parse_fp_hex(fp_hex);
    if (!fp) {
      throw std::runtime_error("bad warm fingerprint \"" + fp_hex + "\"");
    }
    if (!samples.is_array()) {
      throw std::runtime_error("warm entry \"" + fp_hex +
                               "\" must be an array");
    }
    for (const auto& sample : samples.array()) {
      const auto* cost = sample.find("cost");
      const auto* bits = sample.find("bits");
      if (!cost || !cost->is_number() || !bits || !bits->is_string()) {
        throw std::runtime_error("warm sample needs \"cost\" and \"bits\"");
      }
      const std::string& bit_string = bits->as_string();
      ising::Bits config(bit_string.size(), 0);
      for (std::size_t i = 0; i < bit_string.size(); ++i) {
        if (bit_string[i] == '1') {
          config[i] = 1;
        } else if (bit_string[i] != '0') {
          throw std::runtime_error("warm \"bits\" must be 0/1 characters");
        }
      }
      service.import_warm_sample(*fp, config, cost->as_double());
      ++imported;
    }
  }
  return imported;
}

// -------------------------------------------------------------- session

namespace {

struct PendingJob {
  std::string id;
  std::string instance;
  std::string backend;
  JobHandle handle;
  std::string error;   ///< submission-time failure; handle invalid
  bool trace = false;  ///< echo the "timing" object on the result line
  bool drain = false;  ///< {"cmd":"drain"} barrier, not a job
  bool bye = false;    ///< {"cmd":"shutdown"} farewell barrier
  bool export_warm = false;  ///< {"cmd":"export_warm"} snapshot barrier
  bool emitted = false;  ///< result line already printed (--stream)

  [[nodiscard]] bool barrier() const { return drain || bye || export_warm; }
};

/// Stream-mode state shared between the reader (main) thread and the
/// emitter thread. A named struct, not locals, so the guarded members can
/// carry thread-safety annotations (attributes cannot attach to
/// function-local variables). Batch mode uses it too — uncontended, the
/// emitter thread only exists with --stream — so the two paths stay
/// identical.
struct EmitQueue {
  util::Mutex mutex;
  std::vector<PendingJob> jobs SAIM_GUARDED_BY(mutex);
  std::vector<std::size_t> unemitted SAIM_GUARDED_BY(mutex);  ///< in order
  bool input_done SAIM_GUARDED_BY(mutex) = false;
};

}  // namespace

SessionResult run_stream_session(SolveService& service, SessionIO& io,
                                 const SessionOptions& options) {
  SessionResult session_result;
  const bool stream = options.stream;

  // Registered on the service's registry (get-or-create: sessions share
  // one series) so emit delay rolls up with the solver-side stage
  // histograms in stats snapshots and metrics scrapes.
  obs::Histogram& emit_hist = service.metrics().histogram(
      "saim_emit_ms", "response ready to result line written, milliseconds");

  std::int64_t next_seq = 0;
  // Renders (and marks emitted) the result/error line for a FINISHED job.
  // In stream mode, lines for ACCEPTED jobs carry the emission sequence
  // number; lines rejected at submission never consume one (the global
  // completion order counts real jobs only). In batch mode results print
  // after EOF in input order, without seq.
  const auto render = [&](PendingJob& job) -> std::string {
    job.emitted = true;
    if (!job.handle.valid()) {
      session_result.any_error = true;
      util::JsonWriter err;
      err.field("id", job.id).field("error", job.error);
      return err.str();
    }
    const std::int64_t seq = stream ? next_seq++ : -1;
    const auto response = job.handle.wait();  // finished: returns at once
    // Completion-to-emission delay, recorded for every rendered job (a
    // responsive emitter is a property of the SESSION, not of traced
    // jobs). Epoch finished_at = response built outside the service.
    double emit_ms = 0.0;
    if (response->finished_at != std::chrono::steady_clock::time_point{}) {
      emit_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - response->finished_at)
                    .count();
      emit_hist.observe(emit_ms);
    }
    if (response->status == core::Status::kError) {
      session_result.any_error = true;
      util::JsonWriter err;
      err.field("id", job.id).field("error", response->error);
      if (seq >= 0) err.field("seq", seq);
      return err.str();
    }
    core::JsonlContext context;
    context.id = job.id;
    context.instance = job.instance;
    context.backend = job.backend;
    context.wall_ms = response->wall_ms;
    context.cache_hit = response->cache_hit;
    context.fingerprint = response->fingerprint;
    context.batch_size = response->batch_size;
    context.warm_started = response->warm_started;
    if (job.trace) {
      context.trace = true;
      context.queue_ms = response->timing.queue_ms;
      context.setup_ms = response->timing.setup_ms;
      context.solve_ms = response->timing.solve_ms;
      context.emit_ms = emit_ms;
      context.total_ms = response->timing.total_ms;
    }
    context.seq = seq;
    return core::result_to_jsonl(*response->result, context);
  };
  // A barrier's acknowledgement line (no seq: control lines never consume
  // completion-order numbers). drain says "drained", shutdown says "bye",
  // export_warm snapshots the pool — at barrier time, so every feasible
  // job accepted before it has already deposited its samples.
  const auto render_barrier = [&service](PendingJob& job) -> std::string {
    job.emitted = true;
    util::JsonWriter ack;
    ack.field("id", job.id);
    if (job.bye) {
      ack.field("bye", true);
    } else if (job.export_warm) {
      ack.raw_field("warm", warm_pool_to_json(service.export_warm_pool()));
    } else {
      ack.field("drained", true);
    }
    return ack.str();
  };

  EmitQueue q;
  util::Mutex out_mutex;  ///< serializes the sink between emitter and pongs

  // Stream mode emits from a dedicated thread so completions surface the
  // moment they happen — even while the main thread is blocked in
  // read_line waiting for a slow producer (a request-response coprocess
  // can keep the pipe open and still read results). Each pass sweeps only
  // the still-unemitted indices with non-blocking try_get, renders under
  // the lock but WRITES outside it (a slow result consumer never stalls
  // submission), and exits once input is done and everything is emitted.
  // The exit check reads input_done inside the same critical section as
  // the sweep, so a final job pushed before input_done was set can never
  // be skipped. A drain/shutdown barrier emits only once every entry
  // before it has — jobs after it may still overtake it, matching the
  // contract that "drained" certifies the PAST, not the future.
  //
  // The sweep is a hand-written compaction loop rather than erase_if: the
  // analysis treats a lambda body as its own (lock-free) function, so a
  // predicate touching q.jobs/q.unemitted could not be checked against
  // the lock held out here.
  std::thread emitter;
  if (stream) {
    emitter = std::thread([&] {
      while (true) {
        std::vector<std::string> lines;
        bool done;
        bool all_emitted;
        {
          util::MutexLock lock(q.mutex);
          bool blocked = false;  // an earlier entry is still unfinished
          std::size_t kept = 0;
          for (std::size_t n = 0; n < q.unemitted.size(); ++n) {
            const std::size_t i = q.unemitted[n];
            PendingJob& job = q.jobs[i];
            if (job.barrier()) {
              if (blocked) {
                q.unemitted[kept++] = i;
              } else {
                lines.push_back(render_barrier(job));
              }
              continue;
            }
            if (job.handle.valid() && !job.handle.try_get()) {
              blocked = true;
              q.unemitted[kept++] = i;
              continue;
            }
            lines.push_back(render(job));
          }
          q.unemitted.resize(kept);
          all_emitted = q.unemitted.empty();
          done = q.input_done;
        }
        if (!lines.empty()) {
          util::MutexLock lock(out_mutex);
          for (const auto& l : lines) io.write_line(l);
          io.flush();  // a coprocess is waiting on these completions
        }
        if (done && all_emitted) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::string line;
  std::size_t line_no = 0;
  while (io.read_line(line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    PendingJob pending;
    pending.id = "job" + std::to_string(line_no);
    bool stop_reading = false;
    try {
      const util::JsonValue parsed = util::parse_json(line);
      // Use the line's own id everywhere — result lines, error lines,
      // control acknowledgements — falling back to the line number.
      if (const auto* id = parsed.find("id")) {
        if (!id->as_string().empty()) pending.id = id->as_string();
      }
      if (const auto cmd = control_cmd(parsed)) {
        if (*cmd == "ping") {
          // Liveness probe: answered immediately, even in batch mode and
          // even while every worker is busy (submission never blocks).
          // "inflight" counts THIS session's accepted-but-unemitted jobs
          // — rejected lines and barriers are not load.
          std::size_t inflight = 0;
          {
            util::MutexLock lock(q.mutex);
            for (const std::size_t i : q.unemitted) {
              if (q.jobs[i].handle.valid()) ++inflight;
            }
          }
          util::JsonWriter pong;
          pong.field("id", pending.id)
              .field("pong", true)
              .field("inflight", static_cast<std::uint64_t>(inflight));
          util::MutexLock lock(out_mutex);
          io.write_line(pong.str());
          io.flush();  // a probe's whole point is promptness
          continue;
        }
        if (*cmd == "stats") {
          // Snapshot, not a barrier: answered immediately with the
          // service's CURRENT counters and latency quantiles, like ping.
          // (saim_shard intercepts this cmd at the front door and
          // aggregates the whole fleet instead.)
          util::JsonWriter reply;
          reply.field("id", pending.id)
              .raw_field("service", service_stats_json(service));
          util::MutexLock lock(out_mutex);
          io.write_line(reply.str());
          io.flush();
          continue;
        }
        if (*cmd == "import_warm") {
          const auto* warm = parsed.find("warm");
          if (!warm) throw std::runtime_error("import_warm needs \"warm\"");
          const std::size_t imported = import_warm_json(service, *warm);
          util::JsonWriter reply;
          reply.field("id", pending.id)
              .field("imported", static_cast<std::uint64_t>(imported));
          util::MutexLock lock(out_mutex);
          io.write_line(reply.str());
          io.flush();
          continue;
        }
        if (*cmd == "reshard") {
          throw std::runtime_error(
              "control cmd \"reshard\" is only handled by the saim_shard "
              "front door");
        }
        if (*cmd == "shutdown") {
          // Farewell barrier: intake stops NOW; everything accepted
          // before it drains, then {"bye":true} ends the session.
          pending.bye = true;
          stop_reading = true;
          session_result.shutdown = true;
        } else if (*cmd == "export_warm") {
          // Snapshot barrier: replied once every job accepted before it
          // has emitted — their feasible samples are then in the pool,
          // so a handoff export never under-reports in-flight work.
          pending.export_warm = true;
        } else {
          pending.drain = true;  // barrier; acknowledged by the emitter
        }
      } else {
        ParsedJob job = parse_job(parsed, options.warm_default);
        job.request.tag = pending.id;
        pending.instance = job.instance;
        pending.backend = job.request.backend.name;
        pending.trace = job.request.trace;
        pending.handle = service.submit(std::move(job.request));
      }
    } catch (const std::exception& e) {
      pending.error = e.what();
    }
    {
      // Uncontended in batch mode (the emitter thread only exists with
      // --stream), so one always-locked push keeps the paths identical.
      util::MutexLock lock(q.mutex);
      q.jobs.push_back(std::move(pending));
      q.unemitted.push_back(q.jobs.size() - 1);
    }
    if (stop_reading) break;
  }

  if (stream) {
    {
      util::MutexLock lock(q.mutex);
      q.input_done = true;
    }
    emitter.join();  // drains every remaining completion, then exits
  } else {
    // No emitter thread exists, but q.jobs is guarded state: hold the
    // (uncontended) lock for the final sweep so the access is annotated.
    // render() may block in handle.wait(); nothing else wants the lock.
    util::MutexLock lock(q.mutex);
    for (auto& job : q.jobs) {
      io.write_line(job.barrier() ? render_barrier(job) : render(job));
    }
    io.flush();  // batch mode: one flush for the whole run
  }
  return session_result;
}

}  // namespace saim::service
