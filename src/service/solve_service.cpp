#include "service/solve_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <iterator>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batch_solver.hpp"
#include "problems/fingerprint.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace saim::service {

namespace detail {

struct JobState {
  std::uint64_t fingerprint = 0;
  /// Content hash of the problem alone — the warm-start pool's key.
  std::uint64_t problem_fp = 0;
  /// Batchability key: problem_fp + backend spec + penalty shaping. Jobs
  /// sharing it can run on one model build + one backend bind; seeds,
  /// iteration budgets, deadlines etc. stay per-member.
  std::uint64_t batch_key = 0;
  SolveRequest request;
  util::StopSource stop;

  /// Stage timestamps for JobTiming. submitted_at is set under the
  /// submit path; claimed_at/solve_started_at are written by the one
  /// worker that claimed the job and read by the same thread in
  /// finish() — no synchronization needed. Epoch (default) = the stage
  /// never happened (e.g. cancelled before a claim).
  std::chrono::steady_clock::time_point submitted_at{};
  std::chrono::steady_clock::time_point claimed_at{};
  std::chrono::steady_clock::time_point solve_started_at{};

  /// Set once by the first worker (or shutdown) that claims the job; a
  /// JobState may sit in the queue more than once (a coalescing submit
  /// re-pushes a queued twin at a higher priority band), and this flag is
  /// what makes the duplicates harmless.
  std::atomic<bool> started{false};

  util::Mutex mutex;
  std::condition_variable cv;
  /// Set exactly once (finish()), then read-only behind the lock.
  std::shared_ptr<const SolveResponse> response SAIM_GUARDED_BY(mutex);

  /// Handles sharing this computation (first submit + coalesced twins)
  /// and how many of them voted to cancel. Guarded by `mutex` — cancel,
  /// coalesce and handle teardown must see each other's updates in order,
  /// or a cancel racing a coalesce could kill the new subscriber's job.
  std::size_t subscribers SAIM_GUARDED_BY(mutex) = 1;
  std::size_t cancel_votes SAIM_GUARDED_BY(mutex) = 0;

  /// With `mutex` held: trips the stop iff no live subscriber still wants
  /// the result and the job has not already finished.
  void maybe_stop_locked() SAIM_REQUIRES(mutex) {
    if (cancel_votes >= subscribers && response == nullptr) {
      stop.request_stop();
    }
  }
};

}  // namespace detail

using detail::JobState;

// ---------------------------------------------------------------- JobHandle

std::shared_ptr<const SolveResponse> JobHandle::wait() const {
  if (!state_) return nullptr;  // invalid handles never block
  util::MutexLock lock(state_->mutex);
  while (state_->response == nullptr) state_->cv.wait(lock.native());
  return state_->response;
}

std::shared_ptr<const SolveResponse> JobHandle::wait_for(
    std::chrono::milliseconds timeout) const {
  if (!state_) return nullptr;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::MutexLock lock(state_->mutex);
  while (state_->response == nullptr) {
    if (state_->cv.wait_until(lock.native(), deadline) ==
        std::cv_status::timeout) {
      break;
    }
  }
  return state_->response;
}

std::shared_ptr<const SolveResponse> JobHandle::try_get() const {
  if (!state_) return nullptr;
  util::MutexLock lock(state_->mutex);
  return state_->response;
}

bool JobHandle::cancel() {
  if (!state_ || cancel_voted_) return false;
  cancel_voted_ = true;
  util::MutexLock lock(state_->mutex);
  ++state_->cancel_votes;
  if (state_->cancel_votes < state_->subscribers ||
      state_->response != nullptr) {
    return false;  // a twin still wants the result, or it's already done
  }
  state_->stop.request_stop();
  return true;
}

void JobHandle::release() noexcept {
  if (!state_) return;
  {
    util::MutexLock lock(state_->mutex);
    if (!cancel_voted_) {
      // A handle dropped without voting no longer counts toward the
      // cancellation quorum — otherwise one discarded twin handle would
      // disable cancel() for every remaining holder. If nobody is left at
      // all, the job is abandoned and stops itself.
      --state_->subscribers;
      state_->maybe_stop_locked();
    }
  }
  state_.reset();
  cancel_voted_ = false;
}

JobHandle::~JobHandle() { release(); }

JobHandle::JobHandle(JobHandle&& other) noexcept
    : state_(std::move(other.state_)), cancel_voted_(other.cancel_voted_) {
  other.cancel_voted_ = false;
}

JobHandle& JobHandle::operator=(JobHandle&& other) noexcept {
  if (this != &other) {
    release();
    state_ = std::move(other.state_);
    cancel_voted_ = other.cancel_voted_;
    other.cancel_voted_ = false;
  }
  return *this;
}

std::uint64_t JobHandle::fingerprint() const noexcept {
  return state_ ? state_->fingerprint : 0;
}

// ------------------------------------------------------------ SolveService

SolveService::SolveService(ServiceOptions options)
    : options_(options),
      hist_queue_ms_(registry_.histogram(
          "saim_job_queue_ms", "submit to worker claim, milliseconds")),
      hist_setup_ms_(registry_.histogram(
          "saim_job_setup_ms",
          "worker claim to solve start (batch drain + model build), ms")),
      hist_solve_ms_(registry_.histogram(
          "saim_job_solve_ms", "solve start to job completion, ms")),
      hist_total_ms_(registry_.histogram(
          "saim_job_total_ms", "submit to response ready, milliseconds")),
      cache_(options.cache_capacity, options.warm_pool_capacity),
      pool_(options.workers == 0 ? util::hardware_threads()
                                 : options.workers) {
  for (std::size_t w = 0; w < pool_.thread_count(); ++w) {
    pool_.submit([this] { worker_loop(); });
  }
}

SolveService::~SolveService() { shutdown(); }

std::size_t SolveService::worker_count() const noexcept {
  return pool_.thread_count();
}

namespace {

/// Extends a problem content hash with the solve parameters.
std::uint64_t request_fingerprint_with(std::uint64_t problem_fp,
                                       const SolveRequest& request) {
  problems::Fingerprint fp;
  fp.mix(problem_fp);

  fp.mix(request.backend.name);
  fp.mix(static_cast<std::uint64_t>(request.backend.sweeps));
  fp.mix(request.backend.beta_max);

  const core::SaimOptions& o = request.options;
  fp.mix(static_cast<std::uint64_t>(o.iterations));
  fp.mix(o.eta);
  fp.mix(o.penalty_alpha);
  fp.mix(o.penalty);
  fp.mix(static_cast<std::uint64_t>(o.step_rule));
  fp.mix(o.seed);
  fp.mix(static_cast<std::uint64_t>(o.replicas));
  fp.mix(static_cast<std::uint64_t>(o.record_history));
  fp.mix(static_cast<std::uint64_t>(o.use_best_sample));
  fp.mix(static_cast<std::uint64_t>(o.collect_feasible_costs));
  fp.mix(static_cast<std::uint64_t>(o.convergence_patience));
  fp.mix(o.convergence_tol);
  // Warm and cold twins are different computations: a warm job's output
  // depends on the pool, so it must never collide with a cold twin in the
  // cache or the in-flight table.
  fp.mix(static_cast<std::uint64_t>(request.warm_start));
  return fp.digest();
}

/// Batchability: everything that shapes the shared model/backend — and
/// nothing that is legitimately per-member (seed, eta, iterations,
/// replicas, deadline, warm_start).
std::uint64_t batch_key_with(std::uint64_t problem_fp,
                             const SolveRequest& request) {
  problems::Fingerprint fp;
  fp.mix(problem_fp);
  fp.mix(request.backend.name);
  fp.mix(static_cast<std::uint64_t>(request.backend.sweeps));
  fp.mix(request.backend.beta_max);
  fp.mix(request.options.penalty);
  fp.mix(request.options.penalty_alpha);
  return fp.digest();
}

}  // namespace

std::uint64_t SolveService::request_fingerprint(const SolveRequest& request) {
  if (!request.problem) {
    throw std::invalid_argument("request_fingerprint: null problem");
  }
  return request_fingerprint_with(problems::fingerprint(*request.problem),
                                  request);
}

std::uint64_t SolveService::problem_fingerprint(
    const std::shared_ptr<const problems::ConstrainedProblem>& problem) {
  const void* key = problem.get();
  {
    util::MutexLock lock(memo_mutex_);
    const auto it = problem_fp_memo_.find(key);
    if (it != problem_fp_memo_.end()) {
      // The memo is only valid while the original object is alive — an
      // expired weak_ptr means this address was freed and possibly reused
      // by a different problem.
      if (it->second.first.lock() == problem) return it->second.second;
      problem_fp_memo_.erase(it);
    }
  }
  const std::uint64_t fp = problems::fingerprint(*problem);
  constexpr std::size_t kMemoCapacity = 1024;
  util::MutexLock lock(memo_mutex_);
  if (problem_fp_memo_.size() >= kMemoCapacity) {
    // Prune dead handles first; if every entry is still live (a huge
    // all-distinct job stream), drop an arbitrary one — the memo is a
    // cache, staying bounded beats keeping any particular entry.
    for (auto it = problem_fp_memo_.begin(); it != problem_fp_memo_.end();) {
      it = it->second.first.expired() ? problem_fp_memo_.erase(it)
                                      : std::next(it);
    }
    if (problem_fp_memo_.size() >= kMemoCapacity) {
      problem_fp_memo_.erase(problem_fp_memo_.begin());
    }
  }
  problem_fp_memo_.emplace(key, std::make_pair(problem, fp));
  return fp;
}

JobHandle SolveService::submit(SolveRequest request) {
  if (!request.problem) {
    throw std::invalid_argument("SolveService::submit: null problem");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t problem_fp = problem_fingerprint(request.problem);
  const std::uint64_t fp = request_fingerprint_with(problem_fp, request);

  auto job = std::make_shared<JobState>();
  job->fingerprint = fp;
  job->problem_fp = problem_fp;
  job->batch_key = batch_key_with(problem_fp, request);
  job->submitted_at = std::chrono::steady_clock::now();

  {
    util::MutexLock lock(inflight_mutex_);
    if (!accepting_) {
      throw std::runtime_error("SolveService::submit after shutdown");
    }

    // Warm jobs bypass the replay machinery wholesale: their result is a
    // function of the pool's state at execution time, so serving a stored
    // twin (cache) or joining a running one (coalescing) would hand the
    // caller a different pool snapshot than the one they asked to use.
    if (request.use_cache && !request.warm_start) {
      // Completed twin: serve the very SolveResult object computed the
      // first time — bit-identical by construction, no recompute.
      if (auto cached = cache_.get(fp)) {
        auto response = std::make_shared<SolveResponse>();
        response->result = std::move(cached);
        response->status = response->result->status;
        response->cache_hit = true;
        response->fingerprint = fp;
        response->tag = std::move(request.tag);
        // A hit runs nothing: every stage is zero except the (tiny)
        // submit-to-ready total, which still feeds the latency picture.
        response->finished_at = std::chrono::steady_clock::now();
        response->timing.total_ms =
            std::chrono::duration<double, std::milli>(response->finished_at -
                                                      job->submitted_at)
                .count();
        hist_total_ms_.observe(response->timing.total_ms);
        {
          // `job` is still thread-local here, but response is guarded
          // state: take the (uncontended) lock so the store is ordered
          // for any thread the returned handle travels to.
          util::MutexLock job_lock(job->mutex);
          job->response = std::move(response);
        }
        return JobHandle(std::move(job));
      }
    }

    // Running twin: join the in-flight computation instead of queueing a
    // duplicate. The joiner keeps its own cancel vote via `subscribers`.
    // Join only when the twin can still complete and neither side carries
    // a deadline (timeouts are not fingerprinted, so coalescing across
    // them would hand one caller the other's time budget) — otherwise
    // fall through and compute independently.
    if (const auto it = request.warm_start ? inflight_.end()
                                           : inflight_.find(fp);
        it != inflight_.end()) {
      if (auto twin = it->second.lock();
          twin && twin->request.timeout.count() == 0 &&
          request.timeout.count() == 0) {
        bool joined = false;
        {
          // Same lock as cancel()/release(): either our subscription is
          // visible before a cancel quorum is evaluated, or the stop is
          // already requested and we decline — a joiner can never be
          // handed a cancellation it did not vote for.
          util::MutexLock job_lock(twin->mutex);
          if (!twin->stop.stop_requested()) {
            ++twin->subscribers;
            joined = true;
          }
        }
        if (joined) {
          coalesced_.fetch_add(1, std::memory_order_relaxed);
          // No priority inversion: a joiner from a higher band re-pushes
          // the still-queued twin there; the duplicate queue entry is
          // skipped via JobState::started.
          if (request.priority > twin->request.priority &&
              !twin->started.load(std::memory_order_acquire)) {
            queue_.push(twin, request.priority);
          }
          return JobHandle(std::move(twin));
        }
      }
    }

    job->request = std::move(request);
    if (job->request.timeout.count() > 0) {
      // Clamp before the ms -> steady_clock-tick (ns) conversion, which
      // overflows int64 past ~292 years; a decade is indistinguishable
      // from "no deadline" for a solve job.
      constexpr std::chrono::milliseconds kMaxTimeout =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::hours(24 * 3650));
      job->stop = util::StopSource::after(
          std::min(job->request.timeout, kMaxTimeout));
    }
    // Register for coalescing only if the slot is free: a job that
    // *declined* to join a live twin (deadline mismatch) must not evict
    // that twin's entry — later deadline-free duplicates should still
    // find and join the original. Warm jobs never coalesce, so they do
    // not register either.
    if (!job->request.warm_start) {
      if (auto& slot = inflight_[fp]; slot.expired()) slot = job;
    }
  }

  if (!queue_.push(job, job->request.priority)) {
    // Shutdown raced us between the lock and the push: fail the job the
    // same way drained queue entries fail (stat included).
    auto response = std::make_shared<SolveResponse>();
    auto result = std::make_shared<core::SolveResult>();
    result->status = core::Status::kCancelled;
    response->result = std::move(result);
    response->status = core::Status::kCancelled;
    response->fingerprint = fp;
    response->tag = job->request.tag;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    finish(job, std::move(response));
  }
  return JobHandle(std::move(job));
}

void SolveService::worker_loop() {
  while (true) {
    idle_workers_.fetch_add(1, std::memory_order_relaxed);
    auto popped = queue_.pop();
    idle_workers_.fetch_sub(1, std::memory_order_relaxed);
    if (!popped) break;
    const std::shared_ptr<JobState> job = *popped;
    // A job can appear in the queue more than once (priority re-push on
    // coalesce); whoever flips `started` first owns it.
    if (job->started.exchange(true, std::memory_order_acq_rel)) continue;
    job->claimed_at = std::chrono::steady_clock::now();

    // Same-instance batching: pull this job's queued batch-key twins from
    // its own priority band into one shared execution. Budget rules (see
    // ServiceOptions::max_batch): a deadline-carrying job batches nothing
    // extra, and idle workers are left enough queued jobs to stay busy —
    // batching amortizes setup, but parallel solo execution beats
    // lockstep sharing of one thread whenever threads are free. The idle
    // read is racy-by-design: a stale value costs one suboptimal batch,
    // never correctness.
    std::size_t budget =
        options_.max_batch > 1 && job->request.timeout.count() == 0
            ? options_.max_batch - 1
            : 0;
    if (budget > 0) {
      const std::size_t idle = idle_workers_.load(std::memory_order_relaxed);
      const std::size_t backlog = queue_.size();
      budget = std::min(budget, backlog > idle ? backlog - idle : 0);
    }
    std::vector<std::shared_ptr<JobState>> members{job};
    if (budget > 0) {
      auto twins = queue_.drain_matching(
          budget, [&](const std::shared_ptr<JobState>& t) {
            return t->batch_key == job->batch_key &&
                   t->request.priority == job->request.priority &&
                   !t->started.load(std::memory_order_acquire);
          });
      for (auto& twin : twins) {
        // A drained entry can be a duplicate of an already-claimed job
        // (priority re-push); the exchange makes claiming it idempotent.
        if (twin->started.exchange(true, std::memory_order_acq_rel)) {
          continue;
        }
        twin->claimed_at = std::chrono::steady_clock::now();
        members.push_back(std::move(twin));
      }
    }
    if (members.size() == 1 && !job->request.warm_start) {
      execute(job);  // the proven solo path; nothing to amortize or seed
    } else {
      execute_batch(members);
    }
  }
}

void SolveService::record_outcome(
    const std::shared_ptr<JobState>& job,
    const std::shared_ptr<core::SolveResult>& result) {
  executed_.fetch_add(1, std::memory_order_relaxed);
  switch (result->status) {
    case core::Status::kCompleted:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case core::Status::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case core::Status::kDeadline:
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case core::Status::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (result->status != core::Status::kCompleted) return;
  // Only full solves are worth replaying; partial (stopped) results depend
  // on wall-clock timing and must never be served to a future request.
  // Warm results are excluded too: they depend on the pool snapshot.
  if (job->request.use_cache && !job->request.warm_start) {
    cache_.put(job->fingerprint, result);
  }
  // Every completed feasible job deposits its best configuration into the
  // problem's warm-start pool (no opt-in needed to GIVE — only to TAKE).
  if (result->found_feasible && !result->best_config.empty()) {
    cache_.put_warm(job->problem_fp, result->best_config, result->best_cost);
  }
}

void SolveService::execute(const std::shared_ptr<JobState>& job) {
  const SolveRequest& request = job->request;
  const util::StopToken stop = job->stop.token();

  auto response = std::make_shared<SolveResponse>();
  response->fingerprint = job->fingerprint;
  response->tag = request.tag;

  util::WallTimer timer;
  std::shared_ptr<core::SolveResult> result;
  try {
    auto backend = make_backend(request.backend);
    backend->set_batch_threads(options_.backend_batch_threads);
    core::SaimSolver solver(*request.problem, *backend, request.options);
    job->solve_started_at = std::chrono::steady_clock::now();
    result = std::make_shared<core::SolveResult>(
        solver.solve(request.evaluator, stop));
  } catch (const std::exception& e) {
    result = std::make_shared<core::SolveResult>();
    result->status = core::Status::kError;
    response->error = e.what();
  } catch (...) {
    // User-supplied evaluators can throw anything; letting it escape the
    // worker thread would terminate the whole service.
    result = std::make_shared<core::SolveResult>();
    result->status = core::Status::kError;
    response->error = "unknown exception in solve job";
  }
  response->wall_ms = timer.milliseconds();
  response->status = result->status;

  record_outcome(job, result);
  response->result = std::move(result);
  finish(job, std::move(response));
}

void SolveService::execute_batch(
    const std::vector<std::shared_ptr<JobState>>& members) {
  util::WallTimer timer;
  if (members.size() > 1) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_jobs_.fetch_add(members.size(), std::memory_order_relaxed);
  }

  std::vector<bool> seeded(members.size(), false);

  // Finishes one member the moment its DualAscent settles — waiters on a
  // short or deadline-stopped member wake while its batch-mates run on.
  std::vector<bool> finished(members.size(), false);
  const auto finish_member = [&](std::size_t i, core::BatchOutcome& outcome) {
    const auto& member = members[i];
    auto response = std::make_shared<SolveResponse>();
    response->fingerprint = member->fingerprint;
    response->tag = member->request.tag;
    response->batch_size = members.size();
    response->warm_started = seeded[i];
    response->wall_ms = timer.milliseconds();
    response->error = std::move(outcome.error);
    auto result =
        std::make_shared<core::SolveResult>(std::move(outcome.result));
    response->status = result->status;
    record_outcome(member, result);
    response->result = std::move(result);
    finished[i] = true;
    finish(member, std::move(response));
  };

  // Every member that had not yet settled when a batch-level failure
  // lands (unknown backend, model build, a throwing evaluator copy) fails
  // with the same diagnosis instead of leaving its waiters hanging.
  const auto fail_rest = [&](const char* what) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (finished[i]) continue;
      core::BatchOutcome outcome;
      outcome.result.status = core::Status::kError;
      outcome.error = what;
      finish_member(i, outcome);
    }
  };

  try {
    // Inside the try: evaluator copies are user code and may throw, like
    // everything else user-supplied on this path (mirrors execute()'s
    // "letting it escape the worker thread would terminate the service").
    std::vector<core::BatchJob> jobs;
    jobs.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      const SolveRequest& request = members[i]->request;
      core::BatchJob batch_job;
      batch_job.options = request.options;
      batch_job.evaluator = request.evaluator;
      batch_job.stop = members[i]->stop.token();
      if (request.warm_start) {
        batch_job.warm_starts = cache_.warm_samples(members[i]->problem_fp);
        seeded[i] = !batch_job.warm_starts.empty();
        if (seeded[i]) warm_seeded_.fetch_add(1, std::memory_order_relaxed);
      }
      jobs.push_back(std::move(batch_job));
    }
    auto backend = make_backend(members.front()->request.backend);
    backend->set_batch_threads(options_.backend_batch_threads);
    const auto solve_start = std::chrono::steady_clock::now();
    for (const auto& member : members) member->solve_started_at = solve_start;
    core::solve_batch(*members.front()->request.problem, *backend,
                      std::move(jobs), finish_member);
  } catch (const std::exception& e) {
    fail_rest(e.what());
  } catch (...) {
    fail_rest("unknown exception in solve batch");
  }
}

void SolveService::finish(const std::shared_ptr<JobState>& job,
                          std::shared_ptr<SolveResponse> response) {
  // Stamp the stage timings before the response goes const-visible. Epoch
  // timestamps mean the stage never happened (queued job failed at
  // shutdown, batch build threw before the solve) — those stages read 0.
  using float_ms = std::chrono::duration<double, std::milli>;
  constexpr std::chrono::steady_clock::time_point kEpoch{};
  const auto now = std::chrono::steady_clock::now();
  response->finished_at = now;
  if (job->submitted_at != kEpoch) {
    response->timing.total_ms = float_ms(now - job->submitted_at).count();
    hist_total_ms_.observe(response->timing.total_ms);
  }
  if (job->claimed_at != kEpoch) {
    response->timing.queue_ms =
        float_ms(job->claimed_at - job->submitted_at).count();
    hist_queue_ms_.observe(response->timing.queue_ms);
    if (job->solve_started_at != kEpoch) {
      response->timing.setup_ms =
          float_ms(job->solve_started_at - job->claimed_at).count();
      response->timing.solve_ms =
          float_ms(now - job->solve_started_at).count();
      hist_setup_ms_.observe(response->timing.setup_ms);
      hist_solve_ms_.observe(response->timing.solve_ms);
    }
  }
  {
    util::MutexLock lock(inflight_mutex_);
    const auto it = inflight_.find(job->fingerprint);
    if (it != inflight_.end() && it->second.lock() == job) {
      inflight_.erase(it);
    }
  }
  {
    util::MutexLock lock(job->mutex);
    job->response = std::move(response);
  }
  job->cv.notify_all();
}

void SolveService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      util::MutexLock lock(inflight_mutex_);
      accepting_ = false;
    }
    // Fail everything still queued; running jobs finish cooperatively.
    // Re-pushed duplicates of already-claimed jobs are skipped, same as
    // in worker_loop.
    for (auto& job : queue_.drain()) {
      if (job->started.exchange(true, std::memory_order_acq_rel)) continue;
      job->stop.request_stop();
      auto response = std::make_shared<SolveResponse>();
      auto result = std::make_shared<core::SolveResult>();
      result->status = core::Status::kCancelled;
      response->result = std::move(result);
      response->status = core::Status::kCancelled;
      response->fingerprint = job->fingerprint;
      response->tag = job->request.tag;
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      finish(job, std::move(response));
    }
    queue_.close();
    pool_.shutdown();
  });
}

SolveService::Stats SolveService::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_jobs = batched_jobs_.load(std::memory_order_relaxed);
  s.warm_seeded = warm_seeded_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

}  // namespace saim::service
