// ShardRouter — the I/O-free brain of the sharded serving front door.
//
// tools/saim_shard runs N `saim_serve --stream` children (one per shard,
// wrapped in ProcessChild) and pumps this router between them and the
// client stream. The router owns every piece of sharding state:
//
//   * a consistent-hash ring (HashRing) over the shards, keyed by the
//     canonical PROBLEM fingerprint (problems/fingerprint) of each job's
//     instance — all jobs over one instance land on one shard, so that
//     shard's ResultCache, coalescer, batcher and warm-start pool stay
//     hot for its keyslice, and removing a shard only remaps the keys it
//     owned (cache locality survives resharding);
//   * per-shard outstanding-job tables: a pending queue (routed, not yet
//     written) and an in-flight set (written, awaiting a result), with a
//     bounded in-flight window per shard for backpressure — the pump
//     never stuffs more than `window` unanswered jobs into one child, so
//     pipes cannot deadlock and a slow shard throttles only itself;
//   * seq remapping: each child numbers ITS accepted jobs 0..k in its own
//     completion order; the router rewrites that per-shard `seq` into one
//     global completion order across all shards. Lines a child rejected
//     at submission carry no seq (per docs/PROTOCOL.md) and keep none
//     here, so accepted jobs always see the contiguous global range;
//   * failover: when a child dies (on_child_down), its unanswered jobs —
//     pending and in-flight — are requeued onto the ring's next live
//     shard and rerun from scratch; cold jobs are deterministic per seed,
//     so a rerun emits the bit-identical result. Every accepted job
//     produces exactly one output line even across a crash. Only when no
//     shard is left do jobs error out (with a `shard` field naming the
//     casualty);
//   * the control dialect on both sides: upstream {"cmd":"ping"}/"drain"
//     lines are answered by the router itself; pongs from children (the
//     router's own health probes) are consumed via take_pong, never
//     forwarded;
//   * replication (RouterOptions::replicas = R): a key's replica set is
//     its owner plus the next R-1 distinct shards clockwise, recomputed
//     deterministically on every membership change. On top of it ride
//     hedged requests (dispatch_hedges: a job stuck in flight past an
//     adaptive per-shard threshold is re-sent — same token — to a
//     replica; first result wins, token dedupe swallows the loser),
//     hot-key routing (an instance twin bound for an overloaded owner
//     runs on its least-loaded replica instead) and admission control
//     (past a global pending bound, the lowest-priority job is shed
//     with a "delayed"-tagged error instead of queueing unboundedly).
//
// To keep every request byte the shard sees equivalent to what a
// single-process saim_serve would have parsed, the router rewrites only
// the job id (to a unique routing token, restored on the way out) and
// validates lines with the exact same parser (service/job_parser) — a
// router-rejected line carries the error text the shard would have
// produced. Result lines pass through byte-identical except for the id
// and seq fields, so objective values are never re-serialized.
//
// Single-threaded by design: the owning pump drives accept_line /
// take_sendable / on_child_line / on_child_down from one thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_checker.hpp"

namespace saim::service {

/// Consistent-hash ring: every shard owns `vnodes` pseudo-random points
/// on the 64-bit ring; a key belongs to the first point clockwise.
/// Removing a shard redistributes only the keys it owned.
class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64);

  void add(std::size_t shard);
  void remove(std::size_t shard);
  [[nodiscard]] bool contains(std::size_t shard) const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// The shard owning `key`. Throws std::runtime_error on an empty ring.
  [[nodiscard]] std::size_t route(std::uint64_t key) const;

  /// The replica set for `key`: up to `count` DISTINCT live shards,
  /// starting at the owner and walking clockwise. Deterministic for a
  /// given membership (a pure function of the vnode points, which are a
  /// pure function of the slot indices), clamped to the live shard count.
  /// Removing a shard that is not in a key's replica set leaves that set
  /// unchanged — the walk skips only the removed shard's points — so
  /// membership changes remap replica sets minimally, like ownership.
  /// Throws std::runtime_error on an empty ring.
  [[nodiscard]] std::vector<std::size_t> replicas(std::uint64_t key,
                                                 std::size_t count) const;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::size_t> ring_;  ///< point -> shard
  std::set<std::size_t> shards_;
};

struct RouterOptions {
  std::size_t shards = 2;
  /// In-flight (written, unanswered) jobs allowed per shard.
  std::size_t window = 32;
  /// Virtual nodes per shard on the hash ring.
  std::size_t vnodes = 64;
  /// Replication factor R: a job runs on its key's owner, but warm pools
  /// (Supervisor handoff/gossip), hedges and hot-key twins extend to the
  /// next R-1 distinct shards clockwise. 1 = no replication.
  std::size_t replicas = 1;
  /// Hedging (needs replicas >= 2): re-dispatch a job still in flight on
  /// its shard after max(hedge_min_ms, that shard's round-trip p95) to a
  /// replica, deduping by routing token — first result wins, the loser
  /// is swallowed. 0 disables hedging.
  double hedge_min_ms = 0.0;
  /// Hot-key routing (needs replicas >= 2): an instance-twin job (its
  /// fingerprint was seen before, so the replicas' caches/pools can hit)
  /// whose owner already has this many unanswered jobs is routed to the
  /// least-loaded replica instead of queueing on the owner. 0 disables.
  std::size_t hot_key_depth = 0;
  /// Admission control: once this many routed jobs wait for a window
  /// slot, the lowest-priority pending job is shed with a "delayed"-
  /// tagged error instead of growing the backlog. 0 = unbounded.
  std::size_t max_queue_depth = 0;
};

class ShardRouter {
 public:
  struct Stats {
    std::uint64_t accepted = 0;  ///< jobs routed onto the ring
    std::uint64_t rejected = 0;  ///< local error lines (bad input)
    std::uint64_t emitted = 0;   ///< job result/error lines sent downstream
    std::uint64_t requeued = 0;  ///< jobs moved off a dead shard
    std::uint64_t orphaned = 0;  ///< jobs errored: no live shard remained
    std::uint64_t hedges = 0;    ///< hedge copies dispatched to a replica
    std::uint64_t hedge_wins = 0;  ///< jobs whose hedge copy answered first
    std::uint64_t sheds = 0;     ///< jobs shed by admission control
    std::uint64_t replica_hits = 0;  ///< hot-key twins routed to a replica
    std::vector<std::uint64_t> routed_per_shard;
  };

  explicit ShardRouter(RouterOptions options);

  /// Feeds one input line. `line_no` is the 1-based input line number
  /// (blank lines included) so default job ids match saim_serve's jobN.
  /// Returns lines to emit downstream immediately: a local reject's error
  /// line, a ping's pong, or a drain that was already satisfied.
  std::vector<std::string> accept_line(const std::string& line,
                                       std::size_t line_no);

  /// Request lines to write to `shard` now, bounded by the in-flight
  /// window; the returned jobs are marked in flight.
  std::vector<std::string> take_sendable(std::size_t shard);

  /// Processes one line read from `shard`'s stdout. Returns lines to emit
  /// downstream (the id-restored, seq-remapped job line, plus any drain
  /// acknowledgements it unblocked); empty for consumed control replies.
  std::vector<std::string> on_child_line(std::size_t shard,
                                         const std::string& line);

  /// The shard died: drop it from the ring and requeue its unanswered
  /// jobs onto the next live shards. Returns error lines for jobs that
  /// could not be placed (no shards left), plus unblocked drain acks.
  /// Also the graceful-removal path (live resharding): the departing
  /// shard's process may still answer requeued tokens late — the first
  /// result per token wins, the other copy is dropped, so every job
  /// still emits exactly once.
  std::vector<std::string> on_child_down(std::size_t shard);

  /// Re-adds a dead shard slot to the ring (the Supervisor respawned its
  /// process). Its vnode points are a pure function of the slot index,
  /// so exactly the keyslice it owned before the crash moves back — and
  /// with it any warm-pool entries the Supervisor forwards.
  void revive_shard(std::size_t shard);

  /// Appends a brand-new shard slot (live resharding grow); returns its
  /// index. The new shard starts live and on the ring.
  std::size_t add_shard();

  /// Dispatches due hedges (no-op unless hedge_min_ms > 0 and replicas
  /// >= 2): every job in flight on one shard for longer than
  /// max(hedge_min_ms, that shard's round-trip p95) gets a copy of its
  /// rewritten line — SAME routing token — queued onto the next live
  /// replica. The first result to come back wins (on_child_line dedupes
  /// by token); the loser's line is swallowed as a late duplicate and
  /// both copies' window slots are released. Call once per pump cycle.
  /// Returns the number of hedges dispatched.
  std::size_t dispatch_hedges();

  /// Moves `shard`'s written-but-unanswered jobs back to the head of its
  /// pending queue (original accept order): the sole-shard respawn path,
  /// where failing over is impossible and orphaning needless — ring
  /// membership stays intact and the jobs replay into the replacement
  /// process.
  void requeue_inflight(std::size_t shard);

  /// True when a pong arrived from `shard` since the last call (clears).
  bool take_pong(std::size_t shard);

  /// The latest {"warm":{...}} snapshot `shard` sent in reply to an
  /// export_warm probe, serialized; consumed by the Supervisor's warm
  /// handoff. Clears on read.
  std::optional<std::string> take_warm_export(std::size_t shard);

  /// The latest {"service":{...}} stats snapshot `shard` sent in reply to
  /// a Supervisor stats probe, serialized; consumed by the fleet stats
  /// aggregation. Clears on read.
  std::optional<std::string> take_stats_export(std::size_t shard);

  /// Round-trip latency histogram of `shard`'s answered jobs (written to
  /// the child -> result line back, ms). Accumulates across restarts of
  /// the same slot; empty snapshot for an out-of-range index.
  [[nodiscard]] obs::HistogramSnapshot latency_snapshot(
      std::size_t shard) const;

  /// Round trips of the hedge copies that WON their race (hedge written
  /// -> its result back, ms): the latency the tail actually saw instead
  /// of waiting out the slow owner.
  [[nodiscard]] obs::HistogramSnapshot hedge_win_snapshot() const {
    return hedge_win_ms_.snapshot();
  }

  [[nodiscard]] bool alive(std::size_t shard) const;
  [[nodiscard]] std::size_t live_shards() const { return ring_.shard_count(); }
  /// Total slots ever created (live + dead); endpoints index this range.
  [[nodiscard]] std::size_t shard_slots() const { return alive_.size(); }
  /// The live shard owning problem fingerprint `fp` right now (warm
  /// handoff targeting). Throws std::runtime_error on an empty ring.
  [[nodiscard]] std::size_t owner_of(std::uint64_t fp) const {
    return ring_.route(fp);
  }
  /// `fp`'s full replica set under this router's replication factor:
  /// the owner plus the next R-1 distinct live shards (warm handoff and
  /// gossip targeting). Throws std::runtime_error on an empty ring.
  [[nodiscard]] std::vector<std::size_t> replica_set(std::uint64_t fp) const {
    return ring_.replicas(fp, options_.replicas);
  }
  [[nodiscard]] std::size_t replication_factor() const {
    return options_.replicas;
  }
  /// Jobs accepted but not yet answered (any shard, any state).
  [[nodiscard]] std::size_t outstanding() const { return jobs_.size(); }
  [[nodiscard]] std::size_t pending(std::size_t shard) const;
  [[nodiscard]] std::size_t inflight(std::size_t shard) const;
  [[nodiscard]] std::size_t total_pending() const;
  /// Nothing left to emit: no outstanding jobs, no pending drains.
  [[nodiscard]] bool idle() const { return jobs_.empty() && drains_.empty(); }
  [[nodiscard]] bool any_error() const { return any_error_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Job {
    std::uint64_t ordinal = 0;   ///< accept order (drain barriers key on it)
    std::string display_id;      ///< original id (or "jobN") for output
    std::string line;            ///< rewritten request line (id = token)
    std::uint64_t fingerprint = 0;  ///< routing key (problem content hash)
    std::size_t shard = 0;
    bool inflight = false;
    /// When the line was handed out for writing (take_sendable); epoch
    /// until then. Feeds the per-shard round-trip latency histogram.
    std::chrono::steady_clock::time_point sent_at{};
    /// Priority band (0 low, 1 normal, 2 high): admission control sheds
    /// lowest first.
    int priority = 1;
    /// Hedge copy, when one was dispatched: the replica carrying the
    /// duplicate line (same token). At most one hedge per job.
    std::optional<std::size_t> hedge_shard;
    bool hedge_inflight = false;  ///< hedge copy written (vs still pending)
    std::chrono::steady_clock::time_point hedge_sent_at{};
  };
  struct Drain {
    std::uint64_t before = 0;  ///< waits for jobs with ordinal < before
    std::size_t remaining = 0;
    std::string id;
  };

  /// One outstanding job finished (emitted or orphaned): advance drains.
  void finished(std::uint64_t ordinal, std::vector<std::string>* out);
  [[nodiscard]] std::string drained_line(const Drain& drain) const;
  /// Unanswered jobs attributed to `shard` (pending + in flight).
  [[nodiscard]] std::size_t depth(std::size_t shard) const;
  /// Drops `token` from `shard`'s pending queue if still there.
  void unqueue(std::size_t shard, const std::string& token);
  /// Admission control: called with a full backlog before accepting a
  /// job of `incoming_priority`. Either sheds the lowest-priority
  /// pending job (emitting its "delayed" error, WITH its seq — it was
  /// accepted) and returns true (admit the incoming job), or returns
  /// false (shed the incoming job instead: it is not above the floor).
  bool shed_for(int incoming_priority, std::vector<std::string>* out);

  /// Enforces the class comment's "single-threaded by design": mutating
  /// entry points bind to the first calling thread and abort on any other
  /// (see util/thread_checker.hpp). Lock-free state stays honest.
  util::ThreadChecker thread_checker_{"ShardRouter"};

  RouterOptions options_;
  HashRing ring_;
  std::vector<bool> alive_;
  std::vector<std::deque<std::string>> pending_;  ///< tokens, FIFO
  std::vector<std::unordered_set<std::string>> inflight_;
  std::vector<bool> pong_;
  std::vector<std::optional<std::string>> warm_export_;  ///< per shard
  std::vector<std::optional<std::string>> stats_export_;  ///< per shard
  /// Per-shard round-trip latency (unique_ptr: atomics are immovable).
  std::vector<std::unique_ptr<obs::Histogram>> latency_;
  obs::Histogram hedge_win_ms_;  ///< round trips of winning hedge copies
  std::unordered_map<std::string, Job> jobs_;  ///< token -> outstanding job
  /// Problem fingerprint per instance-source key: a duplicated-instance
  /// stream builds (and hashes) the instance once, not once per line.
  std::unordered_map<std::string, std::uint64_t> fingerprint_memo_;
  std::vector<Drain> drains_;
  std::uint64_t next_ordinal_ = 0;
  std::int64_t next_seq_ = 0;
  bool any_error_ = false;
  Stats stats_;
};

}  // namespace saim::service
