// The shaped energy landscape SAIM minimizes (paper eq. 3 + eq. 5):
//
//   L(x; lambda) = f(x) + P * ||g(x)||^2 + lambda^T g(x)
//
// For linear g_m(x) = a_m.x - b_m the quadratic penalty expands to fixed
// couplings  2P a_mi a_mj  and fixed linear/constant parts, while the
// Lagrange term lambda^T g is *linear* in x. Consequence, central to the
// implementation: updating lambda between SAIM iterations never touches the
// couplings J — only the linear coefficients q (hence the Ising fields h and
// the offset) move. set_lambda() therefore costs O(nnz(A) + n), and the
// p-bit machine's coupling CSR built at bind() stays valid for the whole
// run. This mirrors the paper's "the Ising coefficients J and h are
// consequently updated at each iteration" at the minimal possible cost.
#pragma once

#include <span>
#include <vector>

#include "ising/ising_model.hpp"
#include "ising/qubo_model.hpp"
#include "problems/constrained_problem.hpp"

namespace saim::lagrange {

class LagrangianModel {
 public:
  /// Builds the lambda = 0 landscape: f + P ||g||^2. The problem reference
  /// must outlive the model.
  LagrangianModel(const problems::ConstrainedProblem& problem, double penalty);

  [[nodiscard]] std::size_t n() const noexcept { return qubo_.n(); }
  [[nodiscard]] double penalty() const noexcept { return penalty_; }
  [[nodiscard]] const problems::ConstrainedProblem& problem() const noexcept {
    return *problem_;
  }

  /// Current multipliers (size = number of constraints).
  [[nodiscard]] std::span<const double> lambda() const noexcept {
    return lambda_;
  }

  /// Rewrites the landscape for new multipliers. O(nnz(A) + n); couplings
  /// untouched. The bound IsingModel's fields/offset are refreshed in place.
  void set_lambda(std::span<const double> lambda);

  /// The current L as a QUBO over the slack-extended variables.
  [[nodiscard]] const ising::QuboModel& qubo() const noexcept { return qubo_; }

  /// The current L as an Ising model (what the p-bit machine samples).
  /// Stable address across set_lambda() calls.
  [[nodiscard]] const ising::IsingModel& ising() const noexcept {
    return ising_;
  }

  /// L(x; lambda) evaluated directly from f, g and lambda — used by tests to
  /// cross-check the QUBO/Ising images.
  [[nodiscard]] double lagrangian(std::span<const std::uint8_t> x) const;

 private:
  void rebuild_linear();

  const problems::ConstrainedProblem* problem_;
  double penalty_;
  std::vector<double> lambda_;

  ising::QuboModel qubo_;          ///< current L (couplings fixed)
  std::vector<double> base_linear_;  ///< q of f + P||g||^2 (lambda = 0)
  double base_offset_ = 0.0;

  ising::IsingModel ising_;           ///< Ising image of qubo_
  std::vector<double> ising_row_sum_;  ///< sum_j Q_ij, fixed (for h refresh)
  double ising_quad_offset_ = 0.0;     ///< sum_{i<j} Q_ij / 4, fixed
};

/// The paper's penalty heuristic P = alpha * d * N (section III-A, after
/// [16],[17]): d = density of the coupling matrix (with the fixed-spin
/// convention for linear objectives), N = total spin count incl. slack.
double heuristic_penalty(const problems::ConstrainedProblem& problem,
                         double alpha);

}  // namespace saim::lagrange
