#include "lagrange/lagrangian_model.hpp"

#include <stdexcept>

#include "ising/convert.hpp"

namespace saim::lagrange {

LagrangianModel::LagrangianModel(const problems::ConstrainedProblem& problem,
                                 double penalty)
    : problem_(&problem),
      penalty_(penalty),
      lambda_(problem.num_constraints(), 0.0),
      qubo_(problem.n()) {
  if (penalty_ < 0.0) {
    throw std::invalid_argument("LagrangianModel: penalty must be >= 0");
  }

  // f part.
  const auto& f = problem.objective();
  f.for_each_quadratic([&](std::size_t i, std::size_t j, double q) {
    qubo_.add_quadratic(i, j, q);
  });
  for (std::size_t i = 0; i < qubo_.n(); ++i) {
    const double q = f.linear(i);
    if (q != 0.0) qubo_.add_linear(i, q);
  }
  qubo_.add_offset(f.offset());

  // P * ||g||^2 part: for g_m = a.x - b,
  //   g_m^2 = sum_j a_j^2 x_j + 2 sum_{j<k} a_j a_k x_j x_k
  //           - 2 b sum_j a_j x_j + b^2         (x_j^2 == x_j).
  for (const auto& row : problem.constraints()) {
    for (std::size_t u = 0; u < row.terms.size(); ++u) {
      const auto [j, aj] = row.terms[u];
      qubo_.add_linear(j, penalty_ * aj * (aj - 2.0 * row.rhs));
      for (std::size_t v = u + 1; v < row.terms.size(); ++v) {
        const auto [k, ak] = row.terms[v];
        qubo_.add_quadratic(j, k, 2.0 * penalty_ * aj * ak);
      }
    }
    qubo_.add_offset(penalty_ * row.rhs * row.rhs);
  }

  base_linear_.assign(qubo_.linear_terms().begin(),
                      qubo_.linear_terms().end());
  base_offset_ = qubo_.offset();

  // Ising image + cached quantities for O(n) field refresh: with couplings
  // fixed, h_i = -(q_i/2 + row_sum_i/4) depends on q_i only.
  ising_ = ising::qubo_to_ising(qubo_);
  ising_row_sum_.assign(qubo_.n(), 0.0);
  ising_quad_offset_ = 0.0;
  qubo_.for_each_quadratic([&](std::size_t i, std::size_t j, double q) {
    ising_row_sum_[i] += q;
    ising_row_sum_[j] += q;
    ising_quad_offset_ += q / 4.0;
  });
}

void LagrangianModel::set_lambda(std::span<const double> lambda) {
  if (lambda.size() != lambda_.size()) {
    throw std::invalid_argument("LagrangianModel::set_lambda: size mismatch");
  }
  lambda_.assign(lambda.begin(), lambda.end());
  rebuild_linear();
}

void LagrangianModel::rebuild_linear() {
  // q = base_q + sum_m lambda_m a_m ;  c = base_c - sum_m lambda_m b_m.
  auto q = qubo_.mutable_linear_terms();
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = base_linear_[i];
  double offset = base_offset_;
  const auto& constraints = problem_->constraints();
  for (std::size_t m = 0; m < constraints.size(); ++m) {
    const double lm = lambda_[m];
    if (lm == 0.0) continue;
    for (const auto& [j, aj] : constraints[m].terms) {
      q[j] += lm * aj;
    }
    offset -= lm * constraints[m].rhs;
  }
  qubo_.set_offset(offset);

  // Refresh Ising fields/offset in place (couplings and row sums fixed).
  double ising_offset = offset + ising_quad_offset_;
  for (std::size_t i = 0; i < q.size(); ++i) {
    ising_.set_field(i, -(q[i] / 2.0 + ising_row_sum_[i] / 4.0));
    ising_offset += q[i] / 2.0;
  }
  ising_.set_offset(ising_offset);
}

double LagrangianModel::lagrangian(std::span<const std::uint8_t> x) const {
  double acc = problem_->objective_value(x);
  const auto& constraints = problem_->constraints();
  for (std::size_t m = 0; m < constraints.size(); ++m) {
    const double g = constraints[m].eval(x);
    acc += penalty_ * g * g + lambda_[m] * g;
  }
  return acc;
}

double heuristic_penalty(const problems::ConstrainedProblem& problem,
                         double alpha) {
  return alpha * problem.density_for_penalty() *
         static_cast<double>(problem.n());
}

}  // namespace saim::lagrange
