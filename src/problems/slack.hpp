// Binary slack encoding of inequality constraints (paper section IV-A).
//
// An inequality a^T x <= b with nonnegative integer data is turned into the
// equality a^T x + x_S = b by a slack variable 0 <= x_S <= b, which is then
// binary-decomposed as
//     x_S = x_S^0 + 2 x_S^1 + ... + 2^(Q-1) x_S^(Q-1),
//     Q   = floor(log2(b) + 1)
// adding Q binary variables whose coefficients 2^q extend the constraint
// row. Q is chosen so the slack can represent every value in [0, b]
// (its maximum 2^Q - 1 >= b; overshoot values simply correspond to
// penalized, unreachable equality states).
#pragma once

#include <cstdint>
#include <vector>

namespace saim::problems {

struct SlackEncoding {
  std::int64_t bound = 0;                  ///< b of the original inequality
  std::vector<std::int64_t> coefficients;  ///< 1, 2, 4, ..., 2^(Q-1)

  [[nodiscard]] std::size_t num_bits() const noexcept {
    return coefficients.size();
  }

  /// Maximum representable slack value 2^Q - 1 (>= bound).
  [[nodiscard]] std::int64_t max_value() const noexcept;

  /// Decodes slack bits into the integer slack value.
  [[nodiscard]] std::int64_t decode(
      const std::vector<std::uint8_t>& bits) const;

  /// Encodes `value` (clamped to [0, max_value()]) into bits, little-endian.
  [[nodiscard]] std::vector<std::uint8_t> encode(std::int64_t value) const;
};

/// Builds the encoding for slack range [0, bound]. bound >= 0; bound == 0
/// yields zero slack bits (the inequality is already an equality).
SlackEncoding make_slack_encoding(std::int64_t bound);

}  // namespace saim::problems
