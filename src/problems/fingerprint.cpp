#include "problems/fingerprint.hpp"

namespace saim::problems {

std::uint64_t fingerprint(const ConstrainedProblem& problem) {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(problem.n()));
  fp.mix(static_cast<std::uint64_t>(problem.num_decision()));

  const auto& objective = problem.objective();
  fp.mix(objective.offset());
  for (const double q : objective.linear_terms()) fp.mix(q);
  // Couplings through the sparse upper-triangle walk: indices pin the
  // positions, so permuted problems do not collide.
  objective.for_each_quadratic([&](std::size_t i, std::size_t j, double v) {
    fp.mix(static_cast<std::uint64_t>(i));
    fp.mix(static_cast<std::uint64_t>(j));
    fp.mix(v);
  });

  fp.mix(static_cast<std::uint64_t>(problem.num_constraints()));
  for (const auto& row : problem.constraints()) {
    fp.mix(static_cast<std::uint64_t>(row.terms.size()));
    for (const auto& [index, coeff] : row.terms) {
      fp.mix(static_cast<std::uint64_t>(index));
      fp.mix(coeff);
    }
    fp.mix(row.rhs);
  }
  return fp.digest();
}

}  // namespace saim::problems
