// Mean-variance portfolio selection with a budget constraint — another of
// the paper's motivating applications ("capital budgeting, portfolio
// optimization"). Unlike QKP/MKP this exercises the *general-double*
// quadratic path: the covariance matrix is dense, real-valued and positive
// semi-definite, and the objective mixes a linear return term with a
// quadratic risk term:
//
//   min  -mu^T x + kappa * x^T Sigma x     over x in {0,1}^N
//   s.t.  p^T x <= B                       (prices, budget)
//
// Covariances are generated from a K-factor model Sigma = L L^T + D
// (idiosyncratic diagonal D > 0), which guarantees PSD and produces the
// correlated-risk structure that makes naive greedy selection fail.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "problems/constrained_problem.hpp"
#include "problems/slack.hpp"

namespace saim::problems {

class PortfolioInstance {
 public:
  PortfolioInstance() = default;
  PortfolioInstance(std::string name, std::vector<double> expected_returns,
                    std::vector<double> covariance,  // n*n row-major PSD
                    std::vector<std::int64_t> prices, std::int64_t budget,
                    double risk_aversion);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t n() const noexcept { return returns_.size(); }
  [[nodiscard]] double expected_return(std::size_t i) const {
    return returns_.at(i);
  }
  [[nodiscard]] double covariance(std::size_t i, std::size_t j) const;
  [[nodiscard]] std::int64_t price(std::size_t i) const {
    return prices_.at(i);
  }
  [[nodiscard]] std::int64_t budget() const noexcept { return budget_; }
  [[nodiscard]] double risk_aversion() const noexcept {
    return risk_aversion_;
  }

  /// Portfolio return mu^T x.
  [[nodiscard]] double portfolio_return(
      std::span<const std::uint8_t> x) const;
  /// Portfolio variance x^T Sigma x.
  [[nodiscard]] double portfolio_risk(std::span<const std::uint8_t> x) const;
  /// The minimization objective -return + kappa * risk.
  [[nodiscard]] double objective(std::span<const std::uint8_t> x) const {
    return -portfolio_return(x) + risk_aversion_ * portfolio_risk(x);
  }
  [[nodiscard]] std::int64_t total_price(
      std::span<const std::uint8_t> x) const;
  [[nodiscard]] bool feasible(std::span<const std::uint8_t> x) const {
    return total_price(x) <= budget_;
  }

 private:
  std::string name_;
  std::vector<double> returns_;
  std::vector<double> covariance_;  ///< n*n row-major, symmetric PSD
  std::vector<std::int64_t> prices_;
  std::int64_t budget_ = 0;
  double risk_aversion_ = 1.0;
};

struct PortfolioGeneratorParams {
  std::size_t n = 30;          ///< number of candidate assets
  std::size_t factors = 3;     ///< K of the factor model
  std::uint64_t seed = 1;
  double mean_return = 0.08;   ///< returns ~ U[0, 2*mean]
  double factor_vol = 0.15;    ///< factor loadings ~ U[-vol, vol]
  double idio_vol = 0.05;      ///< idiosyncratic stddev
  std::int64_t max_price = 100;  ///< prices ~ U[1, max]
  double budget_fraction = 0.4;  ///< B = fraction * sum(prices)
  double risk_aversion = 2.0;
};

/// Deterministic factor-model instance.
PortfolioInstance generate_portfolio(const PortfolioGeneratorParams& params);

struct PortfolioMapping {
  ConstrainedProblem problem;
  SlackEncoding slack;
  double objective_scale = 1.0;
  double constraint_scale = 1.0;
};

/// Lowers to the equality-constrained normalized form (slack bits on the
/// budget row), exactly like the QKP path.
PortfolioMapping portfolio_to_problem(const PortfolioInstance& instance,
                                      bool normalize = true);

}  // namespace saim::problems
