#include "problems/mkp.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "problems/file_io.hpp"
#include "util/rng.hpp"

namespace saim::problems {

MkpInstance::MkpInstance(std::string name, std::vector<std::int64_t> values,
                         std::vector<std::int64_t> weights,
                         std::vector<std::int64_t> capacities)
    : name_(std::move(name)),
      values_(std::move(values)),
      weights_(std::move(weights)),
      capacities_(std::move(capacities)) {
  if (weights_.size() != values_.size() * capacities_.size()) {
    throw std::invalid_argument("MkpInstance: A must be m*n");
  }
  for (const auto c : capacities_) {
    if (c < 0) throw std::invalid_argument("MkpInstance: capacities >= 0");
  }
  for (const auto w : weights_) {
    if (w < 0) throw std::invalid_argument("MkpInstance: weights >= 0");
  }
}

std::int64_t MkpInstance::weight(std::size_t i, std::size_t j) const {
  if (i >= m() || j >= n()) {
    throw std::out_of_range("MkpInstance::weight: index out of range");
  }
  return weights_[i * n() + j];
}

std::span<const std::int64_t> MkpInstance::weight_row(std::size_t i) const {
  if (i >= m()) {
    throw std::out_of_range("MkpInstance::weight_row: index out of range");
  }
  return {weights_.data() + i * n(), n()};
}

std::int64_t MkpInstance::profit(std::span<const std::uint8_t> x) const {
  std::int64_t p = 0;
  for (std::size_t j = 0; j < n(); ++j) {
    if (x[j]) p += values_[j];
  }
  return p;
}

std::int64_t MkpInstance::load(std::size_t i,
                               std::span<const std::uint8_t> x) const {
  const std::int64_t* row = weights_.data() + i * n();
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < n(); ++j) {
    if (x[j]) acc += row[j];
  }
  return acc;
}

bool MkpInstance::feasible(std::span<const std::uint8_t> x) const {
  for (std::size_t i = 0; i < m(); ++i) {
    if (load(i, x) > capacities_[i]) return false;
  }
  return true;
}

std::int64_t MkpInstance::max_objective_coefficient() const {
  std::int64_t mx = 0;
  for (const auto v : values_) mx = std::max(mx, std::abs(v));
  return mx;
}

std::int64_t MkpInstance::max_constraint_coefficient() const {
  std::int64_t mx = 0;
  for (const auto w : weights_) mx = std::max(mx, w);
  for (const auto c : capacities_) mx = std::max(mx, c);
  return mx;
}

MkpInstance generate_mkp(const MkpGeneratorParams& params) {
  if (params.n == 0 || params.m == 0) {
    throw std::invalid_argument("generate_mkp: n and m must be positive");
  }
  if (params.tightness <= 0.0 || params.tightness > 1.0) {
    throw std::invalid_argument("generate_mkp: tightness must be in (0,1]");
  }
  util::Xoshiro256pp rng(params.seed);

  const std::size_t n = params.n;
  const std::size_t m = params.m;
  std::vector<std::int64_t> weights(m * n);
  for (auto& w : weights) w = rng.range(1, params.max_weight);

  std::vector<std::int64_t> capacities(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::int64_t row_sum = 0;
    for (std::size_t j = 0; j < n; ++j) row_sum += weights[i * n + j];
    capacities[i] = static_cast<std::int64_t>(
        params.tightness * static_cast<double>(row_sum));
  }

  // Chu–Beasley correlated values: column weight mean plus uniform noise.
  std::vector<std::int64_t> values(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::int64_t col_sum = 0;
    for (std::size_t i = 0; i < m; ++i) col_sum += weights[i * n + j];
    values[j] = col_sum / static_cast<std::int64_t>(m) +
                rng.range(0, params.value_noise);
  }

  std::string name = std::to_string(n) + "-" + std::to_string(m) + "-seed" +
                     std::to_string(params.seed);
  return MkpInstance(std::move(name), std::move(values), std::move(weights),
                     std::move(capacities));
}

MkpInstance make_paper_mkp(std::size_t n, std::size_t m, int index) {
  MkpGeneratorParams params;
  params.n = n;
  params.m = m;
  params.seed = util::derive_seed(
      0x3C0FFEEULL, (static_cast<std::uint64_t>(n) << 24) ^
                        (static_cast<std::uint64_t>(m) << 12) ^
                        static_cast<std::uint64_t>(index));
  MkpInstance inst = generate_mkp(params);
  std::vector<std::int64_t> weights;
  weights.reserve(n * m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = inst.weight_row(i);
    weights.insert(weights.end(), row.begin(), row.end());
  }
  return MkpInstance(std::to_string(n) + "-" + std::to_string(m) + "-" +
                         std::to_string(index),
                     {inst.values().begin(), inst.values().end()},
                     std::move(weights),
                     {inst.capacities().begin(), inst.capacities().end()});
}

MkpMapping mkp_to_problem(const MkpInstance& instance, bool normalize) {
  MkpLoweringOptions options;
  options.normalize = normalize;
  return mkp_to_problem(instance, options);
}

MkpMapping mkp_to_problem(const MkpInstance& instance,
                          const MkpLoweringOptions& options) {
  if (options.capacity_shrink <= 0.0 || options.capacity_shrink > 1.0) {
    throw std::invalid_argument(
        "mkp_to_problem: capacity_shrink must be in (0, 1]");
  }
  const bool normalize = options.normalize;
  const std::size_t n = instance.n();
  const std::size_t m = instance.m();

  std::vector<std::int64_t> effective(m);
  for (std::size_t i = 0; i < m; ++i) {
    effective[i] = static_cast<std::int64_t>(
        options.capacity_shrink * static_cast<double>(instance.capacity(i)));
  }

  std::vector<SlackEncoding> slack;
  slack.reserve(m);
  std::size_t total = n;
  for (std::size_t i = 0; i < m; ++i) {
    slack.push_back(make_slack_encoding(effective[i]));
    total += slack.back().num_bits();
  }

  const double obj_scale =
      normalize ? static_cast<double>(std::max<std::int64_t>(
                      1, instance.max_objective_coefficient()))
                : 1.0;
  ising::QuboModel objective(total);
  for (std::size_t j = 0; j < n; ++j) {
    if (instance.value(j) != 0) {
      objective.add_linear(j, -static_cast<double>(instance.value(j)) /
                                  obj_scale);
    }
  }

  std::int64_t max_coeff = 0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      max_coeff = std::max(max_coeff, instance.weight(i, j));
    }
    max_coeff = std::max(max_coeff, effective[i]);
  }
  for (const auto& enc : slack) {
    for (const auto c : enc.coefficients) max_coeff = std::max(max_coeff, c);
  }
  const double con_scale =
      normalize ? static_cast<double>(std::max<std::int64_t>(1, max_coeff))
                : 1.0;

  std::vector<LinearConstraint> rows;
  rows.reserve(m);
  std::size_t slack_base = n;
  for (std::size_t i = 0; i < m; ++i) {
    LinearConstraint row;
    row.terms.reserve(n + slack[i].num_bits());
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t w = instance.weight(i, j);
      if (w != 0) {
        row.terms.emplace_back(static_cast<std::uint32_t>(j),
                               static_cast<double>(w) / con_scale);
      }
    }
    for (std::size_t q = 0; q < slack[i].num_bits(); ++q) {
      row.terms.emplace_back(
          static_cast<std::uint32_t>(slack_base + q),
          static_cast<double>(slack[i].coefficients[q]) / con_scale);
    }
    row.rhs = static_cast<double>(effective[i]) / con_scale;
    rows.push_back(std::move(row));
    slack_base += slack[i].num_bits();
  }

  MkpMapping mapping;
  mapping.problem =
      ConstrainedProblem(std::move(objective), std::move(rows), n);
  mapping.slack = std::move(slack);
  mapping.objective_scale = obj_scale;
  mapping.constraint_scale = con_scale;
  mapping.effective_capacities = std::move(effective);
  return mapping;
}

void save_mkp(std::ostream& os, const MkpInstance& instance) {
  os << instance.name() << '\n'
     << instance.n() << ' ' << instance.m() << '\n';
  for (std::size_t j = 0; j < instance.n(); ++j) {
    os << instance.value(j) << (j + 1 < instance.n() ? ' ' : '\n');
  }
  for (std::size_t i = 0; i < instance.m(); ++i) {
    for (std::size_t j = 0; j < instance.n(); ++j) {
      os << instance.weight(i, j) << (j + 1 < instance.n() ? ' ' : '\n');
    }
  }
  for (std::size_t i = 0; i < instance.m(); ++i) {
    os << instance.capacity(i) << (i + 1 < instance.m() ? ' ' : '\n');
  }
}

MkpInstance load_mkp(std::istream& is) {
  std::string name;
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(is >> name >> n >> m)) {
    throw std::runtime_error("load_mkp: bad header");
  }
  std::vector<std::int64_t> values(n);
  for (auto& v : values) {
    if (!(is >> v)) throw std::runtime_error("load_mkp: bad values");
  }
  std::vector<std::int64_t> weights(m * n);
  for (auto& w : weights) {
    if (!(is >> w)) throw std::runtime_error("load_mkp: bad weights");
  }
  std::vector<std::int64_t> capacities(m);
  for (auto& c : capacities) {
    if (!(is >> c)) throw std::runtime_error("load_mkp: bad capacities");
  }
  return MkpInstance(std::move(name), std::move(values), std::move(weights),
                     std::move(capacities));
}

MkpInstance load_mkp_orlib(std::istream& is, std::string name,
                           std::int64_t* known_optimum) {
  std::size_t n = 0;
  std::size_t m = 0;
  std::int64_t opt = 0;
  if (!(is >> n >> m >> opt) || n == 0 || m == 0) {
    throw std::runtime_error("load_mkp_orlib: bad instance header");
  }
  if (known_optimum != nullptr) *known_optimum = opt;

  std::vector<std::int64_t> values(n);
  for (auto& v : values) {
    if (!(is >> v)) throw std::runtime_error("load_mkp_orlib: bad values");
  }
  std::vector<std::int64_t> weights(m * n);
  for (auto& w : weights) {
    if (!(is >> w)) throw std::runtime_error("load_mkp_orlib: bad weights");
  }
  std::vector<std::int64_t> capacities(m);
  for (auto& c : capacities) {
    if (!(is >> c)) {
      throw std::runtime_error("load_mkp_orlib: bad capacities");
    }
  }
  return MkpInstance(std::move(name), std::move(values), std::move(weights),
                     std::move(capacities));
}

namespace {

/// "dir/mknapcb1.txt" -> "mknapcb1": instance name from the file path.
std::string basename_no_ext(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.erase(dot);
  return base.empty() ? path : base;
}

}  // namespace

MkpInstance load_mkp_orlib(const std::string& path,
                           std::int64_t* known_optimum) {
  return detail::load_instance_file(
      "load_mkp_orlib", path, [&](std::istream& is) {
        return load_mkp_orlib(is, basename_no_ext(path), known_optimum);
      });
}

MkpInstance load_mkp(const std::string& path) {
  return detail::load_instance_file(
      "load_mkp", path, [](std::istream& is) { return load_mkp(is); });
}

}  // namespace saim::problems
