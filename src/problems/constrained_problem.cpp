#include "problems/constrained_problem.hpp"

#include <cmath>
#include <stdexcept>

namespace saim::problems {

double LinearConstraint::eval(std::span<const std::uint8_t> x) const {
  double acc = -rhs;
  for (const auto& [idx, coeff] : terms) {
    if (x[idx]) acc += coeff;
  }
  return acc;
}

ConstrainedProblem::ConstrainedProblem(ising::QuboModel objective,
                                       std::vector<LinearConstraint> constraints,
                                       std::size_t num_decision)
    : objective_(std::move(objective)),
      constraints_(std::move(constraints)),
      num_decision_(num_decision) {
  if (num_decision_ > objective_.n()) {
    throw std::invalid_argument(
        "ConstrainedProblem: num_decision exceeds variable count");
  }
  for (const auto& c : constraints_) {
    for (const auto& [idx, coeff] : c.terms) {
      (void)coeff;
      if (idx >= objective_.n()) {
        throw std::invalid_argument(
            "ConstrainedProblem: constraint index out of range");
      }
    }
  }
}

std::vector<double> ConstrainedProblem::constraint_values(
    std::span<const std::uint8_t> x) const {
  std::vector<double> g(constraints_.size());
  for (std::size_t m = 0; m < constraints_.size(); ++m) {
    g[m] = constraints_[m].eval(x);
  }
  return g;
}

double ConstrainedProblem::violation_sq(
    std::span<const std::uint8_t> x) const {
  double acc = 0.0;
  for (const auto& c : constraints_) {
    const double g = c.eval(x);
    acc += g * g;
  }
  return acc;
}

double ConstrainedProblem::max_violation(
    std::span<const std::uint8_t> x) const {
  double acc = 0.0;
  for (const auto& c : constraints_) {
    acc = std::max(acc, std::abs(c.eval(x)));
  }
  return acc;
}

double ConstrainedProblem::density_for_penalty() const {
  const std::size_t total = n();
  if (total < 2) return 0.0;
  if (objective_.nnz() == 0) {
    // Paper section IV-B: d ~ N/(0.5 N (N+1)) = 2/(N+1) for linear
    // objectives (fields seen as couplings to a fixed reference spin).
    return 2.0 / (static_cast<double>(total) + 1.0);
  }
  return objective_.density();
}

}  // namespace saim::problems
