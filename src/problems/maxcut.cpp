#include "problems/maxcut.hpp"

#include <algorithm>
#include <stdexcept>

namespace saim::problems {

ising::IsingModel maxcut_to_ising(const ising::Graph& graph) {
  // cut(m) = sum_e w_e (1 - m_u m_v)/2 = W/2 - (1/2) sum_e w_e m_u m_v.
  // Want H(m) = -cut(m) = -W/2 + (1/2) sum_e w_e m_u m_v.
  // H = -sum J_ij m_i m_j + offset  =>  J_uv = -w_uv/2, offset = -W/2.
  ising::IsingModel model(graph.num_vertices());
  for (const auto& e : graph.edges()) {
    model.add_coupling(e.u, e.v, -e.weight / 2.0);
  }
  model.add_offset(-graph.total_weight() / 2.0);
  return model;
}

double maxcut_local_search(const ising::Graph& graph,
                           std::vector<std::int8_t>& side,
                           std::size_t max_passes) {
  const std::size_t n = graph.num_vertices();
  if (side.size() != n) {
    throw std::invalid_argument("maxcut_local_search: partition size");
  }
  // Gain of moving v = (same-side incident weight) - (cut incident weight);
  // recomputed per pass — O(passes * m), plenty fast at library scale.
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    std::vector<double> gain(n, 0.0);
    for (const auto& e : graph.edges()) {
      if (side[e.u] == side[e.v]) {
        gain[e.u] += e.weight;
        gain[e.v] += e.weight;
      } else {
        gain[e.u] -= e.weight;
        gain[e.v] -= e.weight;
      }
    }
    bool moved = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (gain[v] > 0.0) {
        side[v] = static_cast<std::int8_t>(-side[v]);
        moved = true;
        break;  // gains are stale after a move; restart the pass
      }
    }
    if (!moved) break;
  }
  return graph.cut_value(side);
}

std::vector<std::int8_t> maxcut_greedy(const ising::Graph& graph) {
  const std::size_t n = graph.num_vertices();
  std::vector<std::int8_t> side(n, 0);  // 0 = unplaced
  for (std::size_t v = 0; v < n; ++v) {
    double to_plus = 0.0;  // cut gained by placing v at +1
    double to_minus = 0.0;
    for (const auto& e : graph.edges()) {
      std::size_t other = n;
      if (e.u == v) other = e.v;
      if (e.v == v) other = e.u;
      if (other == n || side[other] == 0) continue;
      if (side[other] < 0) {
        to_plus += e.weight;
      } else {
        to_minus += e.weight;
      }
    }
    side[v] = to_plus >= to_minus ? std::int8_t{1} : std::int8_t{-1};
  }
  return side;
}

double maxcut_exhaustive(const ising::Graph& graph) {
  const std::size_t n = graph.num_vertices();
  if (n > 26) {
    throw std::invalid_argument("maxcut_exhaustive: graph too large");
  }
  double best = 0.0;
  std::vector<std::int8_t> side(n);
  for (std::uint64_t code = 0; code < (1ULL << n); ++code) {
    for (std::size_t v = 0; v < n; ++v) {
      side[v] = (code >> v) & 1ULL ? std::int8_t{1} : std::int8_t{-1};
    }
    best = std::max(best, graph.cut_value(side));
  }
  return best;
}

}  // namespace saim::problems
