// Coefficient normalization (paper section IV-A): "We normalize W, h by
// max(|W|,|h|) and A, b by max(|A|,|b|) to keep the same beta schedule for
// all instances." The QKP/MKP builders normalize at construction; this
// header exposes the same operation for already-built ConstrainedProblems
// (used by the generic examples and by tests that verify the invariance of
// argmin sets under normalization).
#pragma once

#include "problems/constrained_problem.hpp"

namespace saim::problems {

struct NormalizationScales {
  double objective = 1.0;   ///< divisor applied to f's coefficients
  double constraint = 1.0;  ///< divisor applied to every constraint row
};

/// Largest absolute coefficient of f (couplings and linear; offset excluded).
double objective_max_abs(const ConstrainedProblem& problem);

/// Largest absolute coefficient over all constraint rows and right-hand sides.
double constraint_max_abs(const ConstrainedProblem& problem);

/// Returns a rescaled copy: f / s_f and g / s_g with the scales returned in
/// `scales`. Scales of zero-coefficient parts default to 1. Minimizers are
/// unchanged; feasible sets are unchanged (g = 0 iff g/s = 0).
ConstrainedProblem normalized(const ConstrainedProblem& problem,
                              NormalizationScales* scales = nullptr);

}  // namespace saim::problems
