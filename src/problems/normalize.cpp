#include "problems/normalize.hpp"

#include <algorithm>
#include <cmath>

namespace saim::problems {

double objective_max_abs(const ConstrainedProblem& problem) {
  return problem.objective().max_abs_coefficient();
}

double constraint_max_abs(const ConstrainedProblem& problem) {
  double mx = 0.0;
  for (const auto& row : problem.constraints()) {
    for (const auto& [idx, coeff] : row.terms) {
      (void)idx;
      mx = std::max(mx, std::abs(coeff));
    }
    mx = std::max(mx, std::abs(row.rhs));
  }
  return mx;
}

ConstrainedProblem normalized(const ConstrainedProblem& problem,
                              NormalizationScales* scales) {
  NormalizationScales s;
  const double obj_max = objective_max_abs(problem);
  const double con_max = constraint_max_abs(problem);
  s.objective = obj_max > 0.0 ? obj_max : 1.0;
  s.constraint = con_max > 0.0 ? con_max : 1.0;

  const std::size_t n = problem.n();
  ising::QuboModel objective(n);
  problem.objective().for_each_quadratic(
      [&](std::size_t i, std::size_t j, double q) {
        objective.add_quadratic(i, j, q / s.objective);
      });
  for (std::size_t i = 0; i < n; ++i) {
    const double q = problem.objective().linear(i);
    if (q != 0.0) objective.add_linear(i, q / s.objective);
  }
  objective.set_offset(problem.objective().offset() / s.objective);

  std::vector<LinearConstraint> rows = problem.constraints();
  for (auto& row : rows) {
    for (auto& [idx, coeff] : row.terms) {
      (void)idx;
      coeff /= s.constraint;
    }
    row.rhs /= s.constraint;
  }

  if (scales != nullptr) *scales = s;
  return ConstrainedProblem(std::move(objective), std::move(rows),
                            problem.num_decision());
}

}  // namespace saim::problems
