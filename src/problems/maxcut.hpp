// Max-cut workload — the paper's introductory unconstrained example
// (section I): with J_ij = -W_ij the Ising ground state maximizes the cut.
//
//   cut(m) = sum_{(u,v) in E} w_uv * [m_u != m_v]
//          = W/2 - (1/2) sum w_uv m_u m_v
//
// so H(m) = -sum J_ij m_i m_j with J_ij = -w_ij/2 satisfies
// H(m) = cut-independent-constant ... we instead set the offset so that
// H(m) == -cut(m) exactly, making "minimize H" literally "maximize cut"
// (verified exhaustively in tests). Exercises the p-bit machine standalone,
// without penalties or multipliers.
#pragma once

#include <cstdint>
#include <span>

#include "ising/graph.hpp"
#include "ising/ising_model.hpp"

namespace saim::problems {

/// Ising image of max-cut: H(m) = -cut(m) for every partition m.
ising::IsingModel maxcut_to_ising(const ising::Graph& graph);

/// Deterministic single-pass local search: repeatedly moves any vertex
/// whose move increases the cut, until a local optimum (1-opt) is reached.
/// Starts from the given partition; returns the final cut value.
double maxcut_local_search(const ising::Graph& graph,
                           std::vector<std::int8_t>& side,
                           std::size_t max_passes = 1000);

/// The deterministic greedy 1/2-approximation: place vertices one by one on
/// the side with larger cut gain. Guaranteed cut >= W/2 for nonnegative
/// weights.
std::vector<std::int8_t> maxcut_greedy(const ising::Graph& graph);

/// Exact maximum cut by enumeration (n <= 26).
double maxcut_exhaustive(const ising::Graph& graph);

}  // namespace saim::problems
