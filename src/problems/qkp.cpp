#include "problems/qkp.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "problems/file_io.hpp"
#include "util/rng.hpp"

namespace saim::problems {

QkpInstance::QkpInstance(std::string name, std::vector<std::int64_t> values,
                         std::vector<std::int64_t> pair_values,
                         std::vector<std::int64_t> weights,
                         std::int64_t capacity)
    : name_(std::move(name)),
      values_(std::move(values)),
      pair_values_(std::move(pair_values)),
      weights_(std::move(weights)),
      capacity_(capacity) {
  const std::size_t n = values_.size();
  if (pair_values_.size() != n * n) {
    throw std::invalid_argument("QkpInstance: W must be n*n");
  }
  if (weights_.size() != n) {
    throw std::invalid_argument("QkpInstance: weights must have length n");
  }
  if (capacity_ < 0) {
    throw std::invalid_argument("QkpInstance: capacity must be >= 0");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (pair_values_[i * n + i] != 0) {
      throw std::invalid_argument("QkpInstance: W diagonal must be zero");
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (pair_values_[i * n + j] != pair_values_[j * n + i]) {
        throw std::invalid_argument("QkpInstance: W must be symmetric");
      }
    }
  }
}

std::int64_t QkpInstance::pair_value(std::size_t i, std::size_t j) const {
  const std::size_t n = values_.size();
  if (i >= n || j >= n) {
    throw std::out_of_range("QkpInstance::pair_value: index out of range");
  }
  return pair_values_[i * n + j];
}

std::int64_t QkpInstance::profit(std::span<const std::uint8_t> x) const {
  const std::size_t n = values_.size();
  std::int64_t p = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!x[i]) continue;
    p += values_[i];
    const std::int64_t* row = pair_values_.data() + i * n;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (x[j]) p += row[j];
    }
  }
  return p;
}

std::int64_t QkpInstance::total_weight(
    std::span<const std::uint8_t> x) const {
  std::int64_t w = 0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (x[i]) w += weights_[i];
  }
  return w;
}

double QkpInstance::density() const {
  const std::size_t n = values_.size();
  if (n < 2) return 0.0;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (pair_values_[i * n + j] != 0) ++nnz;
    }
  }
  return static_cast<double>(nnz) /
         (0.5 * static_cast<double>(n) * static_cast<double>(n - 1));
}

std::int64_t QkpInstance::max_objective_coefficient() const {
  std::int64_t m = 0;
  for (const auto v : values_) m = std::max(m, std::abs(v));
  for (const auto v : pair_values_) m = std::max(m, std::abs(v));
  return m;
}

QkpInstance generate_qkp(const QkpGeneratorParams& params) {
  if (params.n == 0) {
    throw std::invalid_argument("generate_qkp: n must be positive");
  }
  if (params.density < 0.0 || params.density > 1.0) {
    throw std::invalid_argument("generate_qkp: density must be in [0,1]");
  }
  util::Xoshiro256pp rng(params.seed);

  const std::size_t n = params.n;
  std::vector<std::int64_t> values(n);
  std::vector<std::int64_t> pair_values(n * n, 0);
  std::vector<std::int64_t> weights(n);

  for (auto& v : values) v = rng.range(1, params.max_value);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform01() < params.density) {
        const std::int64_t w = rng.range(1, params.max_value);
        pair_values[i * n + j] = w;
        pair_values[j * n + i] = w;
      }
    }
  }
  std::int64_t weight_sum = 0;
  for (auto& w : weights) {
    w = rng.range(1, params.max_weight);
    weight_sum += w;
  }
  // Capacity uniform in [min_capacity, sum(a)] as in Billionnet–Soutif;
  // guard degenerate tiny instances where sum(a) < min_capacity.
  const std::int64_t lo = std::min(params.min_capacity, weight_sum);
  const std::int64_t capacity = rng.range(lo, weight_sum);

  std::string name = std::to_string(n) + "-" +
                     std::to_string(static_cast<int>(params.density * 100)) +
                     "-seed" + std::to_string(params.seed);
  return QkpInstance(std::move(name), std::move(values),
                     std::move(pair_values), std::move(weights), capacity);
}

QkpInstance make_paper_qkp(std::size_t n, int density_percent, int index) {
  QkpGeneratorParams params;
  params.n = n;
  params.density = static_cast<double>(density_percent) / 100.0;
  // Stable per-name seed: mixes (n, d, k) so each paper-style instance name
  // denotes one fixed instance across runs and machines.
  params.seed = util::derive_seed(
      0x51B05EEDULL,
      (static_cast<std::uint64_t>(n) << 20) ^
          (static_cast<std::uint64_t>(density_percent) << 8) ^
          static_cast<std::uint64_t>(index));
  QkpInstance inst = generate_qkp(params);
  // Rename to the paper's "N-d-k" convention.
  return QkpInstance(std::to_string(n) + "-" + std::to_string(density_percent) +
                         "-" + std::to_string(index),
                     {inst.values().begin(), inst.values().end()},
                     [&] {
                       std::vector<std::int64_t> w(n * n);
                       for (std::size_t i = 0; i < n; ++i)
                         for (std::size_t j = 0; j < n; ++j)
                           w[i * n + j] = inst.pair_value(i, j);
                       return w;
                     }(),
                     {inst.weights().begin(), inst.weights().end()},
                     inst.capacity());
}

QkpMapping qkp_to_problem(const QkpInstance& instance, bool normalize) {
  const std::size_t n = instance.n();
  SlackEncoding slack = make_slack_encoding(instance.capacity());
  const std::size_t total = n + slack.num_bits();

  // Objective f(x) = -(1/2) x^T W x - h^T x, normalized by max(|W|,|h|).
  const double obj_scale =
      normalize ? static_cast<double>(
                      std::max<std::int64_t>(1, instance.max_objective_coefficient()))
                : 1.0;
  ising::QuboModel objective(total);
  for (std::size_t i = 0; i < n; ++i) {
    if (instance.value(i) != 0) {
      objective.add_linear(i, -static_cast<double>(instance.value(i)) /
                                  obj_scale);
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::int64_t w = instance.pair_value(i, j);
      if (w != 0) {
        // The (1/2) x^T W x double-counts each pair; coefficient of x_i x_j
        // is exactly W_ij.
        objective.add_quadratic(i, j, -static_cast<double>(w) / obj_scale);
      }
    }
  }

  // Constraint a^T x + sum_q 2^q s_q = b, normalized by max(|A|,|b|) where
  // A is the slack-extended row.
  std::int64_t max_coeff = instance.capacity();
  for (std::size_t i = 0; i < n; ++i) {
    max_coeff = std::max(max_coeff, instance.weight(i));
  }
  for (const auto c : slack.coefficients) {
    max_coeff = std::max(max_coeff, c);
  }
  const double con_scale =
      normalize ? static_cast<double>(std::max<std::int64_t>(1, max_coeff))
                : 1.0;

  LinearConstraint row;
  row.terms.reserve(total);
  for (std::size_t i = 0; i < n; ++i) {
    if (instance.weight(i) != 0) {
      row.terms.emplace_back(static_cast<std::uint32_t>(i),
                             static_cast<double>(instance.weight(i)) /
                                 con_scale);
    }
  }
  for (std::size_t q = 0; q < slack.num_bits(); ++q) {
    row.terms.emplace_back(static_cast<std::uint32_t>(n + q),
                           static_cast<double>(slack.coefficients[q]) /
                               con_scale);
  }
  row.rhs = static_cast<double>(instance.capacity()) / con_scale;

  QkpMapping mapping;
  mapping.problem = ConstrainedProblem(std::move(objective), {std::move(row)},
                                       n);
  mapping.slack = std::move(slack);
  mapping.objective_scale = obj_scale;
  mapping.constraint_scale = con_scale;
  return mapping;
}

void save_qkp(std::ostream& os, const QkpInstance& instance) {
  const std::size_t n = instance.n();
  os << instance.name() << '\n' << n << ' ' << instance.capacity() << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    os << instance.value(i) << (i + 1 < n ? ' ' : '\n');
  }
  for (std::size_t i = 0; i < n; ++i) {
    os << instance.weight(i) << (i + 1 < n ? ' ' : '\n');
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::int64_t w = instance.pair_value(i, j);
      if (w != 0) os << i << ' ' << j << ' ' << w << '\n';
    }
  }
  os << "-1 -1 -1\n";
}

QkpInstance load_qkp(std::istream& is) {
  std::string name;
  if (!(is >> name)) {
    throw std::runtime_error("load_qkp: missing header");
  }
  std::size_t n = 0;
  std::int64_t capacity = 0;
  if (!(is >> n >> capacity)) {
    throw std::runtime_error("load_qkp: missing size/capacity");
  }
  std::vector<std::int64_t> values(n);
  std::vector<std::int64_t> weights(n);
  for (auto& v : values) {
    if (!(is >> v)) throw std::runtime_error("load_qkp: bad values");
  }
  for (auto& w : weights) {
    if (!(is >> w)) throw std::runtime_error("load_qkp: bad weights");
  }
  std::vector<std::int64_t> pair_values(n * n, 0);
  while (true) {
    std::int64_t i = 0;
    std::int64_t j = 0;
    std::int64_t w = 0;
    if (!(is >> i >> j >> w)) {
      throw std::runtime_error("load_qkp: truncated pair list");
    }
    if (i < 0) break;
    const auto ui = static_cast<std::size_t>(i);
    const auto uj = static_cast<std::size_t>(j);
    if (ui >= n || uj >= n || ui == uj) {
      throw std::runtime_error("load_qkp: bad pair indices");
    }
    pair_values[ui * n + uj] = w;
    pair_values[uj * n + ui] = w;
  }
  return QkpInstance(std::move(name), std::move(values),
                     std::move(pair_values), std::move(weights), capacity);
}

QkpInstance load_qkp_billionnet(std::istream& is) {
  std::string name;
  if (!(is >> name)) {
    throw std::runtime_error("load_qkp_billionnet: missing name line");
  }
  std::size_t n = 0;
  if (!(is >> n) || n == 0) {
    throw std::runtime_error("load_qkp_billionnet: bad n");
  }
  std::vector<std::int64_t> values(n);
  for (auto& v : values) {
    if (!(is >> v)) {
      throw std::runtime_error("load_qkp_billionnet: bad linear terms");
    }
  }
  // Strict upper triangle, row by row: row i has n-1-i entries.
  std::vector<std::int64_t> pair_values(n * n, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      std::int64_t w = 0;
      if (!(is >> w)) {
        throw std::runtime_error("load_qkp_billionnet: truncated triangle");
      }
      pair_values[i * n + j] = w;
      pair_values[j * n + i] = w;
    }
  }
  // Archive layout: a constraint-type flag (0/1), then capacity, then the
  // n weights.
  std::int64_t constraint_type = 0;
  std::int64_t capacity = 0;
  if (!(is >> constraint_type >> capacity)) {
    throw std::runtime_error("load_qkp_billionnet: missing capacity block");
  }
  std::vector<std::int64_t> weights(n);
  for (auto& w : weights) {
    if (!(is >> w)) {
      throw std::runtime_error("load_qkp_billionnet: bad weights");
    }
  }
  return QkpInstance(std::move(name), std::move(values),
                     std::move(pair_values), std::move(weights), capacity);
}

QkpInstance load_qkp_billionnet(const std::string& path) {
  return detail::load_instance_file(
      "load_qkp_billionnet", path,
      [](std::istream& is) { return load_qkp_billionnet(is); });
}

QkpInstance load_qkp(const std::string& path) {
  return detail::load_instance_file(
      "load_qkp", path, [](std::istream& is) { return load_qkp(is); });
}

}  // namespace saim::problems
