// Generic container for the optimization form the paper works with (eq. 2):
//
//   min f(x)   s.t.   g(x) = 0,   x in {0,1}^n
//
// where f is (at most) quadratic — stored as a QuboModel — and g is linear:
// g_m(x) = a_m . x - rhs_m. The variable vector is the slack-extended one:
// builders (qkp.cpp / mkp.cpp) append binary slack bits, so every original
// inequality appears here as an equality row. The first `num_decision`
// variables are the original decision bits; the rest are slack.
//
// Both the original integer instance view (raw feasibility a^T x <= b,
// raw cost) and this normalized equality view are needed by SAIM: lambda
// updates use g over the full slack-extended x, while the feasible-solution
// pool is filtered with the raw inequality on decision bits only, exactly
// as the paper does ("we check feasibility as A^T x_k <= b").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ising/qubo_model.hpp"

namespace saim::problems {

struct LinearConstraint {
  /// Sparse row: (variable index, coefficient).
  std::vector<std::pair<std::uint32_t, double>> terms;
  double rhs = 0.0;

  /// g_m(x) = a_m . x - rhs.
  [[nodiscard]] double eval(std::span<const std::uint8_t> x) const;
};

class ConstrainedProblem {
 public:
  ConstrainedProblem() = default;
  ConstrainedProblem(ising::QuboModel objective,
                     std::vector<LinearConstraint> constraints,
                     std::size_t num_decision);

  /// Total variable count including slack bits.
  [[nodiscard]] std::size_t n() const noexcept { return objective_.n(); }
  /// Count of original (non-slack) decision variables.
  [[nodiscard]] std::size_t num_decision() const noexcept {
    return num_decision_;
  }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }

  [[nodiscard]] const ising::QuboModel& objective() const noexcept {
    return objective_;
  }
  [[nodiscard]] const std::vector<LinearConstraint>& constraints()
      const noexcept {
    return constraints_;
  }

  /// f(x) for the full (slack-extended) configuration.
  [[nodiscard]] double objective_value(std::span<const std::uint8_t> x) const {
    return objective_.energy(x);
  }

  /// g(x), one entry per constraint.
  [[nodiscard]] std::vector<double> constraint_values(
      std::span<const std::uint8_t> x) const;

  /// ||g(x)||^2 — the quantity the penalty method multiplies by P (eq. 3).
  [[nodiscard]] double violation_sq(std::span<const std::uint8_t> x) const;

  /// max_m |g_m(x)| — convenient for tolerance-based equality checks.
  [[nodiscard]] double max_violation(std::span<const std::uint8_t> x) const;

  /// Density d of the objective's coupling matrix, with the paper's MKP
  /// convention: when f has no quadratic part, d = 2/(N+1), "as if the
  /// external fields h were pairwise connections from an additional fixed
  /// spin reference" (section IV-B). N counts all variables incl. slack.
  [[nodiscard]] double density_for_penalty() const;

 private:
  ising::QuboModel objective_;
  std::vector<LinearConstraint> constraints_;
  std::size_t num_decision_ = 0;
};

}  // namespace saim::problems
