// Canonical 64-bit fingerprints of problem instances.
//
// The solve service keys its result cache and its duplicate-request
// coalescing on *content*, not on object identity: two ConstrainedProblems
// built independently from the same instance file hash to the same value,
// so a job stream that re-reads instances from disk still hits the cache.
// Every quantity that influences a solve's output is mixed in — variable
// counts, the QUBO objective (offset, linear terms, nonzero couplings with
// their indices), and each constraint row — in a fixed traversal order, so
// the fingerprint is deterministic across processes and platforms with
// identical IEEE-754 doubles.
//
// Fingerprint is the streaming hasher behind it (SplitMix64-style avalanche
// over a running state). It is exposed so higher layers can extend a
// problem fingerprint with solve parameters (backend name, SaimOptions,
// seed) without inventing a second hashing scheme; see
// service::request_fingerprint.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "problems/constrained_problem.hpp"

namespace saim::problems {

class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) noexcept {
    state_ = avalanche(state_ + kGolden + v);
    return *this;
  }

  Fingerprint& mix(double v) noexcept {
    // Collapse +0.0 / -0.0 so arithmetically identical problems agree.
    return mix(v == 0.0 ? std::uint64_t{0} : std::bit_cast<std::uint64_t>(v));
  }

  Fingerprint& mix(std::string_view s) noexcept {
    mix(static_cast<std::uint64_t>(s.size()));
    // Pack 8 bytes per mix; the tail is zero-padded (length is already in).
    std::uint64_t word = 0;
    unsigned filled = 0;
    for (const char c : s) {
      word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
              << (8 * filled);
      if (++filled == 8) {
        mix(word);
        word = 0;
        filled = 0;
      }
    }
    if (filled != 0) mix(word);
    return *this;
  }

  [[nodiscard]] std::uint64_t digest() const noexcept {
    return avalanche(state_);
  }

 private:
  static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

  static constexpr std::uint64_t avalanche(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_ = 0x5a1350b6a2d9c0deULL;
};

/// Content fingerprint of a normalized problem: sizes, objective (offset,
/// linear, sparse couplings), and every constraint row.
[[nodiscard]] std::uint64_t fingerprint(const ConstrainedProblem& problem);

}  // namespace saim::problems
