#include "problems/portfolio.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace saim::problems {

PortfolioInstance::PortfolioInstance(std::string name,
                                     std::vector<double> expected_returns,
                                     std::vector<double> covariance,
                                     std::vector<std::int64_t> prices,
                                     std::int64_t budget,
                                     double risk_aversion)
    : name_(std::move(name)),
      returns_(std::move(expected_returns)),
      covariance_(std::move(covariance)),
      prices_(std::move(prices)),
      budget_(budget),
      risk_aversion_(risk_aversion) {
  const std::size_t n = returns_.size();
  if (covariance_.size() != n * n) {
    throw std::invalid_argument("PortfolioInstance: Sigma must be n*n");
  }
  if (prices_.size() != n) {
    throw std::invalid_argument("PortfolioInstance: prices length mismatch");
  }
  if (budget_ < 0) {
    throw std::invalid_argument("PortfolioInstance: negative budget");
  }
  if (risk_aversion_ < 0.0) {
    throw std::invalid_argument("PortfolioInstance: negative risk aversion");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::abs(covariance_[i * n + j] - covariance_[j * n + i]) >
          1e-12) {
        throw std::invalid_argument(
            "PortfolioInstance: Sigma must be symmetric");
      }
    }
  }
}

double PortfolioInstance::covariance(std::size_t i, std::size_t j) const {
  const std::size_t n = returns_.size();
  if (i >= n || j >= n) {
    throw std::out_of_range("PortfolioInstance::covariance: out of range");
  }
  return covariance_[i * n + j];
}

double PortfolioInstance::portfolio_return(
    std::span<const std::uint8_t> x) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < returns_.size(); ++i) {
    if (x[i]) acc += returns_[i];
  }
  return acc;
}

double PortfolioInstance::portfolio_risk(
    std::span<const std::uint8_t> x) const {
  const std::size_t n = returns_.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!x[i]) continue;
    acc += covariance_[i * n + i];
    const double* row = covariance_.data() + i * n;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (x[j]) acc += 2.0 * row[j];
    }
  }
  return acc;
}

std::int64_t PortfolioInstance::total_price(
    std::span<const std::uint8_t> x) const {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < prices_.size(); ++i) {
    if (x[i]) acc += prices_[i];
  }
  return acc;
}

PortfolioInstance generate_portfolio(const PortfolioGeneratorParams& params) {
  if (params.n == 0 || params.factors == 0) {
    throw std::invalid_argument("generate_portfolio: n and factors > 0");
  }
  util::Xoshiro256pp rng(params.seed);
  const std::size_t n = params.n;
  const std::size_t k = params.factors;

  std::vector<double> returns(n);
  for (auto& r : returns) r = 2.0 * params.mean_return * rng.uniform01();

  // Factor loadings L (n x k), Sigma = L L^T + diag(idio^2).
  std::vector<double> loadings(n * k);
  for (auto& l : loadings) l = params.factor_vol * rng.uniform_sym();
  std::vector<double> sigma(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t f = 0; f < k; ++f) {
        acc += loadings[i * k + f] * loadings[j * k + f];
      }
      if (i == j) acc += params.idio_vol * params.idio_vol;
      sigma[i * n + j] = acc;
      sigma[j * n + i] = acc;
    }
  }

  std::vector<std::int64_t> prices(n);
  std::int64_t total = 0;
  for (auto& p : prices) {
    p = rng.range(1, params.max_price);
    total += p;
  }
  const auto budget = static_cast<std::int64_t>(
      params.budget_fraction * static_cast<double>(total));

  return PortfolioInstance(
      "portfolio-" + std::to_string(n) + "-seed" +
          std::to_string(params.seed),
      std::move(returns), std::move(sigma), std::move(prices), budget,
      params.risk_aversion);
}

PortfolioMapping portfolio_to_problem(const PortfolioInstance& instance,
                                      bool normalize) {
  const std::size_t n = instance.n();
  SlackEncoding slack = make_slack_encoding(instance.budget());
  const std::size_t total = n + slack.num_bits();

  // Objective -mu^T x + kappa x^T Sigma x over binaries: diagonal Sigma_ii
  // terms fold into the linear part (x_i^2 = x_i), off-diagonals become
  // couplings with coefficient 2*kappa*Sigma_ij.
  const double kappa = instance.risk_aversion();
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs,
                       std::abs(-instance.expected_return(i) +
                                kappa * instance.covariance(i, i)));
    for (std::size_t j = i + 1; j < n; ++j) {
      max_abs = std::max(max_abs,
                         std::abs(2.0 * kappa * instance.covariance(i, j)));
    }
  }
  const double obj_scale = normalize && max_abs > 0.0 ? max_abs : 1.0;

  ising::QuboModel objective(total);
  for (std::size_t i = 0; i < n; ++i) {
    const double linear =
        -instance.expected_return(i) + kappa * instance.covariance(i, i);
    if (linear != 0.0) objective.add_linear(i, linear / obj_scale);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double coupling = 2.0 * kappa * instance.covariance(i, j);
      if (coupling != 0.0) {
        objective.add_quadratic(i, j, coupling / obj_scale);
      }
    }
  }

  std::int64_t max_coeff = instance.budget();
  for (std::size_t i = 0; i < n; ++i) {
    max_coeff = std::max(max_coeff, instance.price(i));
  }
  for (const auto c : slack.coefficients) max_coeff = std::max(max_coeff, c);
  const double con_scale =
      normalize ? static_cast<double>(std::max<std::int64_t>(1, max_coeff))
                : 1.0;

  LinearConstraint row;
  for (std::size_t i = 0; i < n; ++i) {
    if (instance.price(i) != 0) {
      row.terms.emplace_back(
          static_cast<std::uint32_t>(i),
          static_cast<double>(instance.price(i)) / con_scale);
    }
  }
  for (std::size_t q = 0; q < slack.num_bits(); ++q) {
    row.terms.emplace_back(static_cast<std::uint32_t>(n + q),
                           static_cast<double>(slack.coefficients[q]) /
                               con_scale);
  }
  row.rhs = static_cast<double>(instance.budget()) / con_scale;

  PortfolioMapping mapping;
  mapping.problem =
      ConstrainedProblem(std::move(objective), {std::move(row)}, n);
  mapping.slack = std::move(slack);
  mapping.objective_scale = obj_scale;
  mapping.constraint_scale = con_scale;
  return mapping;
}

}  // namespace saim::problems
