#include "problems/slack.hpp"

#include <algorithm>
#include <stdexcept>

namespace saim::problems {

std::int64_t SlackEncoding::max_value() const noexcept {
  std::int64_t total = 0;
  for (const auto c : coefficients) total += c;
  return total;
}

std::int64_t SlackEncoding::decode(
    const std::vector<std::uint8_t>& bits) const {
  if (bits.size() != coefficients.size()) {
    throw std::invalid_argument("SlackEncoding::decode: bit-count mismatch");
  }
  std::int64_t value = 0;
  for (std::size_t q = 0; q < bits.size(); ++q) {
    if (bits[q]) value += coefficients[q];
  }
  return value;
}

std::vector<std::uint8_t> SlackEncoding::encode(std::int64_t value) const {
  std::int64_t v = std::clamp<std::int64_t>(value, 0, max_value());
  std::vector<std::uint8_t> bits(coefficients.size(), 0);
  // Greedy top-down works because coefficients are the canonical powers of 2.
  for (std::size_t q = coefficients.size(); q-- > 0;) {
    if (v >= coefficients[q]) {
      bits[q] = 1;
      v -= coefficients[q];
    }
  }
  return bits;
}

SlackEncoding make_slack_encoding(std::int64_t bound) {
  if (bound < 0) {
    throw std::invalid_argument("make_slack_encoding: bound must be >= 0");
  }
  SlackEncoding enc;
  enc.bound = bound;
  // Q = floor(log2(b) + 1) == number of bits in b's binary representation.
  std::int64_t power = 1;
  while (power <= bound) {
    enc.coefficients.push_back(power);
    power <<= 1;
  }
  return enc;
}

}  // namespace saim::problems
