// Shared plumbing for the instance loaders' filesystem overloads: open a
// path, hand the stream to the format-specific loader, and make sure every
// failure — open or parse — names the offending file, so a bad path in a
// long job stream is traceable.
#pragma once

#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace saim::problems::detail {

template <typename Loader>
auto load_instance_file(const char* what, const std::string& path,
                        Loader&& loader) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error(std::string(what) + ": cannot open '" + path +
                             "'");
  }
  try {
    return std::forward<Loader>(loader)(is);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " [file: " + path + "]");
  }
}

}  // namespace saim::problems::detail
