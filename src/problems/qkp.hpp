// Quadratic Knapsack Problem (paper section IV-A, eq. 12):
//
//   min  -(1/2) x^T W x - h^T x     over x in {0,1}^N
//   s.t.  a^T x <= b
//
// with h in N^N item values, W symmetric nonnegative pair values (nonzero
// with probability d — the instance "density"), a in N^N weights and b the
// knapsack capacity. Costs are negative; the paper's accuracy metric is
// 100 * c(x)/OPT for feasible x (eq. 13).
//
// Instances follow the Billionnet–Soutif random scheme (their archive is
// not redistributable offline — see DESIGN.md substitutions): values
// uniform in [1,100], weights uniform in [1,50], capacity uniform in
// [50, sum(a)], all drawn from a deterministic per-name seed so that
// "300-50-8" always denotes the same instance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "problems/constrained_problem.hpp"
#include "problems/slack.hpp"

namespace saim::problems {

class QkpInstance {
 public:
  QkpInstance() = default;
  QkpInstance(std::string name, std::vector<std::int64_t> values,
              std::vector<std::int64_t> pair_values,
              std::vector<std::int64_t> weights, std::int64_t capacity);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t n() const noexcept { return values_.size(); }

  [[nodiscard]] std::int64_t value(std::size_t i) const {
    return values_.at(i);
  }
  [[nodiscard]] std::int64_t pair_value(std::size_t i, std::size_t j) const;
  [[nodiscard]] std::int64_t weight(std::size_t i) const {
    return weights_.at(i);
  }
  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::span<const std::int64_t> weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] std::span<const std::int64_t> values() const noexcept {
    return values_;
  }

  /// Total profit h^T x + (1/2) x^T W x (a nonnegative integer).
  [[nodiscard]] std::int64_t profit(std::span<const std::uint8_t> x) const;

  /// Paper's cost c(x) = -profit(x) (minimization form, eq. 12).
  [[nodiscard]] std::int64_t cost(std::span<const std::uint8_t> x) const {
    return -profit(x);
  }

  [[nodiscard]] std::int64_t total_weight(
      std::span<const std::uint8_t> x) const;

  /// Raw feasibility a^T x <= b on the N decision bits.
  [[nodiscard]] bool feasible(std::span<const std::uint8_t> x) const {
    return total_weight(x) <= capacity_;
  }

  /// Fraction of nonzero off-diagonal pair values (the instance density d).
  [[nodiscard]] double density() const;

  /// max(|W|, |h|) — the paper's objective normalization constant.
  [[nodiscard]] std::int64_t max_objective_coefficient() const;

 private:
  std::string name_;
  std::vector<std::int64_t> values_;       ///< h, length n
  std::vector<std::int64_t> pair_values_;  ///< W dense n*n symmetric, 0 diag
  std::vector<std::int64_t> weights_;      ///< a, length n
  std::int64_t capacity_ = 0;              ///< b
};

struct QkpGeneratorParams {
  std::size_t n = 100;
  double density = 0.25;
  std::uint64_t seed = 1;
  std::int64_t max_value = 100;       ///< h_i, W_ij ~ U[1, max_value]
  std::int64_t max_weight = 50;       ///< a_i ~ U[1, max_weight]
  std::int64_t min_capacity = 50;     ///< b ~ U[min_capacity, sum(a)]
};

/// Deterministic random instance in the Billionnet–Soutif style.
QkpInstance generate_qkp(const QkpGeneratorParams& params);

/// Convenience for the paper's instance naming "N-d%-k", e.g. (300, 50, 8).
QkpInstance make_paper_qkp(std::size_t n, int density_percent, int index);

/// Result of lowering a QKP to the equality-constrained normalized form.
struct QkpMapping {
  ConstrainedProblem problem;  ///< objective+constraint over n+Q variables
  SlackEncoding slack;         ///< the capacity slack encoding
  double objective_scale = 1.0;   ///< raw f = objective_scale * normalized f
  double constraint_scale = 1.0;  ///< raw g = constraint_scale * normalized g
};

/// Builds min f = -(x^T W x)/2 - h^T x with equality constraint
/// a^T x + slack = b, normalized as in the paper: W,h by max(|W|,|h|) and
/// A,b by max(|A|,|b|) (slack coefficients included in A's maximum).
QkpMapping qkp_to_problem(const QkpInstance& instance, bool normalize = true);

/// Plain-text serialization (round-trips via load_qkp).
void save_qkp(std::ostream& os, const QkpInstance& instance);
QkpInstance load_qkp(std::istream& is);

/// Reader for the official Billionnet–Soutif archive format (jeu_N_d_k.txt):
///   name line, then n, then the n linear coefficients, then the strict
///   upper triangle of W row by row (n-1, n-2, ... entries), a blank-ish
///   separator value (constraint type, always 0/1 in the archive), the
///   capacity, and the n weights. Lets users who download the original
///   archive (https://cedric.cnam.fr/~soutif/QKP/) run the exact paper
///   instances through this library.
QkpInstance load_qkp_billionnet(std::istream& is);

/// Filesystem overload: opens `path` and parses it as Billionnet–Soutif.
/// Open failures and parse errors both name the file in the exception, so
/// a bad path in a 1000-line job stream is traceable.
QkpInstance load_qkp_billionnet(const std::string& path);

/// Filesystem overload of the plain-text load_qkp, same error contract.
QkpInstance load_qkp(const std::string& path);

}  // namespace saim::problems
