// Multidimensional Knapsack Problem (paper section IV-B, eq. 14):
//
//   min  -h^T x     over x in {0,1}^N
//   s.t.  A x <= B      (A an MxN nonnegative integer matrix)
//
// An integer linear program with M capacity constraints. Instances follow
// the Chu–Beasley OR-Library scheme (see DESIGN.md substitutions):
// weights a_ij ~ U[1,1000], capacities B_i = tightness * sum_j a_ij, and
// values correlated with weights, h_j = round(sum_i a_ij / M) + U[0,500] —
// the correlation is what makes these instances hard for greedy methods.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "problems/constrained_problem.hpp"
#include "problems/slack.hpp"

namespace saim::problems {

class MkpInstance {
 public:
  MkpInstance() = default;
  MkpInstance(std::string name, std::vector<std::int64_t> values,
              std::vector<std::int64_t> weights,  // M*N row-major
              std::vector<std::int64_t> capacities);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t n() const noexcept { return values_.size(); }
  [[nodiscard]] std::size_t m() const noexcept { return capacities_.size(); }

  [[nodiscard]] std::int64_t value(std::size_t j) const {
    return values_.at(j);
  }
  [[nodiscard]] std::span<const std::int64_t> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::int64_t weight(std::size_t i, std::size_t j) const;
  [[nodiscard]] std::span<const std::int64_t> weight_row(std::size_t i) const;
  [[nodiscard]] std::int64_t capacity(std::size_t i) const {
    return capacities_.at(i);
  }
  [[nodiscard]] std::span<const std::int64_t> capacities() const noexcept {
    return capacities_;
  }

  [[nodiscard]] std::int64_t profit(std::span<const std::uint8_t> x) const;
  [[nodiscard]] std::int64_t cost(std::span<const std::uint8_t> x) const {
    return -profit(x);
  }

  /// Load of knapsack i: (A x)_i.
  [[nodiscard]] std::int64_t load(std::size_t i,
                                  std::span<const std::uint8_t> x) const;

  /// Raw feasibility A x <= B on the N decision bits.
  [[nodiscard]] bool feasible(std::span<const std::uint8_t> x) const;

  [[nodiscard]] std::int64_t max_objective_coefficient() const;
  [[nodiscard]] std::int64_t max_constraint_coefficient() const;

 private:
  std::string name_;
  std::vector<std::int64_t> values_;      ///< h, length n
  std::vector<std::int64_t> weights_;     ///< A, m*n row-major
  std::vector<std::int64_t> capacities_;  ///< B, length m
};

struct MkpGeneratorParams {
  std::size_t n = 100;
  std::size_t m = 5;
  std::uint64_t seed = 1;
  double tightness = 0.5;         ///< B_i = tightness * sum_j a_ij
  std::int64_t max_weight = 1000; ///< a_ij ~ U[1, max_weight]
  std::int64_t value_noise = 500; ///< h_j = round(mean col weight) + U[0,noise]
};

/// Deterministic random instance in the Chu–Beasley style.
MkpInstance generate_mkp(const MkpGeneratorParams& params);

/// Paper naming "N-M-k", e.g. (250, 5, 8).
MkpInstance make_paper_mkp(std::size_t n, std::size_t m, int index);

struct MkpMapping {
  ConstrainedProblem problem;        ///< over n + sum_i Q_i variables
  std::vector<SlackEncoding> slack;  ///< one encoding per knapsack
  double objective_scale = 1.0;
  double constraint_scale = 1.0;
  std::vector<std::int64_t> effective_capacities;  ///< B' used in the rows
};

struct MkpLoweringOptions {
  bool normalize = true;
  /// Artificial capacity reduction B' = shrink * B (paper conclusion,
  /// after [16]): solving against tighter capacities biases the sampler
  /// toward the feasible side of the true constraints and raises the
  /// feasibility rate. Feasibility of samples is still judged against the
  /// true B. Must be in (0, 1].
  double capacity_shrink = 1.0;
};

/// Lowers to min f = -h^T x with M equality rows A x + slack_i = B'_i,
/// normalized by max(|h|) and max(|A|,|B'|) respectively.
MkpMapping mkp_to_problem(const MkpInstance& instance,
                          const MkpLoweringOptions& options);
MkpMapping mkp_to_problem(const MkpInstance& instance, bool normalize = true);

/// OR-Library-style text serialization (round-trips via load_mkp).
void save_mkp(std::ostream& os, const MkpInstance& instance);
MkpInstance load_mkp(std::istream& is);

/// Reader for one instance in the official OR-Library mknapcb format:
///   n m opt  (opt = 0 when unknown), then n values, then m*n weights
///   (row per constraint), then m capacities. Files like mknapcb1.txt
///   carry a leading instance count and concatenate many instances; call
///   repeatedly after consuming that count. `known_optimum` receives the
///   archive's recorded optimum (0 if unknown) when non-null.
MkpInstance load_mkp_orlib(std::istream& is, std::string name,
                           std::int64_t* known_optimum = nullptr);

/// Filesystem overload: opens `path` and parses the FIRST instance of the
/// file (single-instance files, or the head of a concatenated mknapcb
/// file). The instance is named after the file's basename (extension
/// stripped); open failures and parse errors both name the file in the
/// exception.
MkpInstance load_mkp_orlib(const std::string& path,
                           std::int64_t* known_optimum = nullptr);

/// Filesystem overload of the plain-text load_mkp, same error contract.
MkpInstance load_mkp(const std::string& path);

}  // namespace saim::problems
