// Replica-exchange Monte Carlo (parallel tempering) on an Ising model.
//
// This is the software stand-in for the paper's PT-DA baseline [17]: a
// parallel-tempering algorithm with 26 replicas executed on Fujitsu's
// Digital Annealer. Replicas run Metropolis sweeps at a geometric ladder of
// inverse temperatures; neighbouring replicas exchange configurations with
// the standard acceptance  min(1, exp((beta_a - beta_b)(E_a - E_b))).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "anneal/backend.hpp"
#include "ising/adjacency.hpp"
#include "ising/local_field.hpp"

namespace saim::anneal {

struct PtOptions {
  std::size_t replicas = 26;  ///< paper [17] uses 26 replicas
  double beta_min = 0.1;      ///< hottest replica
  double beta_max = 10.0;     ///< coldest replica
  std::size_t sweeps = 1000;  ///< Metropolis sweeps per replica per run
  std::size_t swap_interval = 10;  ///< sweeps between exchange attempts
};

class ParallelTempering {
 public:
  ParallelTempering(const ising::IsingModel& model, PtOptions options);

  /// One PT run from fresh random replicas. `last` is the final state of
  /// the coldest replica; `best` the best state seen by any replica.
  /// sweeps() accounts replicas * sweeps MCS.
  RunResult run(util::Xoshiro256pp& rng) const;

  [[nodiscard]] const PtOptions& options() const noexcept { return options_; }

  /// Geometric inverse-temperature ladder; index 0 = hottest.
  [[nodiscard]] std::vector<double> ladder() const;

  /// Fraction of accepted exchange attempts in the most recent run()
  /// (diagnostic for ladder quality; under concurrent runs it reports
  /// whichever run stored last).
  [[nodiscard]] double last_swap_acceptance() const noexcept {
    return last_swap_acceptance_.load(std::memory_order_relaxed);
  }

 private:
  void metropolis_sweep(ising::Spins& m, ising::LocalFieldState& lfs,
                        double beta, util::Xoshiro256pp& rng) const;

  const ising::IsingModel* model_;
  ising::Adjacency adjacency_;
  PtOptions options_;
  mutable std::atomic<double> last_swap_acceptance_{0.0};
};

/// Backend adapter so SAIM (or the penalty driver) can run on PT.
class ParallelTemperingBackend final : public IsingSolverBackend {
 public:
  explicit ParallelTemperingBackend(PtOptions options);

  void bind(const ising::IsingModel& model) override;
  RunResult run(util::Xoshiro256pp& rng) override;
  std::vector<RunResult> run_batch(util::Xoshiro256pp& rng,
                                   std::size_t replicas) override;
  [[nodiscard]] std::size_t sweeps_per_run() const override {
    return options_.replicas * options_.sweeps;
  }
  [[nodiscard]] std::string name() const override {
    return "parallel-tempering";
  }

 private:
  PtOptions options_;
  std::unique_ptr<ParallelTempering> pt_;
};

}  // namespace saim::anneal
