#include "anneal/backend.hpp"

#include <stdexcept>
#include <utility>

#include "util/parallel.hpp"

namespace saim::anneal {

std::vector<RunResult> IsingSolverBackend::run_batch(util::Xoshiro256pp& rng,
                                                     std::size_t replicas) {
  std::vector<RunResult> results;
  results.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    // Sequential batches stop between runs: what already ran is returned
    // as a partial batch (the caller sees fewer replicas).
    if (r > 0 && stop_token().stop_requested()) break;
    results.push_back(run(rng));
  }
  return results;
}

std::vector<RunResult> run_replicas_parallel(
    const std::function<RunResult(util::Xoshiro256pp&, std::size_t)>& run_one,
    util::Xoshiro256pp& rng, std::size_t replicas, std::size_t threads,
    const util::StopToken& stop) {
  const std::uint64_t base = rng();  // always advance the caller's stream
  if (stop.stop_requested()) return {};
  std::vector<RunResult> results(replicas);
  util::parallel_for(
      replicas,
      [&](std::size_t r) {
        util::Xoshiro256pp replica_rng(util::derive_seed(base, r));
        results[r] = run_one(replica_rng, r);
      },
      threads);
  return results;
}

std::vector<RunResult> run_replicas_parallel(
    const std::function<RunResult(util::Xoshiro256pp&)>& run_one,
    util::Xoshiro256pp& rng, std::size_t replicas, std::size_t threads,
    const util::StopToken& stop) {
  return run_replicas_parallel(
      [&run_one](util::Xoshiro256pp& replica_rng, std::size_t) {
        return run_one(replica_rng);
      },
      rng, replicas, threads, stop);
}

PBitBackend::PBitBackend(pbit::Schedule schedule, std::size_t sweeps,
                         pbit::SweepOrder order, bool track_best)
    : schedule_(schedule) {
  options_.sweeps = sweeps;
  options_.order = order;
  options_.track_best = track_best;
}

void PBitBackend::bind(const ising::IsingModel& model) {
  machine_ = std::make_unique<pbit::PBitMachine>(model);
  previous_state_.clear();
}

RunResult PBitBackend::run(util::Xoshiro256pp& rng) {
  if (!machine_) {
    throw std::logic_error("PBitBackend::run called before bind()");
  }
  pbit::AnnealOptions opts = options_;
  opts.stop = &stop_token();  // chunked stop checks inside the anneal loop
  const std::vector<ising::Spins> seeds = take_initial_states();
  pbit::AnnealResult r;
  if (!seeds.empty() && seeds.front().size() == machine_->n()) {
    r = machine_->anneal_from(seeds.front(), schedule_, opts, rng);
  } else if (warm_restart_ && previous_state_.size() == machine_->n()) {
    r = machine_->anneal_from(previous_state_, schedule_, opts, rng);
  } else {
    r = machine_->anneal(schedule_, opts, rng);
  }
  if (warm_restart_) previous_state_ = r.last;
  return RunResult{std::move(r.last), r.last_energy, std::move(r.best),
                   r.best_energy, r.sweeps};
}

std::vector<RunResult> PBitBackend::run_batch(util::Xoshiro256pp& rng,
                                              std::size_t replicas) {
  if (!machine_) {
    throw std::logic_error("PBitBackend::run_batch called before bind()");
  }
  if (warm_restart_) {
    return IsingSolverBackend::run_batch(rng, replicas);
  }
  pbit::AnnealOptions opts = options_;
  opts.stop = &stop_token();
  // Claimed up front so seeds warm exactly this batch: replica r starts
  // from seeds[r], replicas past the pool cold-start as usual.
  const std::vector<ising::Spins> seeds = take_initial_states();
  return run_replicas_parallel(
      [this, &opts, &seeds](util::Xoshiro256pp& replica_rng, std::size_t r) {
        const bool seeded =
            r < seeds.size() && seeds[r].size() == machine_->n();
        auto res = seeded ? machine_->anneal_from(seeds[r], schedule_, opts,
                                                  replica_rng)
                          : machine_->anneal(schedule_, opts, replica_rng);
        return RunResult{std::move(res.last), res.last_energy,
                         std::move(res.best), res.best_energy, res.sweeps};
      },
      rng, replicas, batch_threads(), stop_token());
}

}  // namespace saim::anneal
