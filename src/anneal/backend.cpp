#include "anneal/backend.hpp"

#include <stdexcept>

namespace saim::anneal {

PBitBackend::PBitBackend(pbit::Schedule schedule, std::size_t sweeps,
                         pbit::SweepOrder order, bool track_best)
    : schedule_(schedule) {
  options_.sweeps = sweeps;
  options_.order = order;
  options_.track_best = track_best;
}

void PBitBackend::bind(const ising::IsingModel& model) {
  machine_ = std::make_unique<pbit::PBitMachine>(model);
  previous_state_.clear();
}

RunResult PBitBackend::run(util::Xoshiro256pp& rng) {
  if (!machine_) {
    throw std::logic_error("PBitBackend::run called before bind()");
  }
  auto r = warm_restart_ && previous_state_.size() == machine_->n()
               ? machine_->anneal_from(previous_state_, schedule_, options_,
                                       rng)
               : machine_->anneal(schedule_, options_, rng);
  if (warm_restart_) previous_state_ = r.last;
  return RunResult{std::move(r.last), r.last_energy, std::move(r.best),
                   r.best_energy, r.sweeps};
}

}  // namespace saim::anneal
