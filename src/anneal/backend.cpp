#include "anneal/backend.hpp"

#include <stdexcept>
#include <utility>

#include "util/parallel.hpp"

namespace saim::anneal {

std::vector<RunResult> IsingSolverBackend::run_batch(util::Xoshiro256pp& rng,
                                                     std::size_t replicas) {
  std::vector<RunResult> results;
  results.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    // Sequential batches stop between runs: what already ran is returned
    // as a partial batch (the caller sees fewer replicas).
    if (r > 0 && stop_token().stop_requested()) break;
    results.push_back(run(rng));
  }
  return results;
}

void IsingSolverBackend::enqueue_fused(util::Xoshiro256pp& /*rng*/,
                                       std::size_t /*replicas*/) {
  throw std::logic_error("backend does not support fused batches");
}

std::vector<std::vector<RunResult>> IsingSolverBackend::run_fused() {
  throw std::logic_error("backend does not support fused batches");
}

std::vector<RunResult> run_replicas_parallel(
    const std::function<RunResult(util::Xoshiro256pp&, std::size_t)>& run_one,
    util::Xoshiro256pp& rng, std::size_t replicas, std::size_t threads,
    const util::StopToken& stop) {
  const std::uint64_t base = rng();  // always advance the caller's stream
  if (stop.stop_requested()) return {};
  std::vector<RunResult> results(replicas);
  util::parallel_for(
      replicas,
      [&](std::size_t r) {
        util::Xoshiro256pp replica_rng(util::derive_seed(base, r));
        results[r] = run_one(replica_rng, r);
      },
      threads);
  return results;
}

std::vector<RunResult> run_replicas_parallel(
    const std::function<RunResult(util::Xoshiro256pp&)>& run_one,
    util::Xoshiro256pp& rng, std::size_t replicas, std::size_t threads,
    const util::StopToken& stop) {
  return run_replicas_parallel(
      [&run_one](util::Xoshiro256pp& replica_rng, std::size_t) {
        return run_one(replica_rng);
      },
      rng, replicas, threads, stop);
}

PBitBackend::PBitBackend(pbit::Schedule schedule, std::size_t sweeps,
                         pbit::SweepOrder order, bool track_best)
    : schedule_(schedule) {
  options_.sweeps = sweeps;
  options_.order = order;
  options_.track_best = track_best;
}

void PBitBackend::bind(const ising::IsingModel& model) {
  machine_ = std::make_unique<pbit::PBitMachine>(model);
  previous_state_.clear();
}

RunResult PBitBackend::run(util::Xoshiro256pp& rng) {
  if (!machine_) {
    throw std::logic_error("PBitBackend::run called before bind()");
  }
  pbit::AnnealOptions opts = options_;
  opts.stop = &stop_token();  // chunked stop checks inside the anneal loop
  const std::vector<ising::Spins> seeds = take_initial_states();
  pbit::AnnealResult r;
  if (!seeds.empty() && seeds.front().size() == machine_->n()) {
    r = machine_->anneal_from(seeds.front(), schedule_, opts, rng);
  } else if (warm_restart_ && previous_state_.size() == machine_->n()) {
    r = machine_->anneal_from(previous_state_, schedule_, opts, rng);
  } else {
    r = machine_->anneal(schedule_, opts, rng);
  }
  if (warm_restart_) previous_state_ = r.last;
  return RunResult{std::move(r.last), r.last_energy, std::move(r.best),
                   r.best_energy, r.sweeps};
}

ising::SliceOptions PBitBackend::slice_options(
    std::span<const double> betas) const noexcept {
  ising::SliceOptions so;
  so.dynamics = ising::SliceDynamics::kPbit;
  so.betas = betas;
  so.track_best = options_.track_best;
  so.stop = &stop_token();
  so.stop_interval = options_.stop_interval;
  so.threads = batch_threads();
  return so;
}

std::vector<RunResult> PBitBackend::run_batch(util::Xoshiro256pp& rng,
                                              std::size_t replicas) {
  if (!machine_) {
    throw std::logic_error("PBitBackend::run_batch called before bind()");
  }
  if (warm_restart_) {
    return IsingSolverBackend::run_batch(rng, replicas);
  }
  if (replicas >= kBitsliceMinReplicas &&
      options_.order == pbit::SweepOrder::kSequential) {
    // Bit-sliced path: same derive_seed(base, r) streams, word-parallel
    // sweeps. The base draw / entry stop check mirror
    // run_replicas_parallel, so the caller-visible contract is unchanged.
    const std::vector<ising::Spins> seeds = take_initial_states();
    const std::uint64_t base = rng();
    if (stop_token().stop_requested()) return {};
    SlicePlan plan = make_slice_plan(machine_->model(), base, replicas, seeds);
    const std::vector<double> betas =
        make_beta_table(schedule_, options_.sweeps);
    auto split =
        run_slice_plans(machine_->adjacency(), {&plan, 1}, slice_options(betas));
    return std::move(split.front());
  }
  pbit::AnnealOptions opts = options_;
  opts.stop = &stop_token();
  // Claimed up front so seeds warm exactly this batch: replica r starts
  // from seeds[r], replicas past the pool cold-start as usual.
  const std::vector<ising::Spins> seeds = take_initial_states();
  return run_replicas_parallel(
      [this, &opts, &seeds](util::Xoshiro256pp& replica_rng, std::size_t r) {
        const bool seeded =
            r < seeds.size() && seeds[r].size() == machine_->n();
        auto res = seeded ? machine_->anneal_from(seeds[r], schedule_, opts,
                                                  replica_rng)
                          : machine_->anneal(schedule_, opts, replica_rng);
        return RunResult{std::move(res.last), res.last_energy,
                         std::move(res.best), res.best_energy, res.sweeps};
      },
      rng, replicas, batch_threads(), stop_token());
}

bool PBitBackend::supports_fused_batch() const noexcept {
  return machine_ != nullptr && !warm_restart_ &&
         options_.order == pbit::SweepOrder::kSequential;
}

void PBitBackend::enqueue_fused(util::Xoshiro256pp& rng,
                                std::size_t replicas) {
  if (!machine_) {
    throw std::logic_error("PBitBackend::enqueue_fused called before bind()");
  }
  // Consumes exactly what run_batch would: the pending seeds and one base
  // draw. The model's current fields are snapshotted into the plan, so the
  // caller may rewrite them for the next member immediately after.
  const std::vector<ising::Spins> seeds = take_initial_states();
  const std::uint64_t base = rng();
  fused_plans_.push_back(
      make_slice_plan(machine_->model(), base, replicas, seeds));
}

std::vector<std::vector<RunResult>> PBitBackend::run_fused() {
  std::vector<SlicePlan> plans = std::exchange(fused_plans_, {});
  if (stop_token().stop_requested()) {
    // Mirror run_batch's entry check: every pending member gets the empty
    // batch a stopped run_batch would have returned.
    return std::vector<std::vector<RunResult>>(plans.size());
  }
  const std::vector<double> betas =
      make_beta_table(schedule_, options_.sweeps);
  return run_slice_plans(machine_->adjacency(), plans, slice_options(betas));
}

}  // namespace saim::anneal
