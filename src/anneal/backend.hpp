// Solver-backend abstraction: SAIM's outer loop (Algorithm 1) only needs
// "minimize the current Hamiltonian and hand back the sample you ended on".
// The paper stresses the method "is compatible with any programmable IM";
// this interface is that compatibility point. Three backends ship in-repo:
//
//   * PBitBackend            — annealed p-bit Gibbs machine (paper's choice)
//   * MetropolisSaBackend    — classical single-flip simulated annealing
//   * ParallelTemperingBackend — replica-exchange MC (the PT-DA stand-in)
//
// A backend is bound to one IsingModel whose *couplings* stay fixed for its
// lifetime; SAIM rewrites the model's fields h between runs and calls
// fields_updated().
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "anneal/run_result.hpp"
#include "anneal/slice_driver.hpp"
#include "ising/ising_model.hpp"
#include "pbit/pbit_machine.hpp"
#include "pbit/schedule.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"

namespace saim::anneal {

class IsingSolverBackend {
 public:
  virtual ~IsingSolverBackend() = default;

  /// Binds to `model` (must outlive the backend) and builds sweep structures.
  virtual void bind(const ising::IsingModel& model) = 0;

  /// Called after the bound model's fields (not couplings) changed.
  virtual void fields_updated() {}

  /// One independent minimization run from a random initial state.
  virtual RunResult run(util::Xoshiro256pp& rng) = 0;

  /// `replicas` independent runs. The base implementation loops run() on
  /// the caller's rng; the in-repo engine backends override it to draw one
  /// base value from `rng` and run replica r with its own
  /// Xoshiro256pp(derive_seed(base, r)) stream over a thread pool, so the
  /// result vector is bit-identical regardless of thread count (and equal
  /// to running the replicas one-by-one with those derived seeds).
  virtual std::vector<RunResult> run_batch(util::Xoshiro256pp& rng,
                                           std::size_t replicas);

  /// Caps the worker threads run_batch may use (0 = all hardware
  /// threads). Set to 1 when batches run inside an already-parallel
  /// context (e.g. multi_start restarts) to avoid oversubscription —
  /// results are identical either way, only scheduling changes.
  void set_batch_threads(std::size_t threads) noexcept {
    batch_threads_ = threads;
  }
  [[nodiscard]] std::size_t batch_threads() const noexcept {
    return batch_threads_;
  }

  /// Initial-state seeding (warm starts): when a backend reports
  /// supports_initial_states(), the NEXT run() / run_batch() call starts
  /// replica r from states[r] (r < states.size(); remaining replicas
  /// cold-start as usual) instead of a fresh random configuration, then
  /// discards the seeds — one injection warms exactly one inner solve, so
  /// later iterations explore from their own samples. The service feeds
  /// this from its per-problem warm-start pool (ResultCache). Seeded runs
  /// skip the initial random-state draws, so their RNG stream differs from
  /// a cold run's — which is why warm starts are strictly opt-in at the
  /// request level. Backends without a warm path keep the default
  /// supports_initial_states() == false and are never handed seeds.
  [[nodiscard]] virtual bool supports_initial_states() const noexcept {
    return false;
  }
  void set_initial_states(std::vector<ising::Spins> states) noexcept {
    initial_states_ = std::move(states);
  }

  /// Cooperative cancellation: SaimSolver installs the solve's StopToken
  /// here before the outer loop and clears it afterwards. Backends poll it
  /// at coarse points only — between the runs of a sequential batch, at
  /// batch entry for the parallel path, and between sweep chunks inside
  /// the p-bit anneal — so a default (never-stopping) token adds nothing
  /// to the hot loop. Bit-reproducibility holds for any batch that
  /// finishes without observing a stop; once a stop fires, replicas may
  /// truncate at timing-dependent sweep counts, which is why stopped
  /// solves are tagged with a non-kCompleted Status and never cached.
  void set_stop_token(util::StopToken token) noexcept {
    stop_token_ = std::move(token);
  }
  [[nodiscard]] const util::StopToken& stop_token() const noexcept {
    return stop_token_;
  }

  /// Fused batches — batch-aware replica fusion for core::solve_batch.
  /// The lockstep batch loop runs many SAIM members against the SAME
  /// backend in one round; when each member's replicas would dispatch to
  /// the bit-sliced engine anyway, their lanes can be packed into ONE
  /// engine dispatch per round instead of one per member. Protocol:
  /// enqueue_fused(rng, replicas) once per member — it consumes exactly
  /// what run_batch would from `rng` and the pending initial states, and
  /// snapshots the bound model's current fields (the caller rewrites them
  /// between enqueues) — then one run_fused() returns per-member results
  /// in enqueue order, each vector bit-identical to the run_batch the
  /// member would have made on its own. Backends without a bit-sliced
  /// path keep the default supports_fused_batch() == false; calling the
  /// other two then is a logic error.
  [[nodiscard]] virtual bool supports_fused_batch() const noexcept {
    return false;
  }
  virtual void enqueue_fused(util::Xoshiro256pp& rng, std::size_t replicas);
  virtual std::vector<std::vector<RunResult>> run_fused();

  /// MCS consumed per run() call — used for sample-budget accounting
  /// (Fig. 4b compares methods at equal MCS).
  [[nodiscard]] virtual std::size_t sweeps_per_run() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Claims (and clears) the pending seeds; implementations call this once
  /// per run/run_batch so stale seeds can never leak into a later solve.
  [[nodiscard]] std::vector<ising::Spins> take_initial_states() noexcept {
    return std::exchange(initial_states_, {});
  }

 private:
  std::size_t batch_threads_ = 0;
  util::StopToken stop_token_;
  std::vector<ising::Spins> initial_states_;
};

/// Shared implementation of the deterministic parallel run_batch contract:
/// draws one base value from `rng`, then runs `run_one` for each replica r
/// with a fresh Xoshiro256pp(derive_seed(base, r)) over util::parallel_for.
/// `run_one` must be safe to invoke concurrently (all in-repo sweep
/// engines are: they only read the bound model/adjacency).
///
/// `stop` is checked once at entry: a batch whose stop already fired
/// returns empty instead of starting. A batch that did start runs every
/// replica — but a stop firing mid-batch may still truncate individual
/// replicas inside `run_one` (e.g. the p-bit anneal's chunked checks), so
/// only batches that complete without observing a stop are bit-identical
/// across thread counts. The base value is drawn from `rng` regardless,
/// so the caller's RNG stream position does not depend on stop timing.
std::vector<RunResult> run_replicas_parallel(
    const std::function<RunResult(util::Xoshiro256pp&)>& run_one,
    util::Xoshiro256pp& rng, std::size_t replicas,
    std::size_t threads = 0, const util::StopToken& stop = {});

/// As above, with the replica index passed through to `run_one` — the hook
/// warm-started batches use to give replica r its pooled initial state
/// while keeping the same derive_seed(base, r) stream (so a seeded batch is
/// still bit-identical across thread counts).
std::vector<RunResult> run_replicas_parallel(
    const std::function<RunResult(util::Xoshiro256pp&, std::size_t)>& run_one,
    util::Xoshiro256pp& rng, std::size_t replicas,
    std::size_t threads = 0, const util::StopToken& stop = {});

/// The paper's backend: p-bit machine annealed with a (linear) beta ramp.
class PBitBackend final : public IsingSolverBackend {
 public:
  PBitBackend(pbit::Schedule schedule, std::size_t sweeps,
              pbit::SweepOrder order = pbit::SweepOrder::kSequential,
              bool track_best = false);

  void bind(const ising::IsingModel& model) override;
  RunResult run(util::Xoshiro256pp& rng) override;
  /// Parallel cold-start replicas; falls back to the sequential base loop
  /// when warm restarts are enabled (those are inherently order-dependent).
  /// Sequential-order batches of kBitsliceMinReplicas+ replicas dispatch
  /// to the bit-sliced engine — same results, one word-parallel pass.
  std::vector<RunResult> run_batch(util::Xoshiro256pp& rng,
                                   std::size_t replicas) override;
  [[nodiscard]] bool supports_fused_batch() const noexcept override;
  void enqueue_fused(util::Xoshiro256pp& rng, std::size_t replicas) override;
  std::vector<std::vector<RunResult>> run_fused() override;
  [[nodiscard]] std::size_t sweeps_per_run() const override {
    return options_.sweeps;
  }
  [[nodiscard]] std::string name() const override { return "pbit"; }
  /// anneal_from gives the p-bit machine a native seeded path.
  [[nodiscard]] bool supports_initial_states() const noexcept override {
    return true;
  }

  /// Warm restarts (ablation; off by default = the paper's cold starts):
  /// each run() continues from the previous run's final state instead of a
  /// fresh random one. SAIM's landscape changes only slightly per lambda
  /// update once the multipliers settle, so the previous sample is a
  /// near-equilibrium start.
  void set_warm_restart(bool enabled) noexcept { warm_restart_ = enabled; }

 private:
  [[nodiscard]] ising::SliceOptions slice_options(
      std::span<const double> betas) const noexcept;

  pbit::Schedule schedule_;
  pbit::AnnealOptions options_;
  std::unique_ptr<pbit::PBitMachine> machine_;
  bool warm_restart_ = false;
  ising::Spins previous_state_;
  std::vector<SlicePlan> fused_plans_;
};

}  // namespace saim::anneal
