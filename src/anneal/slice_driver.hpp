// Glue between the backend layer and the bit-sliced sweep engine.
//
// A backend that dispatches a batch to ising::BitSliceEngine must hand each
// lane exactly what the scalar replica would have seen: the stream
// Xoshiro256pp(derive_seed(base, r)) positioned after the initial-state
// draws, the warm seed (if any) for replica r, the run-start energy, and a
// snapshot of the model's fields. SlicePlan captures that per batch member;
// run_slice_plans packs any number of plans — one for a plain run_batch,
// several for core::solve_batch's fused rounds — into a single engine
// dispatch and splits the results back per plan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "anneal/run_result.hpp"
#include "ising/bitslice.hpp"
#include "ising/ising_model.hpp"
#include "pbit/schedule.hpp"

namespace saim::anneal {

/// Replica batches at or above this size go through the bit-sliced engine
/// (when the backend's configuration allows it — see the backends'
/// run_batch). Below it the per-batch packing overhead outweighs the
/// word-parallel sweeps; results are bit-identical either way, so the
/// threshold is pure performance policy.
inline constexpr std::size_t kBitsliceMinReplicas = 32;

/// One batch member's share of a bit-sliced dispatch. `fields` keeps the
/// member's h-snapshot alive (lambda updates rewrite the model's fields
/// between enqueue and run in fused rounds); the lanes' `fields` pointers
/// are set by run_slice_plans once the plan list stops moving.
struct SlicePlan {
  std::vector<double> fields;
  std::vector<ising::SliceLane> lanes;
};

/// Builds the lanes for `replicas` replicas of `model` exactly as the
/// scalar run_batch contract: lane r runs Xoshiro256pp(derive_seed(base,
/// r)); warm lanes start from seeds[r] with an untouched stream, cold
/// lanes draw their ±1 start from it (PBitMachine::random_state order);
/// energies are the dense model.energy of the start state, matching
/// LocalFieldState::reset.
SlicePlan make_slice_plan(const ising::IsingModel& model, std::uint64_t base,
                          std::size_t replicas,
                          const std::vector<ising::Spins>& seeds);

/// betas[t] = schedule.beta(t, sweeps) — the exact doubles the scalar
/// anneal loop would compute.
std::vector<double> make_beta_table(const pbit::Schedule& schedule,
                                    std::size_t sweeps);

/// Runs every plan's lanes through one BitSliceEngine dispatch over
/// `adjacency` and returns RunResults split per plan (results[p][r] is
/// plan p's replica r). options.betas/dynamics/track_best/stop/threads are
/// the caller's; lane fields pointers are wired here.
std::vector<std::vector<RunResult>> run_slice_plans(
    const ising::Adjacency& adjacency, std::span<SlicePlan> plans,
    ising::SliceOptions options);

}  // namespace saim::anneal
