// The result contract every inner-solver run hands back to SAIM's outer
// loop. Split out of backend.hpp so lower-level helpers (the bit-sliced
// dispatch driver) can speak it without pulling in the backend interface.
#pragma once

#include <cstddef>

#include "ising/ising_model.hpp"

namespace saim::anneal {

struct RunResult {
  ising::Spins last;         ///< state read at the end of the run
  double last_energy = 0.0;  ///< H(last)
  ising::Spins best;         ///< lowest-energy state visited during the run
  double best_energy = 0.0;
  std::size_t sweeps = 0;  ///< Monte-Carlo sweeps consumed by this run
};

}  // namespace saim::anneal
