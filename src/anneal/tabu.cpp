#include "anneal/tabu.hpp"

#include <limits>
#include <stdexcept>

#include "ising/local_field.hpp"

namespace saim::anneal {

TabuSearch::TabuSearch(const ising::IsingModel& model, TabuOptions options)
    : model_(&model), adjacency_(model), options_(options) {
  if (options_.tenure == 0) {
    throw std::invalid_argument("TabuSearch: tenure must be positive");
  }
}

RunResult TabuSearch::run(util::Xoshiro256pp& rng) const {
  const std::size_t n = model_->n();
  RunResult result;

  auto random_state = [&] {
    ising::Spins m(n);
    for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
    return m;
  };

  ising::Spins state = random_state();
  // The engine maintains every spin's input I_i incrementally, so the move
  // deltas 2 m_i I_i are O(1) reads in the scan and a stall restart no
  // longer pays the old O(n^2) dense delta recompute (reset keeps one
  // dense energy evaluation for bit-compatibility with the old path).
  ising::LocalFieldState lfs(*model_, adjacency_);
  lfs.reset(state);
  result.best = state;
  result.best_energy = lfs.energy();

  std::vector<std::size_t> tabu_until(n, 0);
  std::size_t stall = 0;

  for (std::size_t step = 1; step <= options_.steps; ++step) {
    std::size_t best_move = n;
    double best_delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = lfs.flip_delta(state, i);
      const bool is_tabu = tabu_until[i] >= step;
      // Aspiration: a tabu move is allowed if it beats the incumbent.
      const bool aspirated =
          is_tabu && lfs.energy() + delta < result.best_energy;
      if (is_tabu && !aspirated) continue;
      if (delta < best_delta) {
        best_delta = delta;
        best_move = i;
      }
    }
    if (best_move == n) {
      // Everything tabu and nothing aspirated — age out by one step.
      continue;
    }

    // Apply the move.
    lfs.flip(state, best_move);
    tabu_until[best_move] = step + options_.tenure;

    if (lfs.energy() < result.best_energy - 1e-15) {
      result.best_energy = lfs.energy();
      result.best = state;
      stall = 0;
    } else if (options_.stall_limit != 0 &&
               ++stall >= options_.stall_limit) {
      state = random_state();
      lfs.reset(state);
      std::fill(tabu_until.begin(), tabu_until.end(), 0);
      stall = 0;
    }
  }

  result.last = state;
  result.last_energy = lfs.energy();
  result.sweeps = (options_.steps + n - 1) / (n == 0 ? 1 : n);
  return result;
}

TabuBackend::TabuBackend(TabuOptions options) : options_(options) {}

void TabuBackend::bind(const ising::IsingModel& model) {
  tabu_ = std::make_unique<TabuSearch>(model, options_);
  n_ = model.n();
}

RunResult TabuBackend::run(util::Xoshiro256pp& rng) {
  if (!tabu_) {
    throw std::logic_error("TabuBackend::run called before bind()");
  }
  return tabu_->run(rng);
}

std::vector<RunResult> TabuBackend::run_batch(util::Xoshiro256pp& rng,
                                              std::size_t replicas) {
  if (!tabu_) {
    throw std::logic_error("TabuBackend::run_batch called before bind()");
  }
  return run_replicas_parallel(
      [this](util::Xoshiro256pp& replica_rng) {
        return tabu_->run(replica_rng);
      },
      rng, replicas, batch_threads(), stop_token());
}

std::size_t TabuBackend::sweeps_per_run() const {
  return n_ == 0 ? options_.steps : (options_.steps + n_ - 1) / n_;
}

}  // namespace saim::anneal
