#include "anneal/tabu.hpp"

#include <limits>
#include <stdexcept>

namespace saim::anneal {

TabuSearch::TabuSearch(const ising::IsingModel& model, TabuOptions options)
    : model_(&model), adjacency_(model), options_(options) {
  if (options_.tenure == 0) {
    throw std::invalid_argument("TabuSearch: tenure must be positive");
  }
}

RunResult TabuSearch::run(util::Xoshiro256pp& rng) const {
  const std::size_t n = model_->n();
  RunResult result;

  auto random_state = [&] {
    ising::Spins m(n);
    for (auto& s : m) s = rng.bernoulli(0.5) ? 1 : -1;
    return m;
  };

  ising::Spins state = random_state();
  double energy = model_->energy(state);
  result.best = state;
  result.best_energy = energy;

  // delta[i] = energy change of flipping spin i; maintained incrementally:
  // flipping j negates delta[j] and shifts neighbours by 4 J_ij m_i m_j.
  std::vector<double> delta(n);
  auto recompute_deltas = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      delta[i] = model_->flip_delta(state, i);
    }
  };
  recompute_deltas();

  std::vector<std::size_t> tabu_until(n, 0);
  std::size_t stall = 0;

  for (std::size_t step = 1; step <= options_.steps; ++step) {
    std::size_t best_move = n;
    double best_delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const bool is_tabu = tabu_until[i] >= step;
      // Aspiration: a tabu move is allowed if it beats the incumbent.
      const bool aspirated =
          is_tabu && energy + delta[i] < result.best_energy;
      if (is_tabu && !aspirated) continue;
      if (delta[i] < best_delta) {
        best_delta = delta[i];
        best_move = i;
      }
    }
    if (best_move == n) {
      // Everything tabu and nothing aspirated — age out by one step.
      continue;
    }

    // Apply the move.
    const std::size_t j = best_move;
    energy += delta[j];
    state[j] = static_cast<std::int8_t>(-state[j]);
    tabu_until[j] = step + options_.tenure;
    delta[j] = -delta[j];
    const auto nbr = adjacency_.neighbors(j);
    const auto w = adjacency_.weights(j);
    for (std::size_t k = 0; k < nbr.size(); ++k) {
      const std::size_t i = nbr[k];
      // dH_i = 2 m_i I_i with I_i containing J_ij m_j: m_j changed sign,
      // shifting delta[i] by 2 m_i * J_ij * (m_j_new - m_j_old)
      //       = 2 m_i J_ij * 2 m_j_new = 4 J_ij m_i m_j_new... but in our
      // convention H = -sum J m m, so flip_delta = 2 m_i I_i with
      // I_i = sum J_ij m_j + h_i and dH(flip i) = 2 m_i I_i. After m_j
      // flips, I_i changes by 2 J_ij m_j_new, so delta[i] changes by
      // 4 m_i J_ij m_j_new.
      delta[i] += 4.0 * static_cast<double>(state[i]) * w[k] *
                  static_cast<double>(state[j]);
    }

    if (energy < result.best_energy - 1e-15) {
      result.best_energy = energy;
      result.best = state;
      stall = 0;
    } else if (options_.stall_limit != 0 &&
               ++stall >= options_.stall_limit) {
      state = random_state();
      energy = model_->energy(state);
      recompute_deltas();
      std::fill(tabu_until.begin(), tabu_until.end(), 0);
      stall = 0;
    }
  }

  result.last = state;
  result.last_energy = energy;
  result.sweeps = (options_.steps + n - 1) / (n == 0 ? 1 : n);
  return result;
}

TabuBackend::TabuBackend(TabuOptions options) : options_(options) {}

void TabuBackend::bind(const ising::IsingModel& model) {
  tabu_ = std::make_unique<TabuSearch>(model, options_);
  n_ = model.n();
}

RunResult TabuBackend::run(util::Xoshiro256pp& rng) {
  if (!tabu_) {
    throw std::logic_error("TabuBackend::run called before bind()");
  }
  return tabu_->run(rng);
}

std::size_t TabuBackend::sweeps_per_run() const {
  return n_ == 0 ? options_.steps : (options_.steps + n_ - 1) / n_;
}

}  // namespace saim::anneal
