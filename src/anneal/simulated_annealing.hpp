// Classical single-spin-flip Metropolis simulated annealing on an Ising
// model. Serves two roles:
//   * an alternative SAIM inner solver (backend), demonstrating the
//     "any programmable IM" claim with different acceptance dynamics, and
//   * the engine behind the penalty-method baseline of Table II when a
//     Metropolis (rather than Gibbs) sampler is requested.
#pragma once

#include <memory>

#include "anneal/backend.hpp"
#include "ising/adjacency.hpp"
#include "pbit/schedule.hpp"

namespace saim::anneal {

struct SaOptions {
  std::size_t sweeps = 1000;
  bool track_best = true;
};

class MetropolisSa {
 public:
  /// Model must outlive the annealer; builds the coupling CSR once.
  explicit MetropolisSa(const ising::IsingModel& model);

  /// One annealing run from a uniform random state.
  RunResult run(const pbit::Schedule& schedule, const SaOptions& options,
                util::Xoshiro256pp& rng) const;

  /// One annealing run continuing from `start`.
  RunResult run_from(ising::Spins start, const pbit::Schedule& schedule,
                     const SaOptions& options, util::Xoshiro256pp& rng) const;

  /// Bound model / CSR — shared with the bit-sliced batch path so it runs
  /// over the exact same couplings and live fields as the scalar sweeps.
  [[nodiscard]] const ising::IsingModel& model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const ising::Adjacency& adjacency() const noexcept {
    return adjacency_;
  }

 private:
  const ising::IsingModel* model_;
  ising::Adjacency adjacency_;
};

/// Backend adapter for SAIM.
class MetropolisSaBackend final : public IsingSolverBackend {
 public:
  MetropolisSaBackend(pbit::Schedule schedule, std::size_t sweeps,
                      bool track_best = true);

  void bind(const ising::IsingModel& model) override;
  RunResult run(util::Xoshiro256pp& rng) override;
  /// Batches of kBitsliceMinReplicas+ replicas dispatch to the bit-sliced
  /// engine — same per-replica results, one word-parallel pass.
  std::vector<RunResult> run_batch(util::Xoshiro256pp& rng,
                                   std::size_t replicas) override;
  [[nodiscard]] bool supports_fused_batch() const noexcept override;
  void enqueue_fused(util::Xoshiro256pp& rng, std::size_t replicas) override;
  std::vector<std::vector<RunResult>> run_fused() override;
  [[nodiscard]] std::size_t sweeps_per_run() const override {
    return options_.sweeps;
  }
  [[nodiscard]] std::string name() const override { return "metropolis-sa"; }
  /// run_from gives Metropolis SA a native seeded path.
  [[nodiscard]] bool supports_initial_states() const noexcept override {
    return true;
  }

 private:
  [[nodiscard]] ising::SliceOptions slice_options(
      std::span<const double> betas) const noexcept;

  pbit::Schedule schedule_;
  SaOptions options_;
  std::unique_ptr<MetropolisSa> sa_;
  std::size_t model_n_ = 0;  ///< spin count of the bound model (seed checks)
  std::vector<SlicePlan> fused_plans_;
};

}  // namespace saim::anneal
