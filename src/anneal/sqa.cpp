#include "anneal/sqa.hpp"

#include <cmath>
#include <stdexcept>

#include "ising/local_field.hpp"

namespace saim::anneal {

SimulatedQuantumAnnealer::SimulatedQuantumAnnealer(
    const ising::IsingModel& model, SqaOptions options)
    : model_(&model), adjacency_(model), options_(options) {
  if (options_.trotter_slices < 2) {
    throw std::invalid_argument("SQA: need at least 2 Trotter slices");
  }
  if (options_.beta <= 0.0) {
    throw std::invalid_argument("SQA: beta must be positive");
  }
  if (options_.gamma_end <= 0.0 ||
      options_.gamma_start < options_.gamma_end) {
    throw std::invalid_argument(
        "SQA: require 0 < gamma_end <= gamma_start");
  }
}

double SimulatedQuantumAnnealer::perp_coupling(double gamma) const {
  const auto m = static_cast<double>(options_.trotter_slices);
  const double t = std::tanh(options_.beta * gamma / m);
  // tanh > 0 for gamma > 0; J_perp -> infinity as gamma -> 0 (slices lock).
  return -0.5 / options_.beta * std::log(t);
}

RunResult SimulatedQuantumAnnealer::run(util::Xoshiro256pp& rng) const {
  const std::size_t n = model_->n();
  const std::size_t slices = options_.trotter_slices;
  const auto m_d = static_cast<double>(slices);

  std::vector<ising::Spins> state(slices);
  // One incremental engine per Trotter slice; each tracks its slice's
  // *unscaled* classical energy (the readout quantity).
  std::vector<ising::LocalFieldState> fields(slices);
  for (std::size_t k = 0; k < slices; ++k) {
    state[k].resize(n);
    for (auto& s : state[k]) s = rng.bernoulli(0.5) ? 1 : -1;
    fields[k] = ising::LocalFieldState(*model_, adjacency_);
    fields[k].reset(state[k]);
  }

  RunResult result;
  std::size_t best_k = 0;
  for (std::size_t k = 1; k < slices; ++k) {
    if (fields[k].energy() < fields[best_k].energy()) best_k = k;
  }
  result.best = state[best_k];
  result.best_energy = fields[best_k].energy();

  // Geometric Gamma ramp (standard for SQA; linear works too but wastes
  // sweeps at large Gamma where slices are uncorrelated anyway).
  const double ratio = options_.gamma_end / options_.gamma_start;
  for (std::size_t t = 0; t < options_.sweeps; ++t) {
    const double frac =
        options_.sweeps > 1
            ? static_cast<double>(t) /
                  static_cast<double>(options_.sweeps - 1)
            : 1.0;
    const double gamma = options_.gamma_start * std::pow(ratio, frac);
    const double jperp = perp_coupling(gamma);

    for (std::size_t k = 0; k < slices; ++k) {
      const std::size_t up = (k + 1) % slices;
      const std::size_t down = (k + slices - 1) % slices;
      for (std::size_t i = 0; i < n; ++i) {
        const double classical_in = fields[k].field(i);
        const double classical_delta =
            2.0 * static_cast<double>(state[k][i]) * classical_in / m_d;
        const double quantum_delta =
            2.0 * jperp * static_cast<double>(state[k][i]) *
            (static_cast<double>(state[up][i]) +
             static_cast<double>(state[down][i]));
        const double delta = classical_delta + quantum_delta;
        if (delta <= 0.0 ||
            rng.uniform01() < std::exp(-options_.beta * delta)) {
          // flip() tracks the un-scaled classical energy for readout.
          fields[k].flip(state[k], i);
          if (fields[k].energy() < result.best_energy) {
            result.best_energy = fields[k].energy();
            result.best = state[k];
          }
        }
      }
    }
  }

  best_k = 0;
  for (std::size_t k = 1; k < slices; ++k) {
    if (fields[k].energy() < fields[best_k].energy()) best_k = k;
  }
  result.last = state[best_k];
  result.last_energy = fields[best_k].energy();
  result.sweeps = slices * options_.sweeps;
  return result;
}

SqaBackend::SqaBackend(SqaOptions options) : options_(options) {}

void SqaBackend::bind(const ising::IsingModel& model) {
  sqa_ = std::make_unique<SimulatedQuantumAnnealer>(model, options_);
}

RunResult SqaBackend::run(util::Xoshiro256pp& rng) {
  if (!sqa_) {
    throw std::logic_error("SqaBackend::run called before bind()");
  }
  return sqa_->run(rng);
}

std::vector<RunResult> SqaBackend::run_batch(util::Xoshiro256pp& rng,
                                             std::size_t replicas) {
  if (!sqa_) {
    throw std::logic_error("SqaBackend::run_batch called before bind()");
  }
  return run_replicas_parallel(
      [this](util::Xoshiro256pp& replica_rng) {
        return sqa_->run(replica_rng);
      },
      rng, replicas, batch_threads(), stop_token());
}

}  // namespace saim::anneal
