#include "anneal/exact_backend.hpp"

#include <stdexcept>

namespace saim::anneal {

void ExactBackend::bind(const ising::IsingModel& model) {
  if (model.n() > 26) {
    throw std::invalid_argument(
        "ExactBackend: model too large for enumeration (n > 26)");
  }
  model_ = &model;
}

RunResult ExactBackend::run(util::Xoshiro256pp& rng) {
  (void)rng;
  if (model_ == nullptr) {
    throw std::logic_error("ExactBackend::run called before bind()");
  }
  const std::size_t n = model_->n();
  RunResult result;

  // Gray-code enumeration: consecutive codes differ in one spin, so the
  // energy is maintained incrementally with flip_delta — O(2^n * n)
  // instead of O(2^n * n^2). Float drift over 2^n additions is bounded by
  // the deltas' magnitudes; energies are re-derived exactly for the winner.
  ising::Spins m(n, std::int8_t{-1});  // Gray code 0 = all -1
  double energy = model_->energy(m);
  result.best = m;
  result.best_energy = energy;
  for (std::uint64_t code = 1; code < (1ULL << n); ++code) {
    const auto bit = static_cast<std::size_t>(__builtin_ctzll(code));
    energy += model_->flip_delta(m, bit);
    m[bit] = static_cast<std::int8_t>(-m[bit]);
    if (energy < result.best_energy) {
      result.best_energy = energy;
      result.best = m;
    }
  }
  result.best_energy = model_->energy(result.best);  // exact re-derivation
  result.last = result.best;
  result.last_energy = result.best_energy;
  result.sweeps = sweeps_per_run();
  return result;
}

std::size_t ExactBackend::sweeps_per_run() const {
  if (model_ == nullptr || model_->n() == 0) return 0;
  return static_cast<std::size_t>((1ULL << model_->n()) / model_->n());
}

}  // namespace saim::anneal
