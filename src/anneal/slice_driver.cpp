#include "anneal/slice_driver.hpp"

#include <utility>

#include "util/rng.hpp"

namespace saim::anneal {

SlicePlan make_slice_plan(const ising::IsingModel& model, std::uint64_t base,
                          std::size_t replicas,
                          const std::vector<ising::Spins>& seeds) {
  SlicePlan plan;
  const std::size_t n = model.n();
  plan.fields.assign(model.fields().begin(), model.fields().end());
  plan.lanes.resize(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    util::Xoshiro256pp lane_rng(util::derive_seed(base, r));
    ising::SliceLane& lane = plan.lanes[r];
    if (r < seeds.size() && seeds[r].size() == n) {
      lane.spins = seeds[r];  // warm lane: stream stays at its start
    } else {
      lane.spins.resize(n);
      for (auto& s : lane.spins) {
        s = lane_rng.bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1};
      }
    }
    lane.energy = model.energy(lane.spins);
    lane.rng = lane_rng.state();
  }
  return plan;
}

std::vector<double> make_beta_table(const pbit::Schedule& schedule,
                                    std::size_t sweeps) {
  std::vector<double> betas(sweeps);
  for (std::size_t t = 0; t < sweeps; ++t) {
    betas[t] = schedule.beta(t, sweeps);
  }
  return betas;
}

std::vector<std::vector<RunResult>> run_slice_plans(
    const ising::Adjacency& adjacency, std::span<SlicePlan> plans,
    ising::SliceOptions options) {
  std::vector<ising::SliceLane> all;
  std::size_t total = 0;
  for (const SlicePlan& plan : plans) total += plan.lanes.size();
  all.reserve(total);
  for (SlicePlan& plan : plans) {
    for (ising::SliceLane& lane : plan.lanes) {
      lane.fields = plan.fields.data();
      all.push_back(std::move(lane));
    }
  }

  const ising::BitSliceEngine engine(adjacency);
  std::vector<ising::SliceResult> res = engine.run(all, options);

  std::vector<std::vector<RunResult>> out;
  out.reserve(plans.size());
  std::size_t pos = 0;
  for (const SlicePlan& plan : plans) {
    std::vector<RunResult>& runs = out.emplace_back();
    runs.reserve(plan.lanes.size());
    for (std::size_t r = 0; r < plan.lanes.size(); ++r, ++pos) {
      ising::SliceResult& s = res[pos];
      runs.push_back(RunResult{std::move(s.last), s.last_energy,
                               std::move(s.best), s.best_energy, s.sweeps});
    }
  }
  return out;
}

}  // namespace saim::anneal
