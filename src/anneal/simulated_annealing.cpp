#include "anneal/simulated_annealing.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ising/local_field.hpp"
#include "util/accept_bounds.hpp"

namespace saim::anneal {

MetropolisSa::MetropolisSa(const ising::IsingModel& model)
    : model_(&model), adjacency_(model) {}

RunResult MetropolisSa::run(const pbit::Schedule& schedule,
                            const SaOptions& options,
                            util::Xoshiro256pp& rng) const {
  ising::Spins start(model_->n());
  for (auto& s : start) {
    s = rng.bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1};
  }
  return run_from(std::move(start), schedule, options, rng);
}

RunResult MetropolisSa::run_from(ising::Spins start,
                                 const pbit::Schedule& schedule,
                                 const SaOptions& options,
                                 util::Xoshiro256pp& rng) const {
  RunResult result;
  result.last = std::move(start);
  result.sweeps = options.sweeps;

  const std::size_t n = model_->n();
  ising::LocalFieldState lfs(*model_, adjacency_);
  lfs.reset(result.last);
  result.best = result.last;
  result.best_energy = lfs.energy();

  for (std::size_t t = 0; t < options.sweeps; ++t) {
    const double beta = schedule.beta(t, options.sweeps);
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = lfs.flip_delta(result.last, i);
      // Tiered acceptance: bit-identical to u < std::exp(-beta*delta) but
      // ~all visits decide from u's exponent / the exp bounds without a
      // libm call (the bit-sliced engine's test, scalar lane). The
      // short-circuit keeps the RNG stream unchanged: a draw happens only
      // when delta > 0.
      if (delta <= 0.0 ||
          util::exp_accept(rng.uniform01(), -beta * delta)) {
        lfs.flip(result.last, i);
      }
    }
    if (options.track_best && lfs.energy() < result.best_energy) {
      result.best_energy = lfs.energy();
      result.best = result.last;
    }
  }
  result.last_energy = lfs.energy();
  if (!options.track_best) {
    result.best = result.last;
    result.best_energy = result.last_energy;
  }
  return result;
}

MetropolisSaBackend::MetropolisSaBackend(pbit::Schedule schedule,
                                         std::size_t sweeps, bool track_best)
    : schedule_(schedule) {
  options_.sweeps = sweeps;
  options_.track_best = track_best;
}

void MetropolisSaBackend::bind(const ising::IsingModel& model) {
  sa_ = std::make_unique<MetropolisSa>(model);
  model_n_ = model.n();
}

RunResult MetropolisSaBackend::run(util::Xoshiro256pp& rng) {
  if (!sa_) {
    throw std::logic_error("MetropolisSaBackend::run called before bind()");
  }
  const std::vector<ising::Spins> seeds = take_initial_states();
  if (!seeds.empty() && seeds.front().size() == model_n_) {
    return sa_->run_from(seeds.front(), schedule_, options_, rng);
  }
  return sa_->run(schedule_, options_, rng);
}

ising::SliceOptions MetropolisSaBackend::slice_options(
    std::span<const double> betas) const noexcept {
  ising::SliceOptions so;
  so.dynamics = ising::SliceDynamics::kMetropolis;
  so.betas = betas;
  so.track_best = options_.track_best;
  // The scalar Metropolis loop has no mid-run stop checks; the engine's
  // between-sweep polls are a strict improvement (completed batches are
  // still bit-identical — stops only ever truncate).
  so.stop = &stop_token();
  so.threads = batch_threads();
  return so;
}

std::vector<RunResult> MetropolisSaBackend::run_batch(
    util::Xoshiro256pp& rng, std::size_t replicas) {
  if (!sa_) {
    throw std::logic_error(
        "MetropolisSaBackend::run_batch called before bind()");
  }
  if (replicas >= kBitsliceMinReplicas) {
    // Bit-sliced path: same derive_seed(base, r) streams, word-parallel
    // sweeps. Base draw / entry stop check mirror run_replicas_parallel.
    const std::vector<ising::Spins> seeds = take_initial_states();
    const std::uint64_t base = rng();
    if (stop_token().stop_requested()) return {};
    SlicePlan plan = make_slice_plan(sa_->model(), base, replicas, seeds);
    const std::vector<double> betas =
        make_beta_table(schedule_, options_.sweeps);
    auto split =
        run_slice_plans(sa_->adjacency(), {&plan, 1}, slice_options(betas));
    return std::move(split.front());
  }
  // Replica r warm-starts from seeds[r]; the rest cold-start.
  const std::vector<ising::Spins> seeds = take_initial_states();
  return run_replicas_parallel(
      [this, &seeds](util::Xoshiro256pp& replica_rng, std::size_t r) {
        if (r < seeds.size() && seeds[r].size() == model_n_) {
          return sa_->run_from(seeds[r], schedule_, options_, replica_rng);
        }
        return sa_->run(schedule_, options_, replica_rng);
      },
      rng, replicas, batch_threads(), stop_token());
}

bool MetropolisSaBackend::supports_fused_batch() const noexcept {
  return sa_ != nullptr;
}

void MetropolisSaBackend::enqueue_fused(util::Xoshiro256pp& rng,
                                        std::size_t replicas) {
  if (!sa_) {
    throw std::logic_error(
        "MetropolisSaBackend::enqueue_fused called before bind()");
  }
  const std::vector<ising::Spins> seeds = take_initial_states();
  const std::uint64_t base = rng();
  fused_plans_.push_back(make_slice_plan(sa_->model(), base, replicas, seeds));
}

std::vector<std::vector<RunResult>> MetropolisSaBackend::run_fused() {
  std::vector<SlicePlan> plans = std::exchange(fused_plans_, {});
  if (stop_token().stop_requested()) {
    return std::vector<std::vector<RunResult>>(plans.size());
  }
  const std::vector<double> betas =
      make_beta_table(schedule_, options_.sweeps);
  return run_slice_plans(sa_->adjacency(), plans, slice_options(betas));
}

}  // namespace saim::anneal
