#include "anneal/simulated_annealing.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ising/local_field.hpp"

namespace saim::anneal {

MetropolisSa::MetropolisSa(const ising::IsingModel& model)
    : model_(&model), adjacency_(model) {}

RunResult MetropolisSa::run(const pbit::Schedule& schedule,
                            const SaOptions& options,
                            util::Xoshiro256pp& rng) const {
  ising::Spins start(model_->n());
  for (auto& s : start) {
    s = rng.bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1};
  }
  return run_from(std::move(start), schedule, options, rng);
}

RunResult MetropolisSa::run_from(ising::Spins start,
                                 const pbit::Schedule& schedule,
                                 const SaOptions& options,
                                 util::Xoshiro256pp& rng) const {
  RunResult result;
  result.last = std::move(start);
  result.sweeps = options.sweeps;

  const std::size_t n = model_->n();
  ising::LocalFieldState lfs(*model_, adjacency_);
  lfs.reset(result.last);
  result.best = result.last;
  result.best_energy = lfs.energy();

  for (std::size_t t = 0; t < options.sweeps; ++t) {
    const double beta = schedule.beta(t, options.sweeps);
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = lfs.flip_delta(result.last, i);
      if (delta <= 0.0 || rng.uniform01() < std::exp(-beta * delta)) {
        lfs.flip(result.last, i);
      }
    }
    if (options.track_best && lfs.energy() < result.best_energy) {
      result.best_energy = lfs.energy();
      result.best = result.last;
    }
  }
  result.last_energy = lfs.energy();
  if (!options.track_best) {
    result.best = result.last;
    result.best_energy = result.last_energy;
  }
  return result;
}

MetropolisSaBackend::MetropolisSaBackend(pbit::Schedule schedule,
                                         std::size_t sweeps, bool track_best)
    : schedule_(schedule) {
  options_.sweeps = sweeps;
  options_.track_best = track_best;
}

void MetropolisSaBackend::bind(const ising::IsingModel& model) {
  sa_ = std::make_unique<MetropolisSa>(model);
  model_n_ = model.n();
}

RunResult MetropolisSaBackend::run(util::Xoshiro256pp& rng) {
  if (!sa_) {
    throw std::logic_error("MetropolisSaBackend::run called before bind()");
  }
  const std::vector<ising::Spins> seeds = take_initial_states();
  if (!seeds.empty() && seeds.front().size() == model_n_) {
    return sa_->run_from(seeds.front(), schedule_, options_, rng);
  }
  return sa_->run(schedule_, options_, rng);
}

std::vector<RunResult> MetropolisSaBackend::run_batch(
    util::Xoshiro256pp& rng, std::size_t replicas) {
  if (!sa_) {
    throw std::logic_error(
        "MetropolisSaBackend::run_batch called before bind()");
  }
  // Replica r warm-starts from seeds[r]; the rest cold-start.
  const std::vector<ising::Spins> seeds = take_initial_states();
  return run_replicas_parallel(
      [this, &seeds](util::Xoshiro256pp& replica_rng, std::size_t r) {
        if (r < seeds.size() && seeds[r].size() == model_n_) {
          return sa_->run_from(seeds[r], schedule_, options_, replica_rng);
        }
        return sa_->run(schedule_, options_, replica_rng);
      },
      rng, replicas, batch_threads(), stop_token());
}

}  // namespace saim::anneal
