// Tabu search on Ising models — a deterministic-moves, memory-based QUBO
// heuristic that is the standard software baseline in the Ising-machine
// literature (e.g. inside D-Wave's hybrid tooling). Included as a fourth
// interchangeable SAIM backend and as a strong unconstrained comparator.
//
// Classic single-flip tabu: each step flips the non-tabu spin with the
// best (possibly uphill) energy delta, marks it tabu for `tenure` steps,
// and allows tabu moves that beat the incumbent (aspiration criterion).
#pragma once

#include <memory>

#include "anneal/backend.hpp"
#include "ising/adjacency.hpp"

namespace saim::anneal {

struct TabuOptions {
  std::size_t steps = 1000;  ///< single-flip moves per run
  std::size_t tenure = 10;   ///< steps a flipped spin stays tabu
  /// Restart from a fresh random state when no improvement for this many
  /// steps (0 = never restart).
  std::size_t stall_limit = 200;
};

class TabuSearch {
 public:
  /// Model must outlive the search; the coupling CSR is built once.
  TabuSearch(const ising::IsingModel& model, TabuOptions options);

  RunResult run(util::Xoshiro256pp& rng) const;

  [[nodiscard]] const TabuOptions& options() const noexcept {
    return options_;
  }

 private:
  const ising::IsingModel* model_;
  ising::Adjacency adjacency_;
  TabuOptions options_;
};

class TabuBackend final : public IsingSolverBackend {
 public:
  explicit TabuBackend(TabuOptions options);

  void bind(const ising::IsingModel& model) override;
  RunResult run(util::Xoshiro256pp& rng) override;
  std::vector<RunResult> run_batch(util::Xoshiro256pp& rng,
                                   std::size_t replicas) override;
  /// One tabu step touches one spin; n steps ~ one Monte-Carlo sweep, so
  /// report steps/n (rounded up) as the sweep-equivalent for budget
  /// accounting.
  [[nodiscard]] std::size_t sweeps_per_run() const override;
  [[nodiscard]] std::string name() const override { return "tabu"; }

 private:
  TabuOptions options_;
  std::unique_ptr<TabuSearch> tabu_;
  std::size_t n_ = 0;
};

}  // namespace saim::anneal
