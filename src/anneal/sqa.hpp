// Simulated Quantum Annealing (SQA) — path-integral Monte Carlo over M
// Trotter slices, the quantum-inspired algorithm behind several of the
// hardware annealers the paper benchmarks against (D-Wave-style transverse
// field annealing in software, also offered by Fujitsu's ecosystem).
//
// Effective classical Hamiltonian of the M-slice system at temperature
// 1/beta with transverse field Gamma:
//
//   H_eff = (1/M) sum_k H(m^k)  -  J_perp(Gamma) sum_k sum_i m_i^k m_i^{k+1}
//   J_perp = -(1/(2 beta)) ln tanh(beta Gamma / M)      (>0 for Gamma > 0)
//
// with periodic slices (k+1 mod M). Annealing lowers Gamma from gamma_start
// toward ~0, strengthening the inter-slice ferromagnetic coupling until all
// slices agree on one classical state. Readout is the best slice by
// classical energy. Implements IsingSolverBackend, so SAIM can run on it.
#pragma once

#include <memory>

#include "anneal/backend.hpp"
#include "ising/adjacency.hpp"

namespace saim::anneal {

struct SqaOptions {
  std::size_t trotter_slices = 16;
  double beta = 5.0;          ///< fixed inverse temperature of the bath
  double gamma_start = 3.0;   ///< initial transverse field
  double gamma_end = 0.01;    ///< final transverse field (> 0)
  std::size_t sweeps = 1000;  ///< full-system sweeps over all slices
};

class SimulatedQuantumAnnealer {
 public:
  SimulatedQuantumAnnealer(const ising::IsingModel& model,
                           SqaOptions options);

  /// One SQA run from random slices. `last`/`best` are the best slice by
  /// classical energy at the end / over the whole run. `sweeps` accounts
  /// slices * sweeps classical-sweep equivalents.
  RunResult run(util::Xoshiro256pp& rng) const;

  [[nodiscard]] const SqaOptions& options() const noexcept {
    return options_;
  }

  /// Inter-slice coupling for a given transverse field (exposed for tests).
  [[nodiscard]] double perp_coupling(double gamma) const;

 private:
  const ising::IsingModel* model_;
  ising::Adjacency adjacency_;
  SqaOptions options_;
};

class SqaBackend final : public IsingSolverBackend {
 public:
  explicit SqaBackend(SqaOptions options);

  void bind(const ising::IsingModel& model) override;
  RunResult run(util::Xoshiro256pp& rng) override;
  std::vector<RunResult> run_batch(util::Xoshiro256pp& rng,
                                   std::size_t replicas) override;
  [[nodiscard]] std::size_t sweeps_per_run() const override {
    return options_.trotter_slices * options_.sweeps;
  }
  [[nodiscard]] std::string name() const override { return "sqa"; }

 private:
  SqaOptions options_;
  std::unique_ptr<SimulatedQuantumAnnealer> sqa_;
};

}  // namespace saim::anneal
