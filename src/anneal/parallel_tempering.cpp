#include "anneal/parallel_tempering.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ising/local_field.hpp"

namespace saim::anneal {

ParallelTempering::ParallelTempering(const ising::IsingModel& model,
                                     PtOptions options)
    : model_(&model), adjacency_(model), options_(options) {
  if (options_.replicas < 2) {
    throw std::invalid_argument("ParallelTempering: need >= 2 replicas");
  }
  if (options_.beta_min <= 0.0 || options_.beta_max <= options_.beta_min) {
    throw std::invalid_argument(
        "ParallelTempering: require 0 < beta_min < beta_max");
  }
  if (options_.swap_interval == 0) options_.swap_interval = 1;
}

std::vector<double> ParallelTempering::ladder() const {
  std::vector<double> betas(options_.replicas);
  const double ratio = options_.beta_max / options_.beta_min;
  const auto r = static_cast<double>(options_.replicas - 1);
  for (std::size_t k = 0; k < options_.replicas; ++k) {
    betas[k] =
        options_.beta_min * std::pow(ratio, static_cast<double>(k) / r);
  }
  return betas;
}

void ParallelTempering::metropolis_sweep(ising::Spins& m,
                                         ising::LocalFieldState& lfs,
                                         double beta,
                                         util::Xoshiro256pp& rng) const {
  const std::size_t n = model_->n();
  for (std::size_t i = 0; i < n; ++i) {
    const double delta = lfs.flip_delta(m, i);
    if (delta <= 0.0 || rng.uniform01() < std::exp(-beta * delta)) {
      lfs.flip(m, i);
    }
  }
}

RunResult ParallelTempering::run(util::Xoshiro256pp& rng) const {
  const std::vector<double> betas = ladder();
  const std::size_t r = options_.replicas;
  const std::size_t n = model_->n();

  std::vector<ising::Spins> states(r);
  std::vector<ising::LocalFieldState> fields(r);
  for (std::size_t k = 0; k < r; ++k) {
    states[k].resize(n);
    for (auto& s : states[k]) {
      s = rng.bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1};
    }
    fields[k] = ising::LocalFieldState(*model_, adjacency_);
    fields[k].reset(states[k]);
  }

  RunResult result;
  // Best over all replicas at any time.
  std::size_t best_replica = 0;
  for (std::size_t k = 1; k < r; ++k) {
    if (fields[k].energy() < fields[best_replica].energy()) best_replica = k;
  }
  result.best = states[best_replica];
  result.best_energy = fields[best_replica].energy();

  std::size_t swap_attempts = 0;
  std::size_t swap_accepts = 0;

  for (std::size_t t = 0; t < options_.sweeps; ++t) {
    for (std::size_t k = 0; k < r; ++k) {
      metropolis_sweep(states[k], fields[k], betas[k], rng);
      if (fields[k].energy() < result.best_energy) {
        result.best_energy = fields[k].energy();
        result.best = states[k];
      }
    }
    if ((t + 1) % options_.swap_interval == 0) {
      // Alternate even/odd neighbour pairs so every ladder edge is tried.
      const std::size_t parity = (t / options_.swap_interval) % 2;
      for (std::size_t k = parity; k + 1 < r; k += 2) {
        ++swap_attempts;
        const double arg = (betas[k] - betas[k + 1]) *
                           (fields[k].energy() - fields[k + 1].energy());
        if (arg >= 0.0 || rng.uniform01() < std::exp(arg)) {
          std::swap(states[k], states[k + 1]);
          swap(fields[k], fields[k + 1]);
          ++swap_accepts;
        }
      }
    }
  }

  last_swap_acceptance_.store(
      swap_attempts ? static_cast<double>(swap_accepts) /
                          static_cast<double>(swap_attempts)
                    : 0.0,
      std::memory_order_relaxed);

  // The "measured sample" of a PT run is the coldest replica's final state.
  result.last = states[r - 1];
  result.last_energy = fields[r - 1].energy();
  result.sweeps = options_.replicas * options_.sweeps;
  return result;
}

ParallelTemperingBackend::ParallelTemperingBackend(PtOptions options)
    : options_(options) {}

void ParallelTemperingBackend::bind(const ising::IsingModel& model) {
  pt_ = std::make_unique<ParallelTempering>(model, options_);
}

RunResult ParallelTemperingBackend::run(util::Xoshiro256pp& rng) {
  if (!pt_) {
    throw std::logic_error(
        "ParallelTemperingBackend::run called before bind()");
  }
  return pt_->run(rng);
}

std::vector<RunResult> ParallelTemperingBackend::run_batch(
    util::Xoshiro256pp& rng, std::size_t replicas) {
  if (!pt_) {
    throw std::logic_error(
        "ParallelTemperingBackend::run_batch called before bind()");
  }
  return run_replicas_parallel(
      [this](util::Xoshiro256pp& replica_rng) {
        return pt_->run(replica_rng);
      },
      rng, replicas, batch_threads(), stop_token());
}

}  // namespace saim::anneal
