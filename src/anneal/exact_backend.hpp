// Exact inner minimizer: solves argmin_m H(m) by enumeration (n <= 26).
//
// Two uses:
//   * In tests it isolates SAIM's lambda dynamics from sampler noise — with
//     an exact inner solve, Algorithm 1 *is* the textbook subgradient dual
//     ascent, so its convergence properties can be asserted deterministically.
//   * It powers the duality-gap study (examples/duality_gap.cpp): computing
//     LB_L = min_x L(x; lambda) exactly shows how the Lagrange term closes
//     the gap G = OPT - LB_L that a too-small penalty P < P_C leaves open
//     (paper Fig. 2).
#pragma once

#include "anneal/backend.hpp"

namespace saim::anneal {

class ExactBackend final : public IsingSolverBackend {
 public:
  ExactBackend() = default;

  void bind(const ising::IsingModel& model) override;

  /// Deterministic: always returns the true ground state (ties resolve to
  /// the first minimizer in Gray-code enumeration order). The rng is
  /// unused.
  RunResult run(util::Xoshiro256pp& rng) override;

  /// One exact solve enumerates 2^n states; report 2^n / n "sweeps" so MCS
  /// budget comparisons against samplers stay meaningful.
  [[nodiscard]] std::size_t sweeps_per_run() const override;
  [[nodiscard]] std::string name() const override { return "exact"; }

 private:
  const ising::IsingModel* model_ = nullptr;
};

}  // namespace saim::anneal
