#include "ising/convert.hpp"

#include <stdexcept>

namespace saim::ising {

IsingModel qubo_to_ising(const QuboModel& qubo) {
  const std::size_t n = qubo.n();
  IsingModel ising(n);
  double offset = qubo.offset();
  std::vector<double> row_sum(n, 0.0);

  qubo.for_each_quadratic([&](std::size_t i, std::size_t j, double q) {
    ising.add_coupling(i, j, -q / 4.0);
    row_sum[i] += q;
    row_sum[j] += q;
    offset += q / 4.0;
  });
  for (std::size_t i = 0; i < n; ++i) {
    const double qi = qubo.linear(i);
    ising.set_field(i, -(qi / 2.0 + row_sum[i] / 4.0));
    offset += qi / 2.0;
  }
  ising.set_offset(offset);
  return ising;
}

QuboModel ising_to_qubo(const IsingModel& ising) {
  // Inverse map: m_i = 2 x_i - 1 gives
  //   -J_ij m_i m_j = -4 J_ij x_i x_j + 2 J_ij (x_i + x_j) - J_ij
  //   -h_i m_i      = -2 h_i x_i + h_i
  const std::size_t n = ising.n();
  QuboModel qubo(n);
  double offset = ising.offset();
  ising.for_each_coupling([&](std::size_t i, std::size_t j, double jij) {
    qubo.add_quadratic(i, j, -4.0 * jij);
    qubo.add_linear(i, 2.0 * jij);
    qubo.add_linear(j, 2.0 * jij);
    offset -= jij;
  });
  for (std::size_t i = 0; i < n; ++i) {
    const double hi = ising.field(i);
    qubo.add_linear(i, -2.0 * hi);
    offset += hi;
  }
  qubo.set_offset(offset);
  return qubo;
}

Spins bits_to_spins(std::span<const std::uint8_t> x) {
  Spins m(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    m[i] = x[i] ? std::int8_t{1} : std::int8_t{-1};
  }
  return m;
}

Bits spins_to_bits(std::span<const std::int8_t> m) {
  Bits x(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    x[i] = m[i] > 0 ? std::uint8_t{1} : std::uint8_t{0};
  }
  return x;
}

void refresh_fields_from_qubo(const QuboModel& qubo, IsingModel& ising) {
  const std::size_t n = qubo.n();
  if (ising.n() != n) {
    throw std::invalid_argument(
        "refresh_fields_from_qubo: dimension mismatch");
  }
  double offset = qubo.offset();
  std::vector<double> row_sum(n, 0.0);
  qubo.for_each_quadratic([&](std::size_t i, std::size_t j, double q) {
    row_sum[i] += q;
    row_sum[j] += q;
    offset += q / 4.0;
  });
  for (std::size_t i = 0; i < n; ++i) {
    const double qi = qubo.linear(i);
    ising.set_field(i, -(qi / 2.0 + row_sum[i] / 4.0));
    offset += qi / 2.0;
  }
  ising.set_offset(offset);
}

}  // namespace saim::ising
