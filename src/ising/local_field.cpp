#include "ising/local_field.hpp"

namespace saim::ising {

void LocalFieldState::reset(const Spins& m) {
  const std::size_t size = n();
  for (std::size_t i = 0; i < size; ++i) {
    coupling_in_[i] = adjacency_->coupling_input(m, i);
  }
  // The dense evaluation reproduces, bit for bit, the energy every
  // pre-engine backend computed at run start, so trajectories stay
  // identical to the recompute era on arbitrary (non-dyadic) models too.
  // (An O(n) form exists — H = offset - 0.5 sum m_i C_i - sum h_i m_i —
  // but its different rounding perturbs seed-sensitive trajectories.)
  energy_ = model_->energy(m);
}

double LocalFieldState::flip(Spins& m, std::size_t i) {
  const double delta = flip_delta(m, i);
  m[i] = static_cast<std::int8_t>(-m[i]);
  const auto mi = static_cast<double>(m[i]);  // new value of spin i
  const auto nbr = adjacency_->neighbors(i);
  const auto w = adjacency_->weights(i);
  for (std::size_t k = 0; k < nbr.size(); ++k) {
    // m_i went from -mi to mi, so C_j = sum J_jl m_l shifts by 2 J_ij mi.
    coupling_in_[nbr[k]] += 2.0 * w[k] * mi;
  }
  energy_ += delta;
  return delta;
}

}  // namespace saim::ising
