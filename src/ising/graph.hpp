// Lightweight undirected weighted graph, the input format for the max-cut
// workload (the paper's introductory example of what Ising machines solve
// natively: "minimizing (1) is equivalent to the NP-hard problem of
// maximizing the cut of a graph ... weighted by W_ij = -J_ij").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace saim::ising {

struct Edge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double weight = 1.0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_vertices);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] std::span<const Edge> edges() const noexcept {
    return edges_;
  }

  /// Adds an undirected edge u-v (u != v, both < n). Parallel edges are
  /// allowed and behave additively for cut purposes.
  void add_edge(std::size_t u, std::size_t v, double weight = 1.0);

  [[nodiscard]] double total_weight() const noexcept;

  /// Sum of degrees of vertex v over incident edge weights.
  [[nodiscard]] double weighted_degree(std::size_t v) const;

  /// Cut value of a ±1 partition: sum of weights of edges whose endpoints
  /// lie on opposite sides.
  [[nodiscard]] double cut_value(std::span<const std::int8_t> side) const;

  /// Plain-text serialization: "n m" header then "u v w" lines.
  static Graph load(std::istream& is);
  void save(std::ostream& os) const;

 private:
  std::size_t n_ = 0;
  std::vector<Edge> edges_;
};

/// Erdos–Renyi G(n, p) with weights U[lo, hi]; deterministic per seed.
Graph random_gnp_graph(std::size_t n, double p, std::uint64_t seed,
                       double weight_lo = 1.0, double weight_hi = 1.0);

/// 2-D torus grid graph (every vertex degree 4), unit weights — a standard
/// structured max-cut benchmark topology.
Graph torus_grid_graph(std::size_t rows, std::size_t cols);

}  // namespace saim::ising
