// Bit-sliced multi-replica sweep engine.
//
// Packs the ±1 spins of up to 64 replicas ("lanes") into one machine word
// per spin: bit b of word S[i] holds lane b's sign of spin i. One pass over
// spin i's CSR neighborhood then advances the local-field bookkeeping for
// every lane at once — the coupling inputs C[i] live lane-major
// (C[i*64+b]), so the masked neighbor updates after a flip word are
// contiguous SIMD loads/stores, and a visit whose flip word is zero (the
// common case at late beta) skips the neighborhood entirely.
//
// Per-lane trajectories are BIT-IDENTICAL to the scalar engines
// (pbit::PBitMachine::anneal_from and anneal::MetropolisSa::run_from over
// ising::LocalFieldState) on every model, not just dyadic ones:
//
//   * every fp expression of the scalar visit is mirrored operation for
//     operation (no FMA contraction, same rounding);
//   * each lane runs its own xoshiro256++ stream (util::simd SoA step),
//     advanced exactly when the scalar loop would draw — Metropolis lanes
//     with delta <= 0 skip the draw via a masked state update;
//   * the exp/tanh acceptance tests are decided through conservative
//     bounds (util/accept_bounds.hpp) that bracket the libm result; the
//     rare ambiguous lane falls back to the identical libm call.
//
// Lanes are independent: each carries its own initial state, energy, RNG
// state and fields pointer, so one dispatch can fuse the replicas of many
// batch members (different lambda = different h) — core::solve_batch's
// fused rounds — without any cross-talk. Groups of 64 lanes run
// independently and may be spread over a thread pool; results do not
// depend on the grouping or thread count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ising/adjacency.hpp"
#include "ising/ising_model.hpp"
#include "util/stop_token.hpp"

namespace saim::ising {

/// Which scalar engine's per-visit semantics a run reproduces.
enum class SliceDynamics {
  kPbit,        ///< m_i = sign(tanh(beta*I_i) + U(-1,1)), one draw per visit
  kMetropolis,  ///< flip if dH <= 0 or U(0,1) < exp(-beta*dH)
};

/// One replica's slice of a run. `rng` is the xoshiro256++ state positioned
/// exactly where the scalar engine's stream would be after the initial
/// state draws (cold lanes) or immediately after seeding (warm lanes).
/// `energy` must equal the scalar run-start energy, i.e. what
/// LocalFieldState::reset computes for `spins` under `fields`.
struct SliceLane {
  Spins spins;
  double energy = 0.0;
  std::array<std::uint64_t, 4> rng{};
  const double* fields = nullptr;  ///< h_i, n doubles, caller-owned
};

struct SliceResult {
  Spins last;
  double last_energy = 0.0;
  Spins best;
  double best_energy = 0.0;
  std::size_t sweeps = 0;  ///< sweeps actually performed (stop may truncate)
};

struct SliceOptions {
  SliceDynamics dynamics = SliceDynamics::kMetropolis;
  /// betas[t] for sweep t; size() is the sweep count. Callers precompute
  /// schedule.beta(t, sweeps) so the values match the scalar loop exactly.
  std::span<const double> betas;
  bool track_best = true;
  /// Polled between sweeps every `stop_interval` (pbit's chunked-check
  /// pattern); a stopped group returns valid partial results with
  /// `sweeps` < betas.size().
  const util::StopToken* stop = nullptr;
  std::size_t stop_interval = 64;
  std::size_t threads = 1;  ///< 64-lane groups run via util::parallel_for
};

class BitSliceEngine {
 public:
  static constexpr std::size_t kWord = 64;  ///< lanes per group word

  /// Borrows the adjacency (must outlive the engine). Fields are per-lane,
  /// so one engine serves any mix of batch members over the same couplings.
  explicit BitSliceEngine(const Adjacency& adjacency) noexcept
      : adjacency_(&adjacency) {}

  /// Runs every lane for options.betas.size() sweeps. Results are in lane
  /// order and bit-identical to running each lane through the matching
  /// scalar engine. Lanes are read, not modified.
  [[nodiscard]] std::vector<SliceResult> run(
      std::span<SliceLane> lanes, const SliceOptions& options) const;

 private:
  const Adjacency* adjacency_;
};

}  // namespace saim::ising
