// Compressed-sparse-row view of an Ising coupling matrix.
//
// The dense IsingModel rows make model construction simple, but Monte-Carlo
// sweeps only need each spin's nonzero neighbours. For the paper's QKP
// instances with density 0.25-0.5 a CSR scan does 2-4x less memory traffic
// per sweep. The CSR is built once per SAIM run: lambda updates change only
// the fields h (see ising/convert.hpp), never the couplings, so the
// adjacency stays valid across all K outer iterations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ising/ising_model.hpp"
#include "util/simd.hpp"

namespace saim::ising {

class Adjacency {
 public:
  Adjacency() = default;

  /// Builds CSR from the model's nonzero couplings (both directions stored).
  explicit Adjacency(const IsingModel& model);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return weights_.size() / 2;
  }

  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::size_t i) const noexcept {
    return {indices_.data() + offsets_[i],
            offsets_[i + 1] - offsets_[i]};
  }
  [[nodiscard]] std::span<const double> weights(std::size_t i) const noexcept {
    return {weights_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

  /// Coupling contribution sum_j J_ij m_j for spin i. O(deg(i)).
  ///
  /// Vectorized with the portable SIMD shim: four independent accumulators
  /// over the CSR row, folded as (a0+a1)+(a2+a3), then a sequential scalar
  /// tail. The summation order is fixed by this definition — identical for
  /// the AVX2/NEON and scalar-emulation builds — and shared by every
  /// consumer (LocalFieldState::reset, the parity-test references, the
  /// bit-sliced engine's lane init), so all engines agree bit for bit.
  [[nodiscard]] double coupling_input(std::span<const std::int8_t> m,
                                      std::size_t i) const noexcept {
    const auto nbr = neighbors(i);
    const auto w = weights(i);
    const std::size_t deg = nbr.size();
    const std::size_t deg4 = deg & ~std::size_t{3};
    std::size_t k = 0;
    double acc = 0.0;
    if (deg4 != 0) {
      util::F64x4 accv = util::F64x4::zero();
      for (; k < deg4; k += 4) {
        const util::F64x4 wv = util::F64x4::load(w.data() + k);
        const util::F64x4 mv =
            util::F64x4::set(static_cast<double>(m[nbr[k]]),
                             static_cast<double>(m[nbr[k + 1]]),
                             static_cast<double>(m[nbr[k + 2]]),
                             static_cast<double>(m[nbr[k + 3]]));
        accv = accv + wv * mv;
      }
      double lanes[4];
      util::store4(accv, lanes);
      acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    }
    for (; k < deg; ++k) {
      acc += w[k] * static_cast<double>(m[nbr[k]]);
    }
    return acc;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> offsets_;    ///< n+1 entries
  std::vector<std::uint32_t> indices_;  ///< neighbour spin ids
  std::vector<double> weights_;         ///< matching J_ij values
};

}  // namespace saim::ising
