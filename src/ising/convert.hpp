// Exact maps between the binary (QUBO) and ±1 (Ising) pictures.
//
// With x_i = (1 + m_i)/2:
//   E(x) = sum_{i<j} Q_ij x_i x_j + sum_i q_i x_i + c
// becomes H(m) = -sum_{i<j} J_ij m_i m_j - sum_i h_i m_i + offset with
//   J_ij    = -Q_ij / 4
//   h_i     = -(q_i/2 + sum_{j != i} Q_ij / 4)
//   offset  = c + sum_{i<j} Q_ij/4 + sum_i q_i/2
// so that H(m(x)) == E(x) for every configuration (tested exhaustively).
#pragma once

#include <cstdint>
#include <span>

#include "ising/ising_model.hpp"
#include "ising/qubo_model.hpp"

namespace saim::ising {

/// QUBO -> Ising, energy-preserving (H(m(x)) == E(x)).
IsingModel qubo_to_ising(const QuboModel& qubo);

/// Ising -> QUBO, energy-preserving (E(x(m)) == H(m)).
QuboModel ising_to_qubo(const IsingModel& ising);

/// x -> m with m_i = 2 x_i - 1.
Spins bits_to_spins(std::span<const std::uint8_t> x);

/// m -> x with x_i = (m_i + 1)/2.
Bits spins_to_bits(std::span<const std::int8_t> m);

/// Refreshes only the Ising fields/offset from updated QUBO linear terms,
/// assuming couplings are unchanged. This is the cheap path SAIM uses after
/// a lambda update: the Lagrange term lambda^T g(x) is linear in x, so only
/// q and c move, hence only h and the offset move. O(n^2) worst case but no
/// reallocation; with precomputed row sums it is O(n) per changed entry.
void refresh_fields_from_qubo(const QuboModel& qubo, IsingModel& ising);

}  // namespace saim::ising
