// Quadratic Unconstrained Binary Optimization model:
//
//   E(x) = sum_{i<j} Q_ij x_i x_j + sum_i q_i x_i + c ,  x in {0,1}^n
//
// This is the binary-variable view the paper's energies are written in
// (eq. 3 and eq. 5); the p-bit machine consumes its ±1 (Ising) image via
// ising/convert.hpp. Problem sizes here are a few hundred variables
// (N=100..300 plus ~10 slack bits), so couplings are stored densely as a
// full symmetric matrix: row access during Monte-Carlo sweeps is then a
// contiguous scan, which beats sparse formats below ~10^3 variables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace saim::ising {

using Bits = std::vector<std::uint8_t>;  ///< binary configuration, values 0/1

class QuboModel {
 public:
  QuboModel() = default;
  explicit QuboModel(std::size_t n);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  /// Accumulates into the linear coefficient q_i.
  void add_linear(std::size_t i, double v);
  void set_linear(std::size_t i, double v);
  [[nodiscard]] double linear(std::size_t i) const;
  [[nodiscard]] std::span<const double> linear_terms() const noexcept {
    return linear_;
  }
  [[nodiscard]] std::span<double> mutable_linear_terms() noexcept {
    return linear_;
  }

  /// Accumulates into the symmetric coupling Q_ij (i != j). The value `v`
  /// is the full coefficient of the product x_i x_j; internally both (i,j)
  /// and (j,i) halves are kept so that row scans see every neighbour.
  void add_quadratic(std::size_t i, std::size_t j, double v);
  [[nodiscard]] double quadratic(std::size_t i, std::size_t j) const;

  void add_offset(double v) noexcept { offset_ += v; }
  void set_offset(double v) noexcept { offset_ = v; }
  [[nodiscard]] double offset() const noexcept { return offset_; }

  /// Contiguous row i of the symmetric coupling matrix (length n).
  [[nodiscard]] std::span<const double> row(std::size_t i) const;

  /// Full energy E(x). O(n^2).
  [[nodiscard]] double energy(std::span<const std::uint8_t> x) const;

  /// Energy change of flipping bit i from configuration x. O(n):
  ///   dE = (1 - 2 x_i) * (q_i + sum_j Q_ij x_j).
  [[nodiscard]] double flip_delta(std::span<const std::uint8_t> x,
                                  std::size_t i) const;

  /// Local field q_i + sum_j Q_ij x_j (the gradient of E w.r.t. x_i).
  [[nodiscard]] double local_field(std::span<const std::uint8_t> x,
                                   std::size_t i) const;

  /// Number of strictly-upper-triangle nonzero couplings.
  [[nodiscard]] std::size_t nnz() const noexcept;

  /// Coupling density d = nnz / (n(n-1)/2); the paper's penalty heuristic
  /// P = alpha * d * N uses this quantity.
  [[nodiscard]] double density() const noexcept;

  /// Largest absolute coefficient over couplings and linear terms.
  [[nodiscard]] double max_abs_coefficient() const noexcept;

  /// Calls f(i, j, Q_ij) for every nonzero coupling with i < j.
  template <typename F>
  void for_each_quadratic(F&& f) const {
    for (std::size_t i = 0; i < n_; ++i) {
      const double* r = coupling_.data() + i * n_;
      for (std::size_t j = i + 1; j < n_; ++j) {
        if (r[j] != 0.0) f(i, j, r[j]);
      }
    }
  }

 private:
  void check_index(std::size_t i) const;

  std::size_t n_ = 0;
  std::vector<double> coupling_;  ///< n*n row-major symmetric, zero diagonal
  std::vector<double> linear_;
  double offset_ = 0.0;
};

}  // namespace saim::ising
