#include "ising/ising_model.hpp"

#include <stdexcept>
#include <string>

namespace saim::ising {

IsingModel::IsingModel(std::size_t n)
    : n_(n), coupling_(n * n, 0.0), field_(n, 0.0) {}

void IsingModel::check_index(std::size_t i) const {
  if (i >= n_) {
    throw std::out_of_range("IsingModel: index " + std::to_string(i) +
                            " out of range for n=" + std::to_string(n_));
  }
}

void IsingModel::add_coupling(std::size_t i, std::size_t j, double v) {
  check_index(i);
  check_index(j);
  if (i == j) {
    // m_i^2 == 1: a diagonal coupling is a constant shift of -v in H.
    offset_ -= v;
    return;
  }
  coupling_[i * n_ + j] += v;
  coupling_[j * n_ + i] += v;
}

double IsingModel::coupling(std::size_t i, std::size_t j) const {
  check_index(i);
  check_index(j);
  if (i == j) return 0.0;
  return coupling_[i * n_ + j];
}

void IsingModel::add_field(std::size_t i, double v) {
  check_index(i);
  field_[i] += v;
}

void IsingModel::set_field(std::size_t i, double v) {
  check_index(i);
  field_[i] = v;
}

double IsingModel::field(std::size_t i) const {
  check_index(i);
  return field_[i];
}

std::span<const double> IsingModel::row(std::size_t i) const {
  check_index(i);
  return {coupling_.data() + i * n_, n_};
}

double IsingModel::energy(std::span<const std::int8_t> m) const {
  double e = offset_;
  for (std::size_t i = 0; i < n_; ++i) {
    const auto mi = static_cast<double>(m[i]);
    e -= field_[i] * mi;
    const double* r = coupling_.data() + i * n_;
    double acc = 0.0;
    for (std::size_t j = i + 1; j < n_; ++j) {
      acc += r[j] * static_cast<double>(m[j]);
    }
    e -= mi * acc;
  }
  return e;
}

double IsingModel::input(std::span<const std::int8_t> m, std::size_t i) const {
  double acc = field_[i];
  const double* r = coupling_.data() + i * n_;
  for (std::size_t j = 0; j < n_; ++j) {
    acc += r[j] * static_cast<double>(m[j]);
  }
  return acc;
}

double IsingModel::flip_delta(std::span<const std::int8_t> m,
                              std::size_t i) const {
  // H contains -m_i * I_i (with I_i independent of m_i); flipping m_i
  // changes H by 2 m_i I_i.
  return 2.0 * static_cast<double>(m[i]) * input(m, i);
}

std::size_t IsingModel::nnz() const noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double* r = coupling_.data() + i * n_;
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (r[j] != 0.0) ++count;
    }
  }
  return count;
}

}  // namespace saim::ising
