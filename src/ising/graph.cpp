#include "ising/graph.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/rng.hpp"

namespace saim::ising {

Graph::Graph(std::size_t num_vertices) : n_(num_vertices) {}

void Graph::add_edge(std::size_t u, std::size_t v, double weight) {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("Graph::add_edge: vertex out of range");
  }
  if (u == v) {
    throw std::invalid_argument("Graph::add_edge: self-loops not allowed");
  }
  edges_.push_back(Edge{static_cast<std::uint32_t>(u),
                        static_cast<std::uint32_t>(v), weight});
}

double Graph::total_weight() const noexcept {
  double acc = 0.0;
  for (const auto& e : edges_) acc += e.weight;
  return acc;
}

double Graph::weighted_degree(std::size_t v) const {
  if (v >= n_) {
    throw std::out_of_range("Graph::weighted_degree: vertex out of range");
  }
  double acc = 0.0;
  for (const auto& e : edges_) {
    if (e.u == v || e.v == v) acc += e.weight;
  }
  return acc;
}

double Graph::cut_value(std::span<const std::int8_t> side) const {
  if (side.size() != n_) {
    throw std::invalid_argument("Graph::cut_value: partition size mismatch");
  }
  double cut = 0.0;
  for (const auto& e : edges_) {
    if (side[e.u] != side[e.v]) cut += e.weight;
  }
  return cut;
}

Graph Graph::load(std::istream& is) {
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(is >> n >> m)) {
    throw std::runtime_error("Graph::load: bad header");
  }
  Graph g(n);
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t u = 0;
    std::size_t v = 0;
    double w = 0.0;
    if (!(is >> u >> v >> w)) {
      throw std::runtime_error("Graph::load: truncated edge list");
    }
    g.add_edge(u, v, w);
  }
  return g;
}

void Graph::save(std::ostream& os) const {
  os << n_ << ' ' << edges_.size() << '\n';
  for (const auto& e : edges_) {
    os << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

Graph random_gnp_graph(std::size_t n, double p, std::uint64_t seed,
                       double weight_lo, double weight_hi) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("random_gnp_graph: p must be in [0,1]");
  }
  if (weight_hi < weight_lo) {
    throw std::invalid_argument("random_gnp_graph: bad weight range");
  }
  util::Xoshiro256pp rng(seed);
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.uniform01() < p) {
        const double w =
            weight_lo + (weight_hi - weight_lo) * rng.uniform01();
        g.add_edge(u, v, w);
      }
    }
  }
  return g;
}

Graph torus_grid_graph(std::size_t rows, std::size_t cols) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("torus_grid_graph: need at least 2x2");
  }
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return g;
}

}  // namespace saim::ising
