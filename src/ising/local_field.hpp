// Incremental local-field sweep engine — the shared numeric core of every
// Monte-Carlo backend in this repo.
//
// A sweep visits each spin and needs its p-bit input (paper eq. 9)
//     I_i = sum_j J_ij m_j + h_i .
// Recomputing the coupling part with a CSR scan on every visit costs
// O(sum_i deg(i)) per sweep even when almost nothing flips — which is
// exactly the regime late-anneal betas live in. LocalFieldState instead
// keeps the coupling inputs  C_i = sum_j J_ij m_j  as persistent state:
//
//   * reset(m)  rebuilds C[] in O(sum deg) (plus one dense energy
//     evaluation) — once per run, not once per visit;
//   * flip(m,i) flips spin i and pushes the change to its neighbours'
//     C_j in O(deg(i)) — so a sweep costs O(n + flips * deg) instead of
//     O(sum deg).
//
// The field part h_i is read live from the bound IsingModel on every
// field() call: SAIM's lambda updates rewrite only h between runs
// (see ising/adjacency.hpp), so the incremental state never goes stale
// across outer iterations and backends need no refresh in
// fields_updated().
//
// All updates are plain additions of the same J_ij m_j terms the
// recompute path sums, so for models whose couplings, fields and partial
// sums are exactly representable (e.g. dyadic rationals — the parity
// tests use these) the engine's trajectory is bit-identical to the
// recompute-every-visit implementation it replaced.
#pragma once

#include <cstddef>
#include <vector>

#include "ising/adjacency.hpp"
#include "ising/ising_model.hpp"

namespace saim::ising {

class LocalFieldState {
 public:
  LocalFieldState() = default;

  /// Borrows `model` and `adjacency` (both must outlive the engine; the
  /// adjacency must have been built from the model). Backends already own
  /// one Adjacency per bound model and share it across replicas/slices.
  LocalFieldState(const IsingModel& model, const Adjacency& adjacency)
      : model_(&model),
        adjacency_(&adjacency),
        coupling_in_(model.n(), 0.0) {}

  [[nodiscard]] std::size_t n() const noexcept { return coupling_in_.size(); }

  /// Rebuilds the coupling inputs (O(sum deg)) and the tracked energy
  /// (one dense O(n^2) evaluation, kept bit-compatible with the
  /// pre-engine backends). Call once per run (or after externally
  /// replacing the state, e.g. a restart).
  void reset(const Spins& m);

  /// p-bit input I_i = C_i + h_i for the state last synced via
  /// reset()/flip(). O(1).
  [[nodiscard]] double field(std::size_t i) const noexcept {
    return coupling_in_[i] + model_->field(i);
  }

  /// Energy change of flipping spin i in the synced state: dH = 2 m_i I_i.
  [[nodiscard]] double flip_delta(const Spins& m,
                                  std::size_t i) const noexcept {
    return 2.0 * static_cast<double>(m[i]) * field(i);
  }

  /// Flips m[i], updates the neighbours' coupling inputs in O(deg(i)) and
  /// the tracked energy. Returns the energy change dH.
  double flip(Spins& m, std::size_t i);

  /// Hamiltonian of the synced state, maintained incrementally.
  [[nodiscard]] double energy() const noexcept { return energy_; }

  /// PT replica exchange swaps whole configurations; swapping the engines
  /// alongside the states keeps both consistent in O(1).
  friend void swap(LocalFieldState& a, LocalFieldState& b) noexcept {
    std::swap(a.model_, b.model_);
    std::swap(a.adjacency_, b.adjacency_);
    a.coupling_in_.swap(b.coupling_in_);
    std::swap(a.energy_, b.energy_);
  }

 private:
  const IsingModel* model_ = nullptr;
  const Adjacency* adjacency_ = nullptr;
  std::vector<double> coupling_in_;  ///< C_i = sum_j J_ij m_j
  double energy_ = 0.0;              ///< H(m) for the synced state
};

}  // namespace saim::ising
