#include "ising/adjacency.hpp"

namespace saim::ising {

Adjacency::Adjacency(const IsingModel& model) : n_(model.n()) {
  std::vector<std::size_t> degree(n_, 0);
  model.for_each_coupling([&](std::size_t i, std::size_t j, double) {
    ++degree[i];
    ++degree[j];
  });

  offsets_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    offsets_[i + 1] = offsets_[i] + degree[i];
  }
  indices_.resize(offsets_[n_]);
  weights_.resize(offsets_[n_]);

  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  model.for_each_coupling([&](std::size_t i, std::size_t j, double v) {
    indices_[cursor[i]] = static_cast<std::uint32_t>(j);
    weights_[cursor[i]] = v;
    ++cursor[i];
    indices_[cursor[j]] = static_cast<std::uint32_t>(i);
    weights_[cursor[j]] = v;
    ++cursor[j];
  });
}

}  // namespace saim::ising
