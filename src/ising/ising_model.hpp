// Ising model in the paper's sign convention (eq. 1):
//
//   H(m) = - sum_{i<j} J_ij m_i m_j - sum_i h_i m_i + offset ,  m in {-1,+1}^n
//
// The p-bit machine (src/pbit) minimizes H by Gibbs sampling from
// exp(-beta * H). Dense symmetric storage mirrors QuboModel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace saim::ising {

using Spins = std::vector<std::int8_t>;  ///< spin configuration, values ±1

class IsingModel {
 public:
  IsingModel() = default;
  explicit IsingModel(std::size_t n);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  /// Accumulates into the symmetric coupling J_ij (i != j).
  void add_coupling(std::size_t i, std::size_t j, double v);
  [[nodiscard]] double coupling(std::size_t i, std::size_t j) const;

  void add_field(std::size_t i, double v);
  void set_field(std::size_t i, double v);
  [[nodiscard]] double field(std::size_t i) const;
  [[nodiscard]] std::span<const double> fields() const noexcept {
    return field_;
  }
  [[nodiscard]] std::span<double> mutable_fields() noexcept { return field_; }

  void add_offset(double v) noexcept { offset_ += v; }
  [[nodiscard]] double offset() const noexcept { return offset_; }
  void set_offset(double v) noexcept { offset_ = v; }

  /// Contiguous row i of J (length n, zero diagonal).
  [[nodiscard]] std::span<const double> row(std::size_t i) const;

  /// Full Hamiltonian H(m). O(n^2).
  [[nodiscard]] double energy(std::span<const std::int8_t> m) const;

  /// p-bit input I_i = sum_j J_ij m_j + h_i  (paper eq. 9). O(n).
  [[nodiscard]] double input(std::span<const std::int8_t> m,
                             std::size_t i) const;

  /// Energy change of flipping spin i: dH = 2 m_i I_i. O(n).
  [[nodiscard]] double flip_delta(std::span<const std::int8_t> m,
                                  std::size_t i) const;

  [[nodiscard]] std::size_t nnz() const noexcept;

  template <typename F>
  void for_each_coupling(F&& f) const {
    for (std::size_t i = 0; i < n_; ++i) {
      const double* r = coupling_.data() + i * n_;
      for (std::size_t j = i + 1; j < n_; ++j) {
        if (r[j] != 0.0) f(i, j, r[j]);
      }
    }
  }

 private:
  void check_index(std::size_t i) const;

  std::size_t n_ = 0;
  std::vector<double> coupling_;  ///< n*n symmetric, zero diagonal
  std::vector<double> field_;
  double offset_ = 0.0;
};

}  // namespace saim::ising
