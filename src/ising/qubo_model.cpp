#include "ising/qubo_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace saim::ising {

QuboModel::QuboModel(std::size_t n)
    : n_(n), coupling_(n * n, 0.0), linear_(n, 0.0) {}

void QuboModel::check_index(std::size_t i) const {
  if (i >= n_) {
    throw std::out_of_range("QuboModel: index " + std::to_string(i) +
                            " out of range for n=" + std::to_string(n_));
  }
}

void QuboModel::add_linear(std::size_t i, double v) {
  check_index(i);
  linear_[i] += v;
}

void QuboModel::set_linear(std::size_t i, double v) {
  check_index(i);
  linear_[i] = v;
}

double QuboModel::linear(std::size_t i) const {
  check_index(i);
  return linear_[i];
}

void QuboModel::add_quadratic(std::size_t i, std::size_t j, double v) {
  check_index(i);
  check_index(j);
  if (i == j) {
    // x_i^2 == x_i for binaries: a diagonal term is a linear term.
    linear_[i] += v;
    return;
  }
  coupling_[i * n_ + j] += v;
  coupling_[j * n_ + i] += v;
}

double QuboModel::quadratic(std::size_t i, std::size_t j) const {
  check_index(i);
  check_index(j);
  if (i == j) return 0.0;
  return coupling_[i * n_ + j];
}

std::span<const double> QuboModel::row(std::size_t i) const {
  check_index(i);
  return {coupling_.data() + i * n_, n_};
}

double QuboModel::energy(std::span<const std::uint8_t> x) const {
  double e = offset_;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!x[i]) continue;
    e += linear_[i];
    const double* r = coupling_.data() + i * n_;
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (x[j]) e += r[j];
    }
  }
  return e;
}

double QuboModel::local_field(std::span<const std::uint8_t> x,
                              std::size_t i) const {
  double field = linear_[i];
  const double* r = coupling_.data() + i * n_;
  for (std::size_t j = 0; j < n_; ++j) {
    field += r[j] * static_cast<double>(x[j]);
  }
  return field;
}

double QuboModel::flip_delta(std::span<const std::uint8_t> x,
                             std::size_t i) const {
  const double sign = x[i] ? -1.0 : 1.0;
  return sign * local_field(x, i);
}

std::size_t QuboModel::nnz() const noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double* r = coupling_.data() + i * n_;
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (r[j] != 0.0) ++count;
    }
  }
  return count;
}

double QuboModel::density() const noexcept {
  if (n_ < 2) return 0.0;
  const double pairs = 0.5 * static_cast<double>(n_) *
                       static_cast<double>(n_ - 1);
  return static_cast<double>(nnz()) / pairs;
}

double QuboModel::max_abs_coefficient() const noexcept {
  double m = 0.0;
  for (const double v : coupling_) m = std::max(m, std::abs(v));
  for (const double v : linear_) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace saim::ising
