#include "ising/bitslice.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/accept_bounds.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace saim::ising {

namespace {

using util::BoundsF64x4;
using util::F64x4;
using util::U64x4;

constexpr std::size_t kW = BitSliceEngine::kWord;

/// kNibble[b][l] = all-ones when bit l of nibble b is set — expands the 4
/// bits of a flip/spin nibble into canonical SIMD lane masks.
constexpr auto kNibble = [] {
  std::array<std::array<std::uint64_t, 4>, 16> t{};
  for (unsigned b = 0; b < 16; ++b) {
    for (unsigned l = 0; l < 4; ++l) {
      t[b][l] = ((b >> l) & 1u) ? ~std::uint64_t{0} : std::uint64_t{0};
    }
  }
  return t;
}();

inline U64x4 nibble_mask_u64(unsigned nib) noexcept {
  return U64x4::load(kNibble[nib].data());
}
inline F64x4 nibble_mask_f64(unsigned nib) noexcept {
  return util::bitcast_f64(nibble_mask_u64(nib));
}

/// Workspace of one 64-lane group. The per-spin fp arrays are PLANE-major:
/// chunk c (lanes 4c..4c+3) owns a contiguous plane of n 4-lane rows at
/// [(c*n + i)*4]. A sweep processes one chunk's plane end to end with the
/// chunk's RNG state and energies held in registers, and a flip's
/// neighborhood update walks only that plane — sequentially for dense
/// rows — instead of scattering 64-lane-wide words.
struct Group {
  std::size_t n = 0;
  std::size_t lanes = 0;   ///< active lanes in this group (<= 64)
  std::size_t chunks = 0;  ///< ceil(lanes / 4)
  std::vector<std::uint64_t> spins;  ///< n words; bit b set <=> lane b is -1
  std::vector<double> coupling;      ///< C planes, chunks*n*4
  /// Set when every lane reads the same per-spin field vector (the
  /// run_batch case): the sweep broadcasts an 8-byte scalar instead of
  /// streaming a 32-byte H-plane row, halving sweep read traffic.
  const double* shared_fields = nullptr;
  std::vector<double> fields;  ///< H planes, chunks*n*4; empty when shared
  std::array<std::uint64_t, 4 * kW> rng{};  ///< xoshiro SoA: [word][lane]
  std::array<double, kW> energy{};
  std::array<double, kW> best_energy{};
  std::vector<std::uint64_t> best_spins;
  std::array<unsigned, kW / 4> active{};  ///< per-chunk 4-bit live mask
  std::size_t sweeps_done = 0;
};

/// delta = 2 * m_i * I per lane, with m_i = ±1 taken from `cur_mask`
/// (all-ones = spin is -1). Mirrors fl((2*m)*I) = ±fl(I+I) exactly.
inline F64x4 flip_delta4(F64x4 in, F64x4 cur_mask) noexcept {
  const F64x4 d2 = in + in;
  return util::mask_xor(d2, util::mask_and(cur_mask, F64x4::broadcast(-0.0)));
}

/// Biased exponent of u01 (0 or a normal in [2^-53, 1)) as f64 lanes; the
/// bracket [e-1023, e-1022) contains log2(u01) for nonzero u01.
inline F64x4 biased_exponent(F64x4 u01) noexcept {
  const U64x4 magic = U64x4::broadcast(0x4330000000000000ULL);  // 2^52
  return util::bitcast_f64(util::shr<52>(util::bitcast_u64(u01)) | magic) -
         F64x4::broadcast(0x1.0p52);
}

// Acceptance-test constants.
//
//   * Metropolis tier 1 decides u < exp(arg) from u's binary exponent
//     alone: with r = arg*log2(e), log2(u) lies in [e, e+1) for biased
//     exponent be = e + 1023, so be < r + 1022 - eps accepts and
//     be >= r + 1023 + eps rejects. The eps margin (1e-9) dwarfs every
//     rounding error in r (< 1e-12 for |arg| < 750); only draws whose
//     exponent straddles r — probability ~ the acceptance rate itself —
//     fall through to the exp_bounds tier, and only its ambiguous band
//     reaches libm. A u == 0 draw (biased exponent 0) carries no
//     exponent information and always falls through.
//   * pbit: for |x| >= kTanhSaturated, |tanh(x)| lies in [1 - 2^-48, 1],
//     so sign(tanh(x) + u) is sign(x) for every |u| < 1 - 2^-48; only
//     draws in the 2^-48-wide ambiguous band consult libm.
// Shared with the scalar engines' exp_accept/tanh_sign_nonneg (see
// util/accept_bounds.hpp): one set of tier constants means MetropolisSa,
// PBitMachine and these word-parallel sweeps all decide via the same
// tiered bound path.
constexpr double kLog2e = util::accept_detail::kLog2e;
constexpr double kTier1Accept = util::accept_detail::kTier1Accept;
constexpr double kTier1Reject = util::accept_detail::kTier1Reject;
constexpr double kTanhSaturated = util::accept_detail::kTanhSat;
constexpr double kTanhSatMargin = util::accept_detail::kTanhSatLo;

/// Pushes ±2*J_ij onto the flipped lanes of chunk plane `cplane` for every
/// neighbor of spin i. `sgn` carries the sign bit of each lane's NEW spin
/// (scalar flip() adds 2*J*m_new); `fmask` selects the flipped lanes.
inline void apply_flips_plane(const Adjacency& adj, std::size_t i,
                              double* cplane, F64x4 fmask,
                              F64x4 sgn) noexcept {
  const auto nbr = adj.neighbors(i);
  const auto w = adj.weights(i);
  for (std::size_t k = 0; k < nbr.size(); ++k) {
    const F64x4 w2 = F64x4::broadcast(2.0 * w[k]);
    const F64x4 add = util::mask_xor(w2, sgn);  // exact ±2*J sign flip
    double* row = cplane + static_cast<std::size_t>(nbr[k]) * 4;
    F64x4 cv = F64x4::load(row);
    cv = util::select(fmask, cv + add, cv);
    cv.store(row);
  }
}

void sweep_pbit(const Adjacency& adj, Group& g, double beta) {
  const F64x4 betav = F64x4::broadcast(beta);
  const F64x4 zero = F64x4::zero();
  const F64x4 one = F64x4::broadcast(1.0);
  const F64x4 scale53 = F64x4::broadcast(0x1.0p-53);
  const F64x4 signbit = F64x4::broadcast(-0.0);
  const F64x4 satv = F64x4::broadcast(kTanhSaturated);
  const F64x4 satmargin = F64x4::broadcast(kTanhSatMargin);

  const double* hsh = g.shared_fields;
  for (std::size_t c = 0; c < g.chunks; ++c) {
    const unsigned active = g.active[c];
    const std::size_t off = 4 * c;
    double* cplane = g.coupling.data() + c * g.n * 4;
    const double* hplane =
        hsh != nullptr ? nullptr : g.fields.data() + c * g.n * 4;
    U64x4 s0 = U64x4::load(g.rng.data() + 0 * kW + off);
    U64x4 s1 = U64x4::load(g.rng.data() + 1 * kW + off);
    U64x4 s2 = U64x4::load(g.rng.data() + 2 * kW + off);
    U64x4 s3 = U64x4::load(g.rng.data() + 3 * kW + off);
    F64x4 energy = F64x4::load(g.energy.data() + off);

    for (std::size_t i = 0; i < g.n; ++i) {
      const F64x4 hv = hsh != nullptr ? F64x4::broadcast(hsh[i])
                                      : F64x4::load(hplane + i * 4);
      const F64x4 in = F64x4::load(cplane + i * 4) + hv;
      const F64x4 x = betav * in;

      // Unconditional per-visit draw, as update_one's uniform_sym.
      const U64x4 bits = util::xoshiro4_next(s0, s1, s2, s3);
      const F64x4 u01 =
          util::u64_to_f64_exact53(util::shr<11>(bits)) * scale53;
      const F64x4 u = (u01 + u01) - one;

      int neg_bits;
      const F64x4 absx = util::mask_andnot(signbit, x);
      const unsigned sat =
          static_cast<unsigned>(util::movemask(util::cmp_ge(absx, satv)));
      if ((sat & active) == active) {
        // Saturated fast path: sign(tanh(x) + u) = sign(x) unless the
        // draw lands in the 2^-48-wide band next to ±1.
        neg_bits = util::movemask(util::cmp_lt(x, zero));
        const F64x4 absu = util::mask_andnot(signbit, u);
        int amb = util::movemask(util::cmp_ge(absu, satmargin)) &
                  static_cast<int>(active);
        if (amb != 0) {
          double xs[4], us[4];
          x.store(xs);
          u.store(us);
          for (int l = 0; l < 4; ++l) {
            if (((amb >> l) & 1) != 0) {
              const bool neg = std::tanh(xs[l]) + us[l] < 0.0;
              neg_bits =
                  (neg_bits & ~(1 << l)) | (static_cast<int>(neg) << l);
            }
          }
        }
      } else {
        // Bounds decide sign(tanh(x) + u) without libm for ~all lanes.
        const BoundsF64x4 tb = util::tanh_bounds(x);
        const F64x4 lo = tb.lo + u;
        const F64x4 hi = tb.hi + u;
        neg_bits = util::movemask(util::cmp_lt(hi, zero));
        const int sure = util::movemask(util::cmp_ge(lo, zero)) | neg_bits;
        int amb = ~sure & static_cast<int>(active);
        if (amb != 0) {
          double xs[4], us[4];
          x.store(xs);
          u.store(us);
          for (int l = 0; l < 4; ++l) {
            if (((amb >> l) & 1) != 0 &&
                std::tanh(xs[l]) + us[l] < 0.0) {
              neg_bits |= 1 << l;
            }
          }
        }
      }

      const unsigned cur =
          static_cast<unsigned>((g.spins[i] >> off) & 0xFULL);
      const unsigned flip4 =
          (static_cast<unsigned>(neg_bits) ^ cur) & active;
      if (flip4 != 0) {
        const F64x4 delta = flip_delta4(in, nibble_mask_f64(cur));
        const F64x4 fmask = nibble_mask_f64(flip4);
        energy = util::select(fmask, energy + delta, energy);
        const unsigned next = cur ^ flip4;
        g.spins[i] ^= static_cast<std::uint64_t>(flip4) << off;
        const F64x4 sgn = util::mask_and(nibble_mask_f64(next), signbit);
        apply_flips_plane(adj, i, cplane, fmask, sgn);
      }
    }

    s0.store(g.rng.data() + 0 * kW + off);
    s1.store(g.rng.data() + 1 * kW + off);
    s2.store(g.rng.data() + 2 * kW + off);
    s3.store(g.rng.data() + 3 * kW + off);
    energy.store(g.energy.data() + off);
  }
}

void sweep_metropolis(const Adjacency& adj, Group& g, double beta) {
  const F64x4 nbetav = F64x4::broadcast(-beta);
  const F64x4 zero = F64x4::zero();
  const F64x4 scale53 = F64x4::broadcast(0x1.0p-53);
  const F64x4 min53 = F64x4::broadcast(0x1.0p-53);
  const F64x4 log2e = F64x4::broadcast(kLog2e);
  const F64x4 tier1_acc = F64x4::broadcast(kTier1Accept);
  const F64x4 tier1_rej = F64x4::broadcast(kTier1Reject);
  const F64x4 signbit = F64x4::broadcast(-0.0);

  const double* hsh = g.shared_fields;
  for (std::size_t c = 0; c < g.chunks; ++c) {
    const unsigned active = g.active[c];
    const std::size_t off = 4 * c;
    double* cplane = g.coupling.data() + c * g.n * 4;
    const double* hplane =
        hsh != nullptr ? nullptr : g.fields.data() + c * g.n * 4;
    U64x4 s0 = U64x4::load(g.rng.data() + 0 * kW + off);
    U64x4 s1 = U64x4::load(g.rng.data() + 1 * kW + off);
    U64x4 s2 = U64x4::load(g.rng.data() + 2 * kW + off);
    U64x4 s3 = U64x4::load(g.rng.data() + 3 * kW + off);
    F64x4 energy = F64x4::load(g.energy.data() + off);

    for (std::size_t i = 0; i < g.n; ++i) {
      const F64x4 hv = hsh != nullptr ? F64x4::broadcast(hsh[i])
                                      : F64x4::load(hplane + i * 4);
      const F64x4 in = F64x4::load(cplane + i * 4) + hv;
      const unsigned cur =
          static_cast<unsigned>((g.spins[i] >> off) & 0xFULL);
      const F64x4 delta = flip_delta4(in, nibble_mask_f64(cur));

      // delta <= 0 accepts without a draw; only delta > 0 lanes advance
      // their stream — the scalar short-circuit, done with a masked step.
      const int acc0 = util::movemask(util::cmp_le(delta, zero));
      unsigned accept = static_cast<unsigned>(acc0) & active;
      const unsigned need = ~static_cast<unsigned>(acc0) & active;
      if (need != 0) {
        // Garbage lanes may advance with the unmasked step: their state
        // and results are never exported.
        const U64x4 bits =
            need == active
                ? util::xoshiro4_next(s0, s1, s2, s3)
                : util::xoshiro4_next_masked(nibble_mask_u64(need), s0, s1,
                                             s2, s3);
        const F64x4 u01 =
            util::u64_to_f64_exact53(util::shr<11>(bits)) * scale53;
        const F64x4 arg = nbetav * delta;

        // Tier 1: decide from u01's binary exponent vs r = arg*log2(e).
        const F64x4 r = arg * log2e;
        const F64x4 be = biased_exponent(u01);
        const unsigned acc1 =
            static_cast<unsigned>(util::movemask(
                util::cmp_lt(be, r + tier1_acc))) &
            need;
        const unsigned rej1 =
            static_cast<unsigned>(util::movemask(
                util::cmp_ge(be, r + tier1_rej))) &
            need;
        const unsigned zeroed =
            static_cast<unsigned>(
                util::movemask(util::cmp_lt(u01, min53))) &
            need;
        accept |= acc1 & ~zeroed;
        const unsigned amb = (need & ~(acc1 | rej1)) | zeroed;
        if (amb != 0) {
          // Tier 2: conservative exp bounds; tier 3: the libm call.
          const BoundsF64x4 eb = util::exp_bounds(arg);
          const unsigned acc2 =
              static_cast<unsigned>(
                  util::movemask(util::cmp_lt(u01, eb.lo))) &
              amb;
          const unsigned rej2 =
              static_cast<unsigned>(
                  util::movemask(util::cmp_ge(u01, eb.hi))) &
              amb;
          accept |= acc2;
          const unsigned amb2 = amb & ~(acc2 | rej2);
          if (amb2 != 0) {
            double args[4], us[4];
            arg.store(args);
            u01.store(us);
            for (unsigned l = 0; l < 4; ++l) {
              if (((amb2 >> l) & 1u) != 0 && us[l] < std::exp(args[l])) {
                accept |= 1u << l;
              }
            }
          }
        }
      }

      if (accept != 0) {
        const F64x4 fmask = nibble_mask_f64(accept);
        energy = util::select(fmask, energy + delta, energy);
        const unsigned next = cur ^ accept;
        g.spins[i] ^= static_cast<std::uint64_t>(accept) << off;
        const F64x4 sgn = util::mask_and(nibble_mask_f64(next), signbit);
        apply_flips_plane(adj, i, cplane, fmask, sgn);
      }
    }

    s0.store(g.rng.data() + 0 * kW + off);
    s1.store(g.rng.data() + 1 * kW + off);
    s2.store(g.rng.data() + 2 * kW + off);
    s3.store(g.rng.data() + 3 * kW + off);
    energy.store(g.energy.data() + off);
  }
}

void update_best(Group& g) {
  std::uint64_t improved = 0;
  for (std::size_t b = 0; b < g.lanes; ++b) {
    if (g.energy[b] < g.best_energy[b]) {
      g.best_energy[b] = g.energy[b];
      improved |= std::uint64_t{1} << b;
    }
  }
  if (improved == 0) return;
  // One pass refreshes the best column of every improving lane at once.
  for (std::size_t i = 0; i < g.n; ++i) {
    g.best_spins[i] =
        (g.best_spins[i] & ~improved) | (g.spins[i] & improved);
  }
}

void run_group(const Adjacency& adj, Group& g, const SliceOptions& opt) {
  const std::size_t sweeps = opt.betas.size();
  const std::size_t stop_interval =
      opt.stop_interval == 0 ? 1 : opt.stop_interval;
  g.sweeps_done = sweeps;
  for (std::size_t t = 0; t < sweeps; ++t) {
    if (opt.stop != nullptr && t != 0 && t % stop_interval == 0 &&
        opt.stop->stop_requested()) {
      g.sweeps_done = t;
      break;
    }
    const double beta = opt.betas[t];
    if (opt.dynamics == SliceDynamics::kPbit) {
      sweep_pbit(adj, g, beta);
    } else {
      sweep_metropolis(adj, g, beta);
    }
    if (opt.track_best) update_best(g);
  }
}

}  // namespace

std::vector<SliceResult> BitSliceEngine::run(std::span<SliceLane> lanes,
                                             const SliceOptions& options) const {
  const Adjacency& adj = *adjacency_;
  const std::size_t n = adj.n();
  const std::size_t total = lanes.size();
  std::vector<SliceResult> out(total);
  if (total == 0) return out;

  for (const SliceLane& lane : lanes) {
    if (lane.spins.size() != n || lane.fields == nullptr) {
      throw std::invalid_argument(
          "BitSliceEngine::run: lane spins/fields do not match the model");
    }
  }

  const std::size_t groups = (total + kWord - 1) / kWord;
  const auto run_one = [&](std::size_t gi) {
    const std::size_t lane0 = gi * kWord;
    const std::size_t count = std::min(kWord, total - lane0);

    Group g;
    g.n = n;
    g.lanes = count;
    g.chunks = (count + 3) / 4;
    g.spins.assign(n, 0);
    g.coupling.assign(g.chunks * n * 4, 0.0);
    bool shared = true;
    for (std::size_t b = 1; b < count; ++b) {
      shared = shared && lanes[lane0 + b].fields == lanes[lane0].fields;
    }
    if (shared) {
      g.shared_fields = lanes[lane0].fields;
    } else {
      g.fields.assign(g.chunks * n * 4, 0.0);
    }
    for (std::size_t c = 0; c < g.chunks; ++c) {
      const std::size_t live = std::min<std::size_t>(4, count - 4 * c);
      g.active[c] = (1u << live) - 1u;
    }

    for (std::size_t b = 0; b < count; ++b) {
      const SliceLane& lane = lanes[lane0 + b];
      const std::size_t plane = (b / 4) * n * 4 + (b % 4);
      for (std::size_t i = 0; i < n; ++i) {
        if (lane.spins[i] < 0) g.spins[i] |= std::uint64_t{1} << b;
        if (!shared) g.fields[plane + i * 4] = lane.fields[i];
        g.coupling[plane + i * 4] = adj.coupling_input(lane.spins, i);
      }
      g.energy[b] = lane.energy;
      for (std::size_t j = 0; j < 4; ++j) g.rng[j * kW + b] = lane.rng[j];
    }
    if (options.track_best) {
      g.best_energy = g.energy;
      g.best_spins = g.spins;
    }

    run_group(adj, g, options);

    for (std::size_t b = 0; b < count; ++b) {
      SliceResult& r = out[lane0 + b];
      r.last.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        r.last[i] = ((g.spins[i] >> b) & 1u) != 0 ? std::int8_t{-1}
                                                  : std::int8_t{1};
      }
      r.last_energy = g.energy[b];
      r.sweeps = g.sweeps_done;
      if (options.track_best) {
        r.best.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          r.best[i] = ((g.best_spins[i] >> b) & 1u) != 0 ? std::int8_t{-1}
                                                         : std::int8_t{1};
        }
        r.best_energy = g.best_energy[b];
      } else {
        r.best = r.last;
        r.best_energy = r.last_energy;
      }
    }
  };

  if (options.threads == 1 || groups == 1) {
    for (std::size_t gi = 0; gi < groups; ++gi) run_one(gi);
  } else {
    util::parallel_for(groups, run_one, options.threads);
  }
  return out;
}

}  // namespace saim::ising
