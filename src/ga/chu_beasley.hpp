// Chu & Beasley's genetic algorithm for the MKP (Journal of Heuristics,
// 1998) — the baseline of the paper's Table V ("GA [28]").
//
// Faithful structure: steady-state GA, binary tournament selection, uniform
// crossover, low-rate bit-flip mutation, and the signature repair operator
// (drop/add by pseudo-utility density) that keeps every individual feasible.
// A child that duplicates an existing population member is discarded, and
// each accepted child replaces the current worst individual.
#pragma once

#include <cstdint>
#include <vector>

#include "problems/mkp.hpp"

namespace saim::ga {

struct GaOptions {
  std::size_t population = 100;      ///< Chu–Beasley use 100
  std::size_t children = 100'000;    ///< non-duplicate offspring budget
  std::size_t tournament = 2;        ///< binary tournament
  std::size_t mutate_bits = 2;       ///< bits flipped per child (CB use 2)
  std::uint64_t seed = 1;
  /// Record the incumbent profit every `history_stride` children (0 = off).
  std::size_t history_stride = 0;
};

struct GaResult {
  std::vector<std::uint8_t> best_x;
  std::int64_t best_profit = 0;
  std::size_t children_generated = 0;  ///< includes discarded duplicates
  std::vector<std::int64_t> history;   ///< incumbent trace (optional)
};

GaResult solve_mkp_ga(const problems::MkpInstance& instance,
                      const GaOptions& options = {});

}  // namespace saim::ga
