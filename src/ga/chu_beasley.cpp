#include "ga/chu_beasley.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "heuristics/greedy.hpp"
#include "util/rng.hpp"

namespace saim::ga {

namespace {

/// FNV-1a over the bitset — cheap duplicate detection key.
std::uint64_t hash_bits(const std::vector<std::uint8_t>& x) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto b : x) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

GaResult solve_mkp_ga(const problems::MkpInstance& instance,
                      const GaOptions& options) {
  if (options.population < 2) {
    throw std::invalid_argument("solve_mkp_ga: population must be >= 2");
  }
  const std::size_t n = instance.n();
  util::Xoshiro256pp rng(options.seed);

  // Initial population: random bitsets repaired to feasibility (plus the
  // greedy solution, which Chu & Beasley also seed implicitly via repair).
  std::vector<std::vector<std::uint8_t>> population;
  std::vector<std::int64_t> fitness;
  population.reserve(options.population);
  fitness.reserve(options.population);
  std::unordered_set<std::uint64_t> seen;

  auto push_individual = [&](std::vector<std::uint8_t> x) {
    const std::uint64_t key = hash_bits(x);
    if (!seen.insert(key).second) return false;
    fitness.push_back(instance.profit(x));
    population.push_back(std::move(x));
    return true;
  };

  push_individual(heuristics::greedy_mkp(instance));
  std::uint64_t salt = 0;
  while (population.size() < options.population) {
    std::vector<std::uint8_t> x(n);
    for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
    heuristics::repair_mkp(instance, x);
    if (!push_individual(std::move(x)) && ++salt > 50 * options.population) {
      break;  // tiny instances may not have `population` distinct members
    }
  }

  auto tournament_pick = [&]() -> std::size_t {
    std::size_t best = rng.below(population.size());
    for (std::size_t t = 1; t < options.tournament; ++t) {
      const std::size_t c = rng.below(population.size());
      if (fitness[c] > fitness[best]) best = c;
    }
    return best;
  };

  GaResult result;
  {
    const auto it = std::max_element(fitness.begin(), fitness.end());
    const auto idx =
        static_cast<std::size_t>(std::distance(fitness.begin(), it));
    result.best_profit = fitness[idx];
    result.best_x = population[idx];
  }

  std::size_t accepted = 0;
  std::size_t generated = 0;
  // Children budget counts *accepted* (non-duplicate) offspring, matching
  // Chu & Beasley's "10^6 non-duplicate children" accounting; `generated`
  // caps runaway duplicate loops on saturated populations.
  while (accepted < options.children &&
         generated < 20 * options.children + 1000) {
    ++generated;
    const auto& a = population[tournament_pick()];
    const auto& b = population[tournament_pick()];

    std::vector<std::uint8_t> child(n);
    for (std::size_t j = 0; j < n; ++j) {
      child[j] = rng.bernoulli(0.5) ? a[j] : b[j];
    }
    for (std::size_t t = 0; t < options.mutate_bits && n > 0; ++t) {
      const std::size_t j = rng.below(n);
      child[j] ^= 1u;
    }
    heuristics::repair_mkp(instance, child);

    const std::uint64_t key = hash_bits(child);
    if (!seen.insert(key).second) continue;  // duplicate: discard
    ++accepted;

    const std::int64_t profit = instance.profit(child);
    // Steady-state replacement of the current worst member.
    const auto worst_it = std::min_element(fitness.begin(), fitness.end());
    const auto worst =
        static_cast<std::size_t>(std::distance(fitness.begin(), worst_it));
    seen.erase(hash_bits(population[worst]));
    population[worst] = std::move(child);
    fitness[worst] = profit;

    if (profit > result.best_profit) {
      result.best_profit = profit;
      result.best_x = population[worst];
    }
    if (options.history_stride != 0 &&
        accepted % options.history_stride == 0) {
      result.history.push_back(result.best_profit);
    }
  }
  result.children_generated = generated;
  return result;
}

}  // namespace saim::ga
