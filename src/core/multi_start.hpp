// Multi-start orchestration: run several independent SAIM solves with
// derived seeds and aggregate. This is what the paper's tables do per
// instance (and what the bench harnesses previously hand-rolled); exposing
// it in the library gives downstream users statistically meaningful
// results (mean/quartiles over restarts, pooled best) in one call.
#pragma once

#include <functional>
#include <memory>

#include "anneal/backend.hpp"
#include "core/result.hpp"
#include "core/saim_solver.hpp"
#include "problems/constrained_problem.hpp"
#include "util/stats.hpp"

namespace saim::core {

/// Creates a fresh inner-solver backend per restart. Backends keep state
/// (bound model, warm-start caches), so restarts must not share one. With
/// threads > 1 the factory (and the evaluator passed to
/// multi_start_saim) are invoked concurrently and must be thread-safe —
/// the in-repo factories and evaluators, which only read shared problem
/// data, all are.
using BackendFactory =
    std::function<std::unique_ptr<anneal::IsingSolverBackend>()>;

struct MultiStartOptions {
  std::size_t restarts = 5;
  std::uint64_t seed = 1;  ///< master seed; restart r uses derive_seed(seed, r)
  /// Worker threads for the restarts (0 = all hardware threads). Restart r
  /// depends only on derive_seed(seed, r) and results are aggregated in
  /// restart order, so the outcome is bit-identical for any thread count.
  std::size_t threads = 1;
};

struct MultiStartResult {
  SolveResult best;  ///< the restart with the lowest best feasible cost
  std::size_t best_restart = 0;
  /// Best-cost statistics across restarts that found a feasible solution.
  util::RunningStats restart_best_costs;
  std::size_t feasible_restarts = 0;
  std::size_t total_sweeps = 0;

  [[nodiscard]] bool any_feasible() const noexcept {
    return feasible_restarts > 0;
  }
};

MultiStartResult multi_start_saim(
    const problems::ConstrainedProblem& problem, const BackendFactory& make,
    const SaimOptions& options, const MultiStartOptions& multi,
    const SampleEvaluator& evaluate = nullptr);

}  // namespace saim::core
