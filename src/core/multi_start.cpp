#include "core/multi_start.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace saim::core {

MultiStartResult multi_start_saim(
    const problems::ConstrainedProblem& problem, const BackendFactory& make,
    const SaimOptions& options, const MultiStartOptions& multi,
    const SampleEvaluator& evaluate) {
  if (multi.restarts == 0) {
    throw std::invalid_argument("multi_start_saim: restarts must be > 0");
  }
  if (!make) {
    throw std::invalid_argument("multi_start_saim: null backend factory");
  }

  // Solve the restarts (possibly concurrently — every restart has its own
  // backend, solver and derived seed), then aggregate in restart order so
  // tie-breaking matches the sequential path exactly.
  std::vector<SolveResult> results(multi.restarts);
  util::parallel_for(
      multi.restarts,
      [&](std::size_t r) {
        auto backend = make();
        if (!backend) {
          throw std::invalid_argument(
              "multi_start_saim: factory returned null backend");
        }
        if (multi.threads != 1) {
          // Restarts already occupy the worker threads; keep each
          // backend's own replica batches single-threaded so nested
          // parallelism cannot oversubscribe the machine.
          backend->set_batch_threads(1);
        }
        SaimOptions opts = options;
        opts.seed = util::derive_seed(multi.seed, r);
        SaimSolver solver(problem, *backend, opts);
        results[r] = solver.solve(evaluate);
      },
      multi.threads);

  MultiStartResult aggregate;
  bool have_best = false;
  for (std::size_t r = 0; r < multi.restarts; ++r) {
    SolveResult& result = results[r];
    aggregate.total_sweeps += result.total_sweeps;
    if (result.found_feasible) {
      ++aggregate.feasible_restarts;
      aggregate.restart_best_costs.add(result.best_cost);
      if (!have_best || result.best_cost < aggregate.best.best_cost) {
        aggregate.best = std::move(result);
        aggregate.best_restart = r;
        have_best = true;
      }
    } else if (!have_best && r == 0) {
      // Keep the first result so callers always see run accounting even
      // when nothing is feasible.
      aggregate.best = std::move(result);
    }
  }
  return aggregate;
}

}  // namespace saim::core
