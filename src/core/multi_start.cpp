#include "core/multi_start.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace saim::core {

MultiStartResult multi_start_saim(
    const problems::ConstrainedProblem& problem, const BackendFactory& make,
    const SaimOptions& options, const MultiStartOptions& multi,
    const SampleEvaluator& evaluate) {
  if (multi.restarts == 0) {
    throw std::invalid_argument("multi_start_saim: restarts must be > 0");
  }
  if (!make) {
    throw std::invalid_argument("multi_start_saim: null backend factory");
  }

  MultiStartResult aggregate;
  bool have_best = false;
  for (std::size_t r = 0; r < multi.restarts; ++r) {
    auto backend = make();
    if (!backend) {
      throw std::invalid_argument(
          "multi_start_saim: factory returned null backend");
    }
    SaimOptions opts = options;
    opts.seed = util::derive_seed(multi.seed, r);
    SaimSolver solver(problem, *backend, opts);
    SolveResult result = solver.solve(evaluate);

    aggregate.total_sweeps += result.total_sweeps;
    if (result.found_feasible) {
      ++aggregate.feasible_restarts;
      aggregate.restart_best_costs.add(result.best_cost);
      if (!have_best || result.best_cost < aggregate.best.best_cost) {
        aggregate.best = std::move(result);
        aggregate.best_restart = r;
        have_best = true;
      }
    } else if (!have_best && r == 0) {
      // Keep the first result so callers always see run accounting even
      // when nothing is feasible.
      aggregate.best = std::move(result);
    }
  }
  return aggregate;
}

}  // namespace saim::core
