#include "core/penalty_method.hpp"

#include <algorithm>

#include "lagrange/lagrangian_model.hpp"

namespace saim::core {

SolveResult solve_penalty_method(const problems::ConstrainedProblem& problem,
                                 anneal::IsingSolverBackend& backend,
                                 const PenaltyOptions& options,
                                 const SampleEvaluator& evaluate) {
  SaimOptions saim;
  saim.iterations = options.runs;
  saim.eta = 0.0;  // no multiplier adaptation: pure penalty method
  saim.penalty = options.penalty;
  saim.penalty_alpha = options.penalty_alpha;
  saim.seed = options.seed;
  saim.record_history = options.record_history;
  saim.use_best_sample = options.use_best_sample;
  SaimSolver solver(problem, backend, saim);
  return solver.solve(evaluate);
}

PenaltyTuningResult tune_penalty(const problems::ConstrainedProblem& problem,
                                 anneal::IsingSolverBackend& backend,
                                 const PenaltyTuningOptions& options,
                                 const SampleEvaluator& evaluate) {
  PenaltyTuningResult result;
  double best_feasibility = -1.0;

  for (std::size_t rung = 0; rung < options.alpha_ladder.size(); ++rung) {
    const double alpha = options.alpha_ladder[rung];
    PenaltyOptions probe;
    probe.runs = options.probe_runs;
    probe.penalty_alpha = alpha;
    probe.seed = options.seed + rung;  // fresh stream per probe
    const SolveResult r =
        solve_penalty_method(problem, backend, probe, evaluate);
    const double feasibility = r.feasibility_rate();
    result.probes.emplace_back(alpha, feasibility);
    result.total_sweeps += r.total_sweeps;

    if (feasibility > best_feasibility) {
      best_feasibility = feasibility;
      result.alpha = alpha;
      result.feasibility = feasibility;
    }
    if (feasibility >= options.target_feasibility) {
      result.alpha = alpha;
      result.feasibility = feasibility;
      break;
    }
  }
  result.penalty = lagrange::heuristic_penalty(problem, result.alpha);
  return result;
}

SampleEvaluator make_qkp_evaluator(const problems::QkpInstance& instance) {
  return [&instance](std::span<const std::uint8_t> x) {
    SampleVerdict v;
    const auto decision = x.first(instance.n());
    v.feasible = instance.feasible(decision);
    v.cost = static_cast<double>(instance.cost(decision));
    return v;
  };
}

SampleEvaluator make_mkp_evaluator(const problems::MkpInstance& instance) {
  return [&instance](std::span<const std::uint8_t> x) {
    SampleVerdict v;
    const auto decision = x.first(instance.n());
    v.feasible = instance.feasible(decision);
    v.cost = static_cast<double>(instance.cost(decision));
    return v;
  };
}

}  // namespace saim::core
