// The paper's Table I — hyper-parameters used in the QKP and MKP
// experiments. Every bench binary starts from these presets and only
// overrides what its command line asks for.
//
//   Experiment | Penalty | MCS/run | runs | beta_max | eta
//   QKP        | 2dN     | 1000    | 2000 | 10       | 20
//   MKP        | 5dN     | 1000    | 5000 | 50       | 0.05
#pragma once

#include <cstddef>

namespace saim::core {

struct ExperimentParams {
  double penalty_alpha = 2.0;    ///< P = alpha * d * N
  std::size_t mcs_per_run = 1000;
  std::size_t runs = 2000;       ///< K outer iterations
  double beta_max = 10.0;        ///< linear schedule 0 -> beta_max
  double eta = 20.0;             ///< subgradient step size
};

/// QKP row of Table I.
ExperimentParams qkp_paper_params();

/// MKP row of Table I.
ExperimentParams mkp_paper_params();

}  // namespace saim::core
