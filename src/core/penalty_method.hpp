// The classical penalty method (paper section II-A) and its tuning loop
// (section IV-A) — SAIM's main baseline in Table II.
//
// The penalty method minimizes E = f + P ||g||^2 with a *fixed* P over many
// independent annealing runs; it is exactly Algorithm 1 with eta = 0. The
// paper tunes P by starting from the small heuristic 2dN and "coarsely
// increasing until getting a satisfactory feasibility ratio (>= 20%)" — the
// tuned values it reports range from 40dN to 500dN, illustrating the cost
// SAIM avoids.
#pragma once

#include <vector>

#include "anneal/backend.hpp"
#include "core/result.hpp"
#include "core/saim_solver.hpp"
#include "problems/constrained_problem.hpp"
#include "problems/mkp.hpp"
#include "problems/qkp.hpp"

namespace saim::core {

struct PenaltyOptions {
  std::size_t runs = 10;     ///< independent annealing runs
  double penalty = -1.0;     ///< explicit P; negative = alpha d N heuristic
  double penalty_alpha = 2.0;
  std::uint64_t seed = 1;
  bool record_history = false;
  bool use_best_sample = false;
};

/// Runs the fixed-P penalty method. Implemented as SAIM with eta = 0 so the
/// two methods share every code path except the multiplier update.
SolveResult solve_penalty_method(const problems::ConstrainedProblem& problem,
                                 anneal::IsingSolverBackend& backend,
                                 const PenaltyOptions& options,
                                 const SampleEvaluator& evaluate = nullptr);

struct PenaltyTuningOptions {
  /// Candidate multipliers alpha for P = alpha d N, probed in order; the
  /// ladder spans the paper's observed tuned range 2dN..500dN.
  std::vector<double> alpha_ladder = {2,  5,  10,  20,  40,  70,
                                      100, 150, 220, 300, 500};
  double target_feasibility = 0.20;  ///< paper: ">= 20%"
  std::size_t probe_runs = 10;       ///< annealing runs per probe
  std::uint64_t seed = 1;
};

struct PenaltyTuningResult {
  double alpha = 0.0;    ///< selected multiplier (P = alpha d N)
  double penalty = 0.0;  ///< selected P
  double feasibility = 0.0;
  /// (alpha, feasibility) of every probe — the tuning cost the paper says
  /// "worsens the time-to-solution".
  std::vector<std::pair<double, double>> probes;
  std::size_t total_sweeps = 0;  ///< MCS burned by the tuning phase
};

/// Reproduces the paper's coarse tuning loop. Stops at the first ladder rung
/// reaching the target feasibility; falls back to the most-feasible rung if
/// none reaches it.
PenaltyTuningResult tune_penalty(const problems::ConstrainedProblem& problem,
                                 anneal::IsingSolverBackend& backend,
                                 const PenaltyTuningOptions& options,
                                 const SampleEvaluator& evaluate = nullptr);

/// Raw-instance adapters: judge the first n decision bits with integer
/// arithmetic (A^T x <= b), exactly the paper's feasibility check.
SampleEvaluator make_qkp_evaluator(const problems::QkpInstance& instance);
SampleEvaluator make_mkp_evaluator(const problems::MkpInstance& instance);

}  // namespace saim::core
