// Result reporting: serializes SolveResult summaries (accuracy, feasibility,
// sample budget, TTS) into CSV rows so experiment campaigns can be archived
// and diffed. Used by the bench harnesses' --csv modes and by downstream
// users building their own sweeps.
#pragma once

#include <string>

#include "core/result.hpp"
#include "core/tts.hpp"
#include "util/csv.hpp"

namespace saim::core {

struct ReportRow {
  std::string instance;  ///< e.g. "300-50-8"
  std::string method;    ///< e.g. "saim-pbit"
  double reference_cost = 0.0;  ///< OPT or best-known (negative)
  double seconds = 0.0;         ///< wall time of the solve
};

/// Writes the CSV header matching report_result() rows.
void write_report_header(util::CsvWriter& csv);

/// One row: instance, method, best/avg accuracy, feasibility, runs, MCS,
/// seconds, TTS(99) in MCS (inf -> empty field). TTS uses the per-run MCS
/// and the reference cost as the success target; it is only computed when
/// the result carries per-sample feasible costs.
void report_result(util::CsvWriter& csv, const ReportRow& row,
                   const SolveResult& result);

/// Serving-side metadata accompanying one JSONL result line.
struct JsonlContext {
  std::string id;        ///< job id echoed from the request line
  std::string instance;  ///< instance name / path
  std::string backend;   ///< backend name the job ran on
  double wall_ms = 0.0;
  bool cache_hit = false;
  std::uint64_t fingerprint = 0;
  std::size_t batch_size = 1;  ///< same-instance batch the job ran in
  bool warm_started = false;   ///< seeded from the warm-start pool
  /// Per-stage latency echo, emitted as a nested "timing" object only
  /// when the job line set "trace": true. Kept BEFORE seq in the output:
  /// the shard router's seq remap expects `,"seq":N}` to be the line's
  /// tail. Milliseconds throughout.
  bool trace = false;
  double queue_ms = 0.0;  ///< accept/submit -> worker claim
  double setup_ms = 0.0;  ///< claim -> solve start (batch form + build)
  double solve_ms = 0.0;  ///< solve start -> solve end
  double emit_ms = 0.0;   ///< response ready -> line written
  double total_ms = 0.0;  ///< submit -> response ready
  /// Emission sequence number; emitted only when >= 0 (saim_serve
  /// --stream tags lines in completion order).
  std::int64_t seq = -1;
};

/// One-line JSON summary of a solve — the line format saim_serve streams
/// and bench/service_throughput aggregates: id, instance, backend, status,
/// found_feasible, best_cost (null when no feasible sample), feasible
/// count, iterations (outer runs), total MCS, wall time, cache_hit, the
/// request fingerprint (hex), batch_size, warm_started, and (stream mode
/// only) seq. The full schema lives in docs/PROTOCOL.md — keep the two in
/// lockstep, CI greps the doc for every field emitted here. No trailing
/// newline.
std::string result_to_jsonl(const SolveResult& result,
                            const JsonlContext& context);

}  // namespace saim::core
