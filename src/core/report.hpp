// Result reporting: serializes SolveResult summaries (accuracy, feasibility,
// sample budget, TTS) into CSV rows so experiment campaigns can be archived
// and diffed. Used by the bench harnesses' --csv modes and by downstream
// users building their own sweeps.
#pragma once

#include <string>

#include "core/result.hpp"
#include "core/tts.hpp"
#include "util/csv.hpp"

namespace saim::core {

struct ReportRow {
  std::string instance;  ///< e.g. "300-50-8"
  std::string method;    ///< e.g. "saim-pbit"
  double reference_cost = 0.0;  ///< OPT or best-known (negative)
  double seconds = 0.0;         ///< wall time of the solve
};

/// Writes the CSV header matching report_result() rows.
void write_report_header(util::CsvWriter& csv);

/// One row: instance, method, best/avg accuracy, feasibility, runs, MCS,
/// seconds, TTS(99) in MCS (inf -> empty field). TTS uses the per-run MCS
/// and the reference cost as the success target; it is only computed when
/// the result carries per-sample feasible costs.
void report_result(util::CsvWriter& csv, const ReportRow& row,
                   const SolveResult& result);

}  // namespace saim::core
