// Result and trace types shared by the SAIM solver and the penalty-method
// baseline. The per-iteration history is what the paper's Fig. 3 (QKP) and
// Fig. 5 (MKP) plot: sample cost colored by feasibility, plus the Lagrange
// multiplier staircase.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "ising/qubo_model.hpp"
#include "util/stats.hpp"

namespace saim::core {

/// How a solve ended. Anything but kCompleted means the result is partial:
/// only the outer iterations finished before the stop carry samples, but
/// every field (best feasible sample, counters, history) is still valid
/// for the work actually done.
enum class Status {
  kCompleted,  ///< ran its full iteration budget (or converged early)
  kDeadline,   ///< stopped by an expired StopToken deadline
  kCancelled,  ///< stopped by an explicit StopSource::request_stop()
  kError,      ///< aborted by an execution error (service-level only)
};

[[nodiscard]] constexpr const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::kCompleted: return "completed";
    case Status::kDeadline: return "deadline";
    case Status::kCancelled: return "cancelled";
    case Status::kError: return "error";
  }
  return "unknown";
}

/// One outer iteration (one SA run of the inner Ising machine).
struct IterationRecord {
  std::size_t iteration = 0;
  double sample_cost = 0.0;  ///< raw cost c(x_k) of the measured sample
  bool feasible = false;     ///< raw inequality feasibility of the sample
  double lagrangian_energy = 0.0;  ///< normalized L(x_k; lambda_k)
  double max_violation = 0.0;      ///< max_m |g_m(x_k)| (normalized)
  std::vector<double> lambda;      ///< multipliers used for this iteration
};

struct SolveResult {
  Status status = Status::kCompleted;
  bool found_feasible = false;
  ising::Bits best_x;  ///< decision bits of the best feasible sample
  /// Full slack-extended configuration of the best feasible sample (what
  /// the Ising machine actually measured). This is what the service's
  /// warm-start pool stores and re-injects as a backend initial state —
  /// decision bits alone cannot seed a machine that also carries slack
  /// spins. Empty while no feasible sample exists.
  ising::Bits best_config;
  double best_cost = std::numeric_limits<double>::infinity();  ///< raw cost

  std::size_t total_runs = 0;    ///< SA runs performed (K)
  std::size_t total_sweeps = 0;  ///< total MCS consumed (sample budget)
  std::size_t feasible_count = 0;

  /// Raw-cost statistics over feasible samples only (the paper's "Avg"
  /// column averages accuracy over feasible samples).
  util::RunningStats feasible_cost_stats;

  /// Raw cost of every feasible sample, in iteration order (enabled by
  /// SaimOptions::collect_feasible_costs). Powers the "Optimality %" column
  /// of Tables III-V: the share of feasible samples hitting the optimum.
  std::vector<double> feasible_costs;

  /// Fraction (%) of feasible samples with cost <= reference + tol.
  [[nodiscard]] double optimality_percent(double reference,
                                          double tol = 1e-9) const noexcept {
    if (feasible_costs.empty()) return 0.0;
    std::size_t hits = 0;
    for (const double c : feasible_costs) {
      if (c <= reference + tol) ++hits;
    }
    return 100.0 * static_cast<double>(hits) /
           static_cast<double>(feasible_costs.size());
  }

  /// Filled only when history recording is enabled.
  std::vector<IterationRecord> history;

  /// Fraction of measured samples that were feasible — the parenthesized
  /// percentage in Tables II-V.
  [[nodiscard]] double feasibility_rate() const noexcept {
    return total_runs
               ? static_cast<double>(feasible_count) /
                     static_cast<double>(total_runs)
               : 0.0;
  }
};

/// Paper eq. (13): accuracy(%) = 100 * c / OPT with negative costs, so a
/// feasible sample scores <= 100 and OPT scores exactly 100.
[[nodiscard]] inline double accuracy_percent(double cost,
                                             double opt) noexcept {
  return opt != 0.0 ? 100.0 * cost / opt : 0.0;
}

}  // namespace saim::core

namespace saim::util {
class CsvWriter;
}

namespace saim::core {

/// Writes a recorded history as CSV (iteration, cost, feasible, L, max
/// violation, lambda_*) — the format behind the Fig. 3 / Fig. 5 traces.
void write_history_csv(util::CsvWriter& csv,
                       const std::vector<IterationRecord>& history);

}  // namespace saim::core
