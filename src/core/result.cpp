#include "core/result.hpp"

#include <string>

#include "util/csv.hpp"

namespace saim::core {

// Writes a recorded history as CSV: iteration, cost, feasible, L, maxviol,
// lambda_0..lambda_{M-1}. This is the on-disk format behind the Fig. 3 and
// Fig. 5 traces.
void write_history_csv(util::CsvWriter& csv,
                       const std::vector<IterationRecord>& history) {
  if (history.empty()) return;
  std::vector<std::string> header = {"iteration", "cost", "feasible",
                                     "lagrangian", "max_violation"};
  for (std::size_t m = 0; m < history.front().lambda.size(); ++m) {
    header.push_back("lambda_" + std::to_string(m));
  }
  csv.write_row(header);
  for (const auto& rec : history) {
    std::vector<double> row = {static_cast<double>(rec.iteration),
                               rec.sample_cost,
                               rec.feasible ? 1.0 : 0.0,
                               rec.lagrangian_energy, rec.max_violation};
    row.insert(row.end(), rec.lambda.begin(), rec.lambda.end());
    csv.write_row(row);
  }
}

}  // namespace saim::core
