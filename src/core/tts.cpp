#include "core/tts.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace saim::core {

TtsEstimate time_to_solution(std::size_t successes, std::size_t runs,
                             double cost_per_run, double q) {
  if (runs == 0) {
    throw std::invalid_argument("time_to_solution: runs must be positive");
  }
  if (successes > runs) {
    throw std::invalid_argument("time_to_solution: successes > runs");
  }
  if (q <= 0.0 || q >= 1.0) {
    throw std::invalid_argument("time_to_solution: q must be in (0,1)");
  }
  TtsEstimate e;
  e.success_probability =
      static_cast<double>(successes) / static_cast<double>(runs);
  if (successes == 0) {
    e.defined = false;
    e.expected_restarts = std::numeric_limits<double>::infinity();
    e.tts = std::numeric_limits<double>::infinity();
    return e;
  }
  e.defined = true;
  if (successes == runs) {
    // p = 1: every run solves; the conventional definition collapses to a
    // single run.
    e.certain = true;
    e.expected_restarts = 1.0;
    e.tts = cost_per_run;
    return e;
  }
  e.expected_restarts =
      std::log(1.0 - q) / std::log(1.0 - e.success_probability);
  // A run count below one makes no sense operationally.
  if (e.expected_restarts < 1.0) e.expected_restarts = 1.0;
  e.tts = e.expected_restarts * cost_per_run;
  return e;
}

TtsEstimate time_to_solution_from_costs(std::span<const double> run_costs,
                                        double target, double cost_per_run,
                                        double q, double tol) {
  std::size_t successes = 0;
  for (const double c : run_costs) {
    if (c <= target + tol) ++successes;
  }
  return time_to_solution(successes, run_costs.size(), cost_per_run, q);
}

}  // namespace saim::core
