#include "core/params.hpp"

namespace saim::core {

ExperimentParams qkp_paper_params() {
  ExperimentParams p;
  p.penalty_alpha = 2.0;
  p.mcs_per_run = 1000;
  p.runs = 2000;
  p.beta_max = 10.0;
  p.eta = 20.0;
  return p;
}

ExperimentParams mkp_paper_params() {
  ExperimentParams p;
  p.penalty_alpha = 5.0;
  p.mcs_per_run = 1000;
  p.runs = 5000;
  p.beta_max = 50.0;
  p.eta = 0.05;
  return p;
}

}  // namespace saim::core
