#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/jsonl.hpp"

namespace saim::core {

namespace {

std::string format_double(double v, int precision = 6) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace

void write_report_header(util::CsvWriter& csv) {
  csv.write_header({"instance", "method", "best_accuracy", "avg_accuracy",
                    "feasibility", "best_cost", "reference_cost", "runs",
                    "total_mcs", "seconds", "tts99_mcs"});
}

void report_result(util::CsvWriter& csv, const ReportRow& row,
                   const SolveResult& result) {
  const double best_acc =
      result.found_feasible && row.reference_cost != 0.0
          ? accuracy_percent(result.best_cost, row.reference_cost)
          : 0.0;
  const double avg_acc =
      result.found_feasible && row.reference_cost != 0.0
          ? accuracy_percent(result.feasible_cost_stats.mean(),
                             row.reference_cost)
          : 0.0;

  std::string tts_field;
  if (!result.feasible_costs.empty() && result.total_runs > 0) {
    const double mcs_per_run =
        static_cast<double>(result.total_sweeps) /
        static_cast<double>(result.total_runs);
    // Success = a single measured sample reaching the reference; note the
    // per-sample (not per-solve) granularity, matching Fig. 4b's budget
    // accounting.
    std::size_t hits = 0;
    for (const double c : result.feasible_costs) {
      if (c <= row.reference_cost + 1e-9) ++hits;
    }
    const auto tts =
        time_to_solution(hits, result.total_runs, mcs_per_run);
    if (tts.defined) tts_field = format_double(tts.tts, 10);
  }

  csv.write_row({row.instance, row.method, format_double(best_acc),
                 format_double(avg_acc),
                 format_double(result.feasibility_rate()),
                 format_double(result.found_feasible ? result.best_cost : 0.0,
                               12),
                 format_double(row.reference_cost, 12),
                 std::to_string(result.total_runs),
                 std::to_string(result.total_sweeps),
                 format_double(row.seconds), tts_field});
}

std::string result_to_jsonl(const SolveResult& result,
                            const JsonlContext& context) {
  char fingerprint_hex[19];
  std::snprintf(fingerprint_hex, sizeof fingerprint_hex, "%016llx",
                static_cast<unsigned long long>(context.fingerprint));

  util::JsonWriter json;
  // One result line is ~350 bytes; a single up-front block keeps the
  // serving path at one allocation per line (it matters: the event
  // server renders every reply through here).
  json.reserve(512);
  json.field("id", context.id)
      .field("instance", context.instance)
      .field("backend", context.backend)
      .field("status", to_string(result.status))
      .field("found_feasible", result.found_feasible);
  if (result.found_feasible) {
    json.field("best_cost", result.best_cost);
  } else {
    json.raw_field("best_cost", "null");
  }
  json.field("feasible_count",
             static_cast<std::uint64_t>(result.feasible_count))
      .field("feasibility_rate", result.feasibility_rate())
      .field("iterations", static_cast<std::uint64_t>(result.total_runs))
      .field("total_sweeps", static_cast<std::uint64_t>(result.total_sweeps))
      .field("wall_ms", context.wall_ms)
      .field("cache_hit", context.cache_hit)
      .field("fingerprint", fingerprint_hex)
      .field("batch_size", static_cast<std::uint64_t>(context.batch_size))
      .field("warm_started", context.warm_started);
  if (context.trace) {
    // Nested object, and strictly before seq: remap_seq (shard_router)
    // rewrites the `,"seq":N}` suffix in place and would corrupt any
    // field emitted after it.
    util::JsonWriter timing;
    timing.field("queue_ms", context.queue_ms)
        .field("setup_ms", context.setup_ms)
        .field("solve_ms", context.solve_ms)
        .field("emit_ms", context.emit_ms)
        .field("total_ms", context.total_ms);
    json.raw_field("timing", timing.str());
  }
  if (context.seq >= 0) json.field("seq", context.seq);
  return json.take();
}

}  // namespace saim::core
