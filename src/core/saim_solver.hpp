// The paper's Algorithm 1 — Self-Adaptive Ising Machine.
//
//   (lambda_0, P) <- (0, alpha d N)
//   for K iterations:
//       minimize L_k:   x_k = argmin_x L      [Ising machine]
//       store feasible  x̂_k                   [CPU]
//       update          lambda_{k+1} = lambda_k + eta g(x_k)   [CPU]
//   return argmin_k f(x̂_k)
//
// The inner minimizer is any IsingSolverBackend; lambda updates rewrite only
// the Ising fields (see lagrange/lagrangian_model.hpp). Feasibility and
// cost of a measured sample are judged on the *original* problem (raw
// integer inequality on the decision bits), supplied via SampleEvaluator —
// exactly the paper's "check feasibility as A^T x_k <= b and if feasible
// save its cost".
#pragma once

#include <functional>
#include <span>

#include "anneal/backend.hpp"
#include "core/result.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "problems/constrained_problem.hpp"
#include "util/stop_token.hpp"

namespace saim::core {

/// Verdict of the original (un-relaxed, un-normalized) problem on a
/// measured sample.
struct SampleVerdict {
  bool feasible = false;
  double cost = 0.0;  ///< raw cost (negative for knapsack profits)
};

/// Receives the FULL slack-extended configuration; instance adapters
/// (make_qkp_evaluator / make_mkp_evaluator in core/penalty_method.hpp)
/// judge only the first num_decision bits, as the paper does.
using SampleEvaluator =
    std::function<SampleVerdict(std::span<const std::uint8_t>)>;

/// Subgradient step-size rule for the dual ascent.
enum class StepRule {
  kFixed,       ///< eta_k = eta (the paper's choice)
  kDiminishing, ///< eta_k = eta / sqrt(k+1) — classical convergence rule
  kHarmonic,    ///< eta_k = eta / (k+1)
};

struct SaimOptions {
  std::size_t iterations = 2000;  ///< K
  double eta = 20.0;              ///< subgradient step (Table I)
  double penalty_alpha = 2.0;     ///< P = alpha d N when penalty < 0
  double penalty = -1.0;          ///< explicit P; negative = use heuristic
  StepRule step_rule = StepRule::kFixed;
  std::uint64_t seed = 1;
  /// Inner-solver replicas per outer iteration, executed through the
  /// backend's run_batch (thread-pooled with deterministic per-replica RNG
  /// streams for the in-repo engines). Every replica's measured sample is
  /// judged for feasibility; the lambda update uses the replica whose
  /// sample has the lowest Lagrangian energy — the tightest available
  /// estimate of argmin_x L. 1 reproduces the paper's single-run loop
  /// exactly.
  std::size_t replicas = 1;
  bool record_history = false;
  /// Update lambda from the run's best-energy state instead of its final
  /// sample (ablation; the paper reads "the last sample of state {m}").
  bool use_best_sample = false;
  /// Retain the raw cost of every feasible sample in the result (needed for
  /// the Optimality%% columns of Tables III-V).
  bool collect_feasible_costs = false;

  /// Early stopping on multiplier convergence: stop after the mean |dlambda|
  /// per constraint stays below `convergence_tol` for `convergence_patience`
  /// consecutive iterations AND at least one feasible sample exists.
  /// patience = 0 disables (the paper always runs the full K).
  std::size_t convergence_patience = 0;
  double convergence_tol = 1e-3;
};

/// One job's dual-ascent state, advanced one outer iteration at a time.
///
/// This is Algorithm 1 with the loop inverted: SaimSolver::solve drives a
/// single DualAscent to completion, while core::BatchSaimSolver round-robins
/// many DualAscents over ONE LagrangianModel + ONE bound backend (the
/// same-instance batching the service layer uses to amortize model builds).
/// Each step re-applies this job's multipliers via model.set_lambda — a pure
/// rebuild from base coefficients — so interleaved jobs are bit-identical to
/// running each alone: the landscape a run sees depends only on its own
/// lambda trajectory, and each job owns its RNG stream.
///
/// Warm starts (both opt-in, service-fed): `warm_starts` holds full
/// slack-extended configurations of known-feasible samples. On the first
/// step they are (a) re-judged by this job's evaluator and, when feasible,
/// imported as the best-so-far sample — imports seed best_cost/best_x only,
/// never the measured-sample statistics (feasible_count, total_runs,
/// feasible_cost_stats) — and (b) injected as backend initial states for the
/// first inner run when the backend supports seeding. With no warm starts
/// the trajectory is exactly the paper's cold-start loop.
class DualAscent {
 public:
  DualAscent(const problems::ConstrainedProblem& problem, SaimOptions options,
             SampleEvaluator evaluate, util::StopToken stop,
             std::vector<ising::Bits> warm_starts = {});

  /// Advances one outer iteration on (model, backend): set this job's
  /// lambda, run the inner solver, judge samples, update lambda. The model
  /// must be a LagrangianModel over the same problem contents and penalty
  /// this job expects; the backend must be bound to model.ising(). Returns
  /// true once the job is finished (completed, converged, stopped, or out
  /// of iterations) — after which further calls are no-ops returning true.
  bool step(lagrange::LagrangianModel& model,
            anneal::IsingSolverBackend& backend);

  /// Fused batch rounds — step() split at the inner run so
  /// core::solve_batch can pack many members' replicas into ONE
  /// bit-sliced engine dispatch per lockstep round (see
  /// IsingSolverBackend::enqueue_fused). begin_fused_round performs the
  /// pre-run half of step() (warm import, stop/iteration checks, lambda
  /// application, seed injection) and enqueues this member's replicas;
  /// it returns true when a run was enqueued — the caller MUST then hand
  /// this member's slice of backend.run_fused() to consume_fused_round —
  /// and false when the job finished without needing a run. Only valid
  /// for options.replicas > 1 (the single-run path consumes the job RNG
  /// through backend.run, which cannot fuse). The member's trajectory is
  /// bit-identical to step()'s run_batch path.
  bool begin_fused_round(lagrange::LagrangianModel& model,
                         anneal::IsingSolverBackend& backend);
  /// Post-run half: judges the fused results and updates lambda. Returns
  /// true once the job is finished.
  bool consume_fused_round(lagrange::LagrangianModel& model,
                           std::vector<anneal::RunResult> runs);

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// The final (or partial, when stopped) result; valid once finished().
  [[nodiscard]] SolveResult& result() noexcept { return result_; }

 private:
  /// Pre-run half of step(): returns true when the caller should run the
  /// inner solver, false when the job finished (finalize already called).
  bool begin_iteration(lagrange::LagrangianModel& model,
                       anneal::IsingSolverBackend& backend);
  /// Post-run half of step(): judge samples, update lambda, check
  /// convergence. Returns finished().
  bool consume_iteration(lagrange::LagrangianModel& model,
                         std::vector<anneal::RunResult> runs);
  void finalize(Status status);
  [[nodiscard]] double step_size(std::size_t k) const noexcept;

  const problems::ConstrainedProblem* problem_;
  SaimOptions options_;
  SampleEvaluator judge_;
  util::StopToken stop_;
  std::vector<ising::Bits> warm_starts_;

  util::Xoshiro256pp rng_;
  std::vector<double> lambda_;
  SolveResult result_;
  std::size_t k_ = 0;
  std::size_t converged_streak_ = 0;
  bool finished_ = false;
};

class SaimSolver {
 public:
  /// Problem and backend must outlive the solver. bind() is called here.
  SaimSolver(const problems::ConstrainedProblem& problem,
             anneal::IsingSolverBackend& backend, SaimOptions options);

  /// Runs Algorithm 1. `evaluate` judges decision bits against the raw
  /// instance; when omitted, feasibility falls back to |g(x)| <= tol on the
  /// normalized equality system and cost to normalized f(x).
  SolveResult solve(const SampleEvaluator& evaluate = nullptr);

  /// As above with cooperative cancellation: `stop` is polled once per
  /// outer iteration (and forwarded to the backend, which polls it between
  /// sweep chunks), so a cancel or an expired deadline ends the dual ascent
  /// within one inner run. The partial result carries everything gathered
  /// up to the stop and a Status of kCancelled / kDeadline.
  SolveResult solve(const SampleEvaluator& evaluate, util::StopToken stop);

  /// Effective penalty P in use (after the alpha d N heuristic).
  [[nodiscard]] double penalty() const noexcept { return model_.penalty(); }
  [[nodiscard]] const lagrange::LagrangianModel& model() const noexcept {
    return model_;
  }

 private:
  [[nodiscard]] double step_size(std::size_t k) const noexcept;

  const problems::ConstrainedProblem* problem_;
  anneal::IsingSolverBackend* backend_;
  SaimOptions options_;
  lagrange::LagrangianModel model_;
};

/// Fallback evaluator: feasible iff max normalized violation <= tol; cost is
/// the normalized objective. Requires the full slack-extended x, so it is
/// stricter than the raw inequality check (slack must complete the equality).
SampleEvaluator make_equality_evaluator(
    const problems::ConstrainedProblem& problem, double tol = 1e-9);

}  // namespace saim::core
