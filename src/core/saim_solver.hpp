// The paper's Algorithm 1 — Self-Adaptive Ising Machine.
//
//   (lambda_0, P) <- (0, alpha d N)
//   for K iterations:
//       minimize L_k:   x_k = argmin_x L      [Ising machine]
//       store feasible  x̂_k                   [CPU]
//       update          lambda_{k+1} = lambda_k + eta g(x_k)   [CPU]
//   return argmin_k f(x̂_k)
//
// The inner minimizer is any IsingSolverBackend; lambda updates rewrite only
// the Ising fields (see lagrange/lagrangian_model.hpp). Feasibility and
// cost of a measured sample are judged on the *original* problem (raw
// integer inequality on the decision bits), supplied via SampleEvaluator —
// exactly the paper's "check feasibility as A^T x_k <= b and if feasible
// save its cost".
#pragma once

#include <functional>
#include <span>

#include "anneal/backend.hpp"
#include "core/result.hpp"
#include "lagrange/lagrangian_model.hpp"
#include "problems/constrained_problem.hpp"
#include "util/stop_token.hpp"

namespace saim::core {

/// Verdict of the original (un-relaxed, un-normalized) problem on a
/// measured sample.
struct SampleVerdict {
  bool feasible = false;
  double cost = 0.0;  ///< raw cost (negative for knapsack profits)
};

/// Receives the FULL slack-extended configuration; instance adapters
/// (make_qkp_evaluator / make_mkp_evaluator in core/penalty_method.hpp)
/// judge only the first num_decision bits, as the paper does.
using SampleEvaluator =
    std::function<SampleVerdict(std::span<const std::uint8_t>)>;

/// Subgradient step-size rule for the dual ascent.
enum class StepRule {
  kFixed,       ///< eta_k = eta (the paper's choice)
  kDiminishing, ///< eta_k = eta / sqrt(k+1) — classical convergence rule
  kHarmonic,    ///< eta_k = eta / (k+1)
};

struct SaimOptions {
  std::size_t iterations = 2000;  ///< K
  double eta = 20.0;              ///< subgradient step (Table I)
  double penalty_alpha = 2.0;     ///< P = alpha d N when penalty < 0
  double penalty = -1.0;          ///< explicit P; negative = use heuristic
  StepRule step_rule = StepRule::kFixed;
  std::uint64_t seed = 1;
  /// Inner-solver replicas per outer iteration, executed through the
  /// backend's run_batch (thread-pooled with deterministic per-replica RNG
  /// streams for the in-repo engines). Every replica's measured sample is
  /// judged for feasibility; the lambda update uses the replica whose
  /// sample has the lowest Lagrangian energy — the tightest available
  /// estimate of argmin_x L. 1 reproduces the paper's single-run loop
  /// exactly.
  std::size_t replicas = 1;
  bool record_history = false;
  /// Update lambda from the run's best-energy state instead of its final
  /// sample (ablation; the paper reads "the last sample of state {m}").
  bool use_best_sample = false;
  /// Retain the raw cost of every feasible sample in the result (needed for
  /// the Optimality%% columns of Tables III-V).
  bool collect_feasible_costs = false;

  /// Early stopping on multiplier convergence: stop after the mean |dlambda|
  /// per constraint stays below `convergence_tol` for `convergence_patience`
  /// consecutive iterations AND at least one feasible sample exists.
  /// patience = 0 disables (the paper always runs the full K).
  std::size_t convergence_patience = 0;
  double convergence_tol = 1e-3;
};

class SaimSolver {
 public:
  /// Problem and backend must outlive the solver. bind() is called here.
  SaimSolver(const problems::ConstrainedProblem& problem,
             anneal::IsingSolverBackend& backend, SaimOptions options);

  /// Runs Algorithm 1. `evaluate` judges decision bits against the raw
  /// instance; when omitted, feasibility falls back to |g(x)| <= tol on the
  /// normalized equality system and cost to normalized f(x).
  SolveResult solve(const SampleEvaluator& evaluate = nullptr);

  /// As above with cooperative cancellation: `stop` is polled once per
  /// outer iteration (and forwarded to the backend, which polls it between
  /// sweep chunks), so a cancel or an expired deadline ends the dual ascent
  /// within one inner run. The partial result carries everything gathered
  /// up to the stop and a Status of kCancelled / kDeadline.
  SolveResult solve(const SampleEvaluator& evaluate, util::StopToken stop);

  /// Effective penalty P in use (after the alpha d N heuristic).
  [[nodiscard]] double penalty() const noexcept { return model_.penalty(); }
  [[nodiscard]] const lagrange::LagrangianModel& model() const noexcept {
    return model_;
  }

 private:
  [[nodiscard]] double step_size(std::size_t k) const noexcept;

  const problems::ConstrainedProblem* problem_;
  anneal::IsingSolverBackend* backend_;
  SaimOptions options_;
  lagrange::LagrangianModel model_;
};

/// Fallback evaluator: feasible iff max normalized violation <= tol; cost is
/// the normalized objective. Requires the full slack-extended x, so it is
/// stricter than the raw inequality check (slack must complete the equality).
SampleEvaluator make_equality_evaluator(
    const problems::ConstrainedProblem& problem, double tol = 1e-9);

}  // namespace saim::core
