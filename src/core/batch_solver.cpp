#include "core/batch_solver.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "lagrange/lagrangian_model.hpp"

namespace saim::core {

namespace {
/// Restores the backend's idle (never-stopping) token even when a member
/// callback or the model build throws — a stale deadline-armed token left
/// installed would spuriously truncate the caller's next runs.
struct BackendStopGuard {
  anneal::IsingSolverBackend* backend;
  ~BackendStopGuard() { backend->set_stop_token(util::StopToken{}); }
};
}  // namespace

std::vector<BatchOutcome> solve_batch(
    const problems::ConstrainedProblem& problem,
    anneal::IsingSolverBackend& backend, std::vector<BatchJob> jobs,
    const BatchMemberDone& on_member_done) {
  if (jobs.empty()) {
    throw std::invalid_argument("solve_batch: no jobs");
  }
  const SaimOptions& shaping = jobs.front().options;
  for (const BatchJob& job : jobs) {
    if (job.options.penalty != shaping.penalty ||
        job.options.penalty_alpha != shaping.penalty_alpha) {
      throw std::invalid_argument(
          "solve_batch: members disagree on penalty shaping");
    }
  }

  lagrange::LagrangianModel model(
      problem, shaping.penalty >= 0.0
                   ? shaping.penalty
                   : lagrange::heuristic_penalty(problem,
                                                 shaping.penalty_alpha));
  backend.bind(model.ising());
  BackendStopGuard stop_guard{&backend};

  std::vector<BatchOutcome> outcomes(jobs.size());
  std::vector<std::unique_ptr<DualAscent>> ascents(jobs.size());
  std::size_t active = 0;

  const auto settle = [&](std::size_t j) {
    ascents[j].reset();
    --active;
    if (on_member_done) on_member_done(j, outcomes[j]);
  };
  const auto fail = [&](std::size_t j, std::string what) {
    outcomes[j].result = std::move(ascents[j]->result());
    outcomes[j].result.status = Status::kError;
    outcomes[j].error = std::move(what);
    settle(j);
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    BatchJob& job = jobs[j];
    if (job.options.iterations == 0) {
      // Mirrors SaimSolver's constructor contract, demoted to a per-member
      // failure so one bad request cannot sink its batch-mates.
      outcomes[j].result.status = Status::kError;
      outcomes[j].error = "SaimSolver: iterations must be positive";
      if (on_member_done) on_member_done(j, outcomes[j]);
      continue;
    }
    ascents[j] = std::make_unique<DualAscent>(
        problem, job.options, std::move(job.evaluator), std::move(job.stop),
        std::move(job.warm_starts));
    ++active;
  }

  // Lockstep rounds: every live member advances one outer iteration per
  // round, so short jobs drain early and a slow member never starves the
  // others' progress. A member whose evaluator throws is finalized as
  // kError on the spot; the shared model/backend carry no per-member state
  // across runs, so the rest of the batch is untouched.
  //
  // Batch-aware replica fusion: when the backend has a bit-sliced path
  // (supports_fused_batch) and a member runs multiple replicas, the
  // member's inner run is enqueued instead of executed, and ONE
  // backend.run_fused() per round sweeps every pending member's replicas
  // together — one engine dispatch instead of one per member. Per-member
  // results are bit-identical to the unfused step() path, so fusion is
  // pure performance policy.
  const bool fuse = backend.supports_fused_batch();
  std::vector<std::size_t> pending;
  while (active > 0) {
    pending.clear();
    for (std::size_t j = 0; j < ascents.size(); ++j) {
      if (!ascents[j]) continue;
      try {
        if (fuse && jobs[j].options.replicas > 1) {
          if (ascents[j]->begin_fused_round(model, backend)) {
            pending.push_back(j);
          } else {
            outcomes[j].result = std::move(ascents[j]->result());
            settle(j);
          }
        } else if (ascents[j]->step(model, backend)) {
          outcomes[j].result = std::move(ascents[j]->result());
          settle(j);
        }
      } catch (const std::exception& e) {
        fail(j, e.what());
      } catch (...) {
        fail(j, "unknown exception in solve job");
      }
    }
    if (pending.empty()) continue;

    std::vector<std::vector<anneal::RunResult>> fused;
    try {
      fused = backend.run_fused();
    } catch (const std::exception& e) {
      for (const std::size_t j : pending) fail(j, e.what());
      continue;
    } catch (...) {
      for (const std::size_t j : pending) {
        fail(j, "unknown exception in fused batch run");
      }
      continue;
    }
    for (std::size_t p = 0; p < pending.size(); ++p) {
      const std::size_t j = pending[p];
      try {
        if (ascents[j]->consume_fused_round(model, std::move(fused[p]))) {
          outcomes[j].result = std::move(ascents[j]->result());
          settle(j);
        }
      } catch (const std::exception& e) {
        fail(j, e.what());
      } catch (...) {
        fail(j, "unknown exception in solve job");
      }
    }
  }
  return outcomes;
}

}  // namespace saim::core
