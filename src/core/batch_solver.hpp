// Same-instance batch execution of Algorithm 1.
//
// The service's queue regularly holds several jobs over ONE problem
// instance (hot instances in a traffic stream). Run one at a time, each
// job pays the full setup tax: normalize -> LagrangianModel (couplings,
// O(nnz)) -> backend bind (adjacency CSR, O(edges)). BatchSaimSolver pays
// it once: a single LagrangianModel and a single bound backend are shared
// by all members, whose DualAscents advance in lockstep rounds. Because a
// lambda update only rewrites the Ising *fields* (see lagrangian_model.hpp)
// and set_lambda is a pure rebuild, re-applying member j's multipliers
// before each of its inner runs reproduces exactly the landscape a solo
// solve would have shown it — with warm starts off, batch members are
// bit-identical to solo runs (pinned by tests/service_batch_test.cpp).
//
// Members may differ in seed, eta, iterations, replicas, deadlines — but
// NOT in anything that shapes couplings (penalty / penalty_alpha) or in
// the backend they want; the service's batch key guarantees that. Each
// member carries its own StopToken: a deadline or cancel lands between
// that member's iterations (and inside its inner runs via the backend's
// chunked checks) without touching its batch-mates, and a stopped member
// still hands back its partial best.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/saim_solver.hpp"

namespace saim::core {

/// One batch member: everything per-job that solo SaimSolver::solve takes.
struct BatchJob {
  SaimOptions options;
  SampleEvaluator evaluator;  ///< null = normalized-equality fallback
  util::StopToken stop;
  /// Known-feasible full configurations (service warm-start pool). On the
  /// member's first iteration they are re-judged and imported as its
  /// best-so-far, and seeded as backend initial states when supported.
  std::vector<ising::Bits> warm_starts;
};

/// Outcome of one member; `error` is set (and status == kError) when the
/// member's evaluator or options failed — other members are unaffected.
struct BatchOutcome {
  SolveResult result;
  std::string error;
};

/// Fires the moment one member finishes, while its batch-mates keep
/// running — the service uses this to wake that member's waiters without
/// holding them for the whole batch. The callback may consume (move from)
/// the outcome; the entry returned by solve_batch is then moved-from.
using BatchMemberDone = std::function<void(std::size_t job, BatchOutcome&)>;

/// Runs every job against `problem` on ONE model + ONE bound backend.
/// All jobs must agree on penalty / penalty_alpha (the model is shaped
/// from jobs.front()); violating that throws std::invalid_argument, as
/// does an empty job list. Returns outcomes in job order.
std::vector<BatchOutcome> solve_batch(
    const problems::ConstrainedProblem& problem,
    anneal::IsingSolverBackend& backend, std::vector<BatchJob> jobs,
    const BatchMemberDone& on_member_done = nullptr);

}  // namespace saim::core
