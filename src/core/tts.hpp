// Time-to-solution (TTS) metrics — the Ising-machine community's standard
// way to compare stochastic solvers (used by the Digital Annealer paper [9]
// the PT-DA baseline builds on). Given R independent runs of which S
// succeeded (hit the target quality), the success probability estimate is
// p = S/R and
//
//   TTS(q) = t_run * ln(1 - q) / ln(1 - p)
//
// is the expected time to reach the target at confidence q (conventionally
// 0.99). The same formula with "MCS per run" in place of t_run yields the
// samples-to-solution the paper's Fig. 4b compares.
#pragma once

#include <cstddef>
#include <span>

namespace saim::core {

struct TtsEstimate {
  double success_probability = 0.0;  ///< p = successes / runs
  double expected_restarts = 0.0;    ///< ln(1-q)/ln(1-p)
  double tts = 0.0;                  ///< expected_restarts * cost_per_run
  bool defined = false;  ///< false when p == 0 (never solved) — tts = inf
  bool certain = false;  ///< true when p == 1 (single run suffices)
};

/// Computes TTS from counts. cost_per_run may be wall-time seconds or MCS.
/// quantile q must be in (0, 1).
TtsEstimate time_to_solution(std::size_t successes, std::size_t runs,
                             double cost_per_run, double q = 0.99);

/// Convenience over a sequence of per-run achieved costs: success means
/// cost <= target + tol (costs are negative for knapsack profits).
TtsEstimate time_to_solution_from_costs(std::span<const double> run_costs,
                                        double target, double cost_per_run,
                                        double q = 0.99, double tol = 1e-9);

}  // namespace saim::core
