#include "core/saim_solver.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ising/convert.hpp"
#include "lagrange/lagrangian_model.hpp"

namespace saim::core {

SaimSolver::SaimSolver(const problems::ConstrainedProblem& problem,
                       anneal::IsingSolverBackend& backend,
                       SaimOptions options)
    : problem_(&problem),
      backend_(&backend),
      options_(options),
      model_(problem, options.penalty >= 0.0
                          ? options.penalty
                          : lagrange::heuristic_penalty(
                                problem, options.penalty_alpha)) {
  if (options_.iterations == 0) {
    throw std::invalid_argument("SaimSolver: iterations must be positive");
  }
  backend_->bind(model_.ising());
}

double SaimSolver::step_size(std::size_t k) const noexcept {
  switch (options_.step_rule) {
    case StepRule::kFixed:
      return options_.eta;
    case StepRule::kDiminishing:
      return options_.eta / std::sqrt(static_cast<double>(k + 1));
    case StepRule::kHarmonic:
      return options_.eta / static_cast<double>(k + 1);
  }
  return options_.eta;
}

SolveResult SaimSolver::solve(const SampleEvaluator& evaluate) {
  return solve(evaluate, util::StopToken{});
}

namespace {
/// Restores the backend's idle (never-stopping) token even on exceptions.
struct BackendStopGuard {
  anneal::IsingSolverBackend* backend;
  ~BackendStopGuard() { backend->set_stop_token(util::StopToken{}); }
};
}  // namespace

SolveResult SaimSolver::solve(const SampleEvaluator& evaluate,
                              util::StopToken stop) {
  const SampleEvaluator& judge =
      evaluate ? evaluate : make_equality_evaluator(*problem_);

  backend_->set_stop_token(stop);
  BackendStopGuard stop_guard{backend_};

  util::Xoshiro256pp rng(options_.seed);
  std::vector<double> lambda(problem_->num_constraints(), 0.0);
  model_.set_lambda(lambda);
  backend_->fields_updated();

  SolveResult result;
  if (options_.record_history) result.history.reserve(options_.iterations);
  std::size_t converged_streak = 0;

  for (std::size_t k = 0; k < options_.iterations; ++k) {
    // Cooperative stop, polled once per outer iteration so the inner
    // Monte-Carlo loop stays unchanged. Everything gathered so far stays
    // in the (partial) result.
    if (stop.stop_requested()) {
      result.status =
          stop.cancelled() ? Status::kCancelled : Status::kDeadline;
      break;
    }

    // Minimize L_k with the Ising machine; read the measured sample(s).
    // replicas == 1 keeps the paper's single run() call (and its exact RNG
    // stream); replicas > 1 fans out through the backend's run_batch.
    std::vector<anneal::RunResult> runs;
    if (options_.replicas > 1) {
      runs = backend_->run_batch(rng, options_.replicas);
      if (runs.empty()) {
        // The batch refused to start because the stop fired in between.
        result.status =
            stop.cancelled() ? Status::kCancelled : Status::kDeadline;
        break;
      }
    } else {
      runs.push_back(backend_->run(rng));
    }

    // Judge every replica's sample against the original problem; guide the
    // lambda update with the lowest-energy one.
    std::size_t guide = 0;
    ising::Bits x;
    SampleVerdict verdict;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const auto& run = runs[r];
      const auto& spins = options_.use_best_sample ? run.best : run.last;
      const ising::Bits xr = ising::spins_to_bits(spins);
      const SampleVerdict v = judge(xr);
      if (v.feasible) {
        ++result.feasible_count;
        result.found_feasible = true;
        result.feasible_cost_stats.add(v.cost);
        if (options_.collect_feasible_costs) {
          result.feasible_costs.push_back(v.cost);
        }
        if (v.cost < result.best_cost) {
          result.best_cost = v.cost;
          result.best_x.assign(xr.begin(),
                               xr.begin() + static_cast<std::ptrdiff_t>(
                                                problem_->num_decision()));
        }
      }

      const double guide_energy =
          options_.use_best_sample ? run.best_energy : run.last_energy;
      const double incumbent = options_.use_best_sample
                                   ? runs[guide].best_energy
                                   : runs[guide].last_energy;
      if (r == 0 || guide_energy < incumbent) {
        guide = r;
        x = xr;
        verdict = v;
      }
    }

    // Subgradient ascent on the dual: lambda <- lambda + eta_k g(x_k).
    const std::vector<double> g = problem_->constraint_values(x);
    if (options_.record_history) {
      IterationRecord rec;
      rec.iteration = k;
      rec.sample_cost = verdict.cost;
      rec.feasible = verdict.feasible;
      rec.lagrangian_energy = model_.lagrangian(x);
      rec.max_violation = problem_->max_violation(x);
      rec.lambda = lambda;
      result.history.push_back(std::move(rec));
    }
    const double eta_k = step_size(k);
    double lambda_change = 0.0;
    for (std::size_t m = 0; m < lambda.size(); ++m) {
      const double step = eta_k * g[m];
      lambda[m] += step;
      lambda_change += std::abs(step);
    }
    model_.set_lambda(lambda);
    backend_->fields_updated();

    for (const auto& run : runs) result.total_sweeps += run.sweeps;
    result.total_runs += runs.size();

    // Optional early stop once the multiplier staircase has flattened and
    // the feasible pool is non-empty.
    if (options_.convergence_patience > 0) {
      const double mean_change =
          lambda.empty() ? 0.0
                         : lambda_change / static_cast<double>(lambda.size());
      if (mean_change <= options_.convergence_tol && result.found_feasible) {
        ++converged_streak;
        if (converged_streak >= options_.convergence_patience) break;
      } else {
        converged_streak = 0;
      }
    }
  }
  // A stop that fired during the final inner run (truncating it) exits the
  // loop without being re-polled above; without this check the result
  // would claim kCompleted while being timing-dependent — and downstream
  // caches would replay it. Conservatively mark any solve that observed a
  // stop as stopped.
  if (result.status == Status::kCompleted && stop.stop_requested()) {
    result.status = stop.cancelled() ? Status::kCancelled : Status::kDeadline;
  }
  return result;
}

SampleEvaluator make_equality_evaluator(
    const problems::ConstrainedProblem& problem, double tol) {
  return [&problem, tol](std::span<const std::uint8_t> x) {
    SampleVerdict v;
    v.feasible = problem.max_violation(x) <= tol;
    v.cost = problem.objective_value(x);
    return v;
  };
}

}  // namespace saim::core
