#include "core/saim_solver.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ising/convert.hpp"
#include "lagrange/lagrangian_model.hpp"

namespace saim::core {

SaimSolver::SaimSolver(const problems::ConstrainedProblem& problem,
                       anneal::IsingSolverBackend& backend,
                       SaimOptions options)
    : problem_(&problem),
      backend_(&backend),
      options_(options),
      model_(problem, options.penalty >= 0.0
                          ? options.penalty
                          : lagrange::heuristic_penalty(
                                problem, options.penalty_alpha)) {
  if (options_.iterations == 0) {
    throw std::invalid_argument("SaimSolver: iterations must be positive");
  }
  backend_->bind(model_.ising());
}

double SaimSolver::step_size(std::size_t k) const noexcept {
  switch (options_.step_rule) {
    case StepRule::kFixed:
      return options_.eta;
    case StepRule::kDiminishing:
      return options_.eta / std::sqrt(static_cast<double>(k + 1));
    case StepRule::kHarmonic:
      return options_.eta / static_cast<double>(k + 1);
  }
  return options_.eta;
}

SolveResult SaimSolver::solve(const SampleEvaluator& evaluate) {
  const SampleEvaluator& judge =
      evaluate ? evaluate : make_equality_evaluator(*problem_);

  util::Xoshiro256pp rng(options_.seed);
  std::vector<double> lambda(problem_->num_constraints(), 0.0);
  model_.set_lambda(lambda);
  backend_->fields_updated();

  SolveResult result;
  if (options_.record_history) result.history.reserve(options_.iterations);
  std::size_t converged_streak = 0;

  for (std::size_t k = 0; k < options_.iterations; ++k) {
    // Minimize L_k with the Ising machine; read the measured sample.
    const anneal::RunResult run = backend_->run(rng);
    const auto& spins = options_.use_best_sample ? run.best : run.last;
    const ising::Bits x = ising::spins_to_bits(spins);

    // Store feasible solutions, judged on the original problem.
    const SampleVerdict verdict = judge(x);
    if (verdict.feasible) {
      ++result.feasible_count;
      result.found_feasible = true;
      result.feasible_cost_stats.add(verdict.cost);
      if (options_.collect_feasible_costs) {
        result.feasible_costs.push_back(verdict.cost);
      }
      if (verdict.cost < result.best_cost) {
        result.best_cost = verdict.cost;
        result.best_x.assign(x.begin(),
                             x.begin() + static_cast<std::ptrdiff_t>(
                                             problem_->num_decision()));
      }
    }

    // Subgradient ascent on the dual: lambda <- lambda + eta_k g(x_k).
    const std::vector<double> g = problem_->constraint_values(x);
    if (options_.record_history) {
      IterationRecord rec;
      rec.iteration = k;
      rec.sample_cost = verdict.cost;
      rec.feasible = verdict.feasible;
      rec.lagrangian_energy = model_.lagrangian(x);
      rec.max_violation = problem_->max_violation(x);
      rec.lambda = lambda;
      result.history.push_back(std::move(rec));
    }
    const double eta_k = step_size(k);
    double lambda_change = 0.0;
    for (std::size_t m = 0; m < lambda.size(); ++m) {
      const double step = eta_k * g[m];
      lambda[m] += step;
      lambda_change += std::abs(step);
    }
    model_.set_lambda(lambda);
    backend_->fields_updated();

    result.total_sweeps += run.sweeps;
    ++result.total_runs;

    // Optional early stop once the multiplier staircase has flattened and
    // the feasible pool is non-empty.
    if (options_.convergence_patience > 0) {
      const double mean_change =
          lambda.empty() ? 0.0
                         : lambda_change / static_cast<double>(lambda.size());
      if (mean_change <= options_.convergence_tol && result.found_feasible) {
        ++converged_streak;
        if (converged_streak >= options_.convergence_patience) break;
      } else {
        converged_streak = 0;
      }
    }
  }
  return result;
}

SampleEvaluator make_equality_evaluator(
    const problems::ConstrainedProblem& problem, double tol) {
  return [&problem, tol](std::span<const std::uint8_t> x) {
    SampleVerdict v;
    v.feasible = problem.max_violation(x) <= tol;
    v.cost = problem.objective_value(x);
    return v;
  };
}

}  // namespace saim::core
