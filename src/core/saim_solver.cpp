#include "core/saim_solver.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ising/convert.hpp"
#include "lagrange/lagrangian_model.hpp"

namespace saim::core {

// ------------------------------------------------------------- DualAscent

DualAscent::DualAscent(const problems::ConstrainedProblem& problem,
                       SaimOptions options, SampleEvaluator evaluate,
                       util::StopToken stop,
                       std::vector<ising::Bits> warm_starts)
    : problem_(&problem),
      options_(options),
      judge_(evaluate ? std::move(evaluate)
                      : make_equality_evaluator(problem)),
      stop_(std::move(stop)),
      warm_starts_(std::move(warm_starts)),
      rng_(options.seed),
      lambda_(problem.num_constraints(), 0.0) {
  if (options_.record_history) result_.history.reserve(options_.iterations);
}

double DualAscent::step_size(std::size_t k) const noexcept {
  switch (options_.step_rule) {
    case StepRule::kFixed:
      return options_.eta;
    case StepRule::kDiminishing:
      return options_.eta / std::sqrt(static_cast<double>(k + 1));
    case StepRule::kHarmonic:
      return options_.eta / static_cast<double>(k + 1);
  }
  return options_.eta;
}

void DualAscent::finalize(Status status) {
  // A stop that fired during the final inner run (truncating it) exits
  // without being re-polled at the top of a step; without this promotion
  // the result would claim kCompleted while being timing-dependent — and
  // downstream caches would replay it. Conservatively mark any solve that
  // observed a stop as stopped.
  if (status == Status::kCompleted && stop_.stop_requested()) {
    status = stop_.cancelled() ? Status::kCancelled : Status::kDeadline;
  }
  result_.status = status;
  finished_ = true;
}

bool DualAscent::step(lagrange::LagrangianModel& model,
                      anneal::IsingSolverBackend& backend) {
  if (!begin_iteration(model, backend)) return true;

  // Minimize L_k with the Ising machine; read the measured sample(s).
  // replicas == 1 keeps the paper's single run() call (and its exact RNG
  // stream); replicas > 1 fans out through the backend's run_batch.
  std::vector<anneal::RunResult> runs;
  if (options_.replicas > 1) {
    runs = backend.run_batch(rng_, options_.replicas);
  } else {
    runs.push_back(backend.run(rng_));
  }
  return consume_iteration(model, std::move(runs));
}

bool DualAscent::begin_fused_round(lagrange::LagrangianModel& model,
                                   anneal::IsingSolverBackend& backend) {
  if (!begin_iteration(model, backend)) return false;
  // Consumes exactly what run_batch would from this job's RNG (one base
  // draw) and snapshots the model's current fields, so later members'
  // set_lambda cannot disturb this member's enqueued landscape.
  backend.enqueue_fused(rng_, options_.replicas);
  return true;
}

bool DualAscent::consume_fused_round(lagrange::LagrangianModel& model,
                                     std::vector<anneal::RunResult> runs) {
  // Other members' begin_fused_round calls re-shaped the shared model
  // since ours; the history record evaluates model.lagrangian(x) and must
  // see THIS job's (pre-update) multipliers again.
  if (options_.record_history) model.set_lambda(lambda_);
  return consume_iteration(model, std::move(runs));
}

bool DualAscent::begin_iteration(lagrange::LagrangianModel& model,
                                 anneal::IsingSolverBackend& backend) {
  if (finished_) return false;

  if (k_ == 0 && !warm_starts_.empty()) {
    // Import the pooled samples: re-judged (never trusted) against THIS
    // job's evaluator, and only best_cost/best_x seeded — the measured
    // per-sample statistics stay untouched so feasibility_rate and
    // optimality columns keep describing what this solve measured.
    for (const auto& sample : warm_starts_) {
      if (sample.size() != problem_->n()) continue;
      const SampleVerdict v = judge_(sample);
      if (!v.feasible) continue;
      result_.found_feasible = true;
      if (v.cost < result_.best_cost) {
        result_.best_cost = v.cost;
        result_.best_config = sample;
        result_.best_x.assign(
            sample.begin(),
            sample.begin() +
                static_cast<std::ptrdiff_t>(problem_->num_decision()));
      }
    }
  }

  // Cooperative stop, polled once per outer iteration so the inner
  // Monte-Carlo loop stays unchanged. Everything gathered so far stays in
  // the (partial) result.
  if (stop_.stop_requested()) {
    finalize(stop_.cancelled() ? Status::kCancelled : Status::kDeadline);
    return false;
  }
  if (k_ >= options_.iterations) {
    finalize(Status::kCompleted);
    return false;
  }

  // (Re-)shape the landscape for THIS job's multipliers. set_lambda is a
  // pure rebuild from base coefficients, so interleaving other jobs'
  // lambdas on the same model between our steps is invisible here.
  model.set_lambda(lambda_);
  backend.fields_updated();
  backend.set_stop_token(stop_);
  if (k_ == 0 && !warm_starts_.empty() &&
      backend.supports_initial_states()) {
    std::vector<ising::Spins> seeds;
    seeds.reserve(warm_starts_.size());
    for (const auto& sample : warm_starts_) {
      if (sample.size() == problem_->n()) {
        seeds.push_back(ising::bits_to_spins(sample));
      }
    }
    if (!seeds.empty()) backend.set_initial_states(std::move(seeds));
  }
  return true;
}

bool DualAscent::consume_iteration(lagrange::LagrangianModel& model,
                                   std::vector<anneal::RunResult> runs) {
  if (runs.empty()) {
    // The batch refused to start because the stop fired in between.
    finalize(stop_.cancelled() ? Status::kCancelled : Status::kDeadline);
    return true;
  }

  // Judge every replica's sample against the original problem; guide the
  // lambda update with the lowest-energy one.
  std::size_t guide = 0;
  ising::Bits x;
  SampleVerdict verdict;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const auto& run = runs[r];
    const auto& spins = options_.use_best_sample ? run.best : run.last;
    const ising::Bits xr = ising::spins_to_bits(spins);
    const SampleVerdict v = judge_(xr);
    if (v.feasible) {
      ++result_.feasible_count;
      result_.found_feasible = true;
      result_.feasible_cost_stats.add(v.cost);
      if (options_.collect_feasible_costs) {
        result_.feasible_costs.push_back(v.cost);
      }
      if (v.cost < result_.best_cost) {
        result_.best_cost = v.cost;
        result_.best_config = xr;
        result_.best_x.assign(xr.begin(),
                              xr.begin() + static_cast<std::ptrdiff_t>(
                                               problem_->num_decision()));
      }
    }

    const double guide_energy =
        options_.use_best_sample ? run.best_energy : run.last_energy;
    const double incumbent = options_.use_best_sample
                                 ? runs[guide].best_energy
                                 : runs[guide].last_energy;
    if (r == 0 || guide_energy < incumbent) {
      guide = r;
      x = xr;
      verdict = v;
    }
  }

  // Subgradient ascent on the dual: lambda <- lambda + eta_k g(x_k).
  const std::vector<double> g = problem_->constraint_values(x);
  if (options_.record_history) {
    IterationRecord rec;
    rec.iteration = k_;
    rec.sample_cost = verdict.cost;
    rec.feasible = verdict.feasible;
    rec.lagrangian_energy = model.lagrangian(x);
    rec.max_violation = problem_->max_violation(x);
    rec.lambda = lambda_;
    result_.history.push_back(std::move(rec));
  }
  const double eta_k = step_size(k_);
  double lambda_change = 0.0;
  for (std::size_t m = 0; m < lambda_.size(); ++m) {
    const double step = eta_k * g[m];
    lambda_[m] += step;
    lambda_change += std::abs(step);
  }

  for (const auto& run : runs) result_.total_sweeps += run.sweeps;
  result_.total_runs += runs.size();
  ++k_;

  // Optional early stop once the multiplier staircase has flattened and
  // the feasible pool is non-empty.
  if (options_.convergence_patience > 0) {
    const double mean_change =
        lambda_.empty() ? 0.0
                        : lambda_change / static_cast<double>(lambda_.size());
    if (mean_change <= options_.convergence_tol && result_.found_feasible) {
      ++converged_streak_;
      if (converged_streak_ >= options_.convergence_patience) {
        finalize(Status::kCompleted);
        return true;
      }
    } else {
      converged_streak_ = 0;
    }
  }
  if (k_ >= options_.iterations) {
    finalize(Status::kCompleted);
    return true;
  }
  return false;
}

// ------------------------------------------------------------- SaimSolver

SaimSolver::SaimSolver(const problems::ConstrainedProblem& problem,
                       anneal::IsingSolverBackend& backend,
                       SaimOptions options)
    : problem_(&problem),
      backend_(&backend),
      options_(options),
      model_(problem, options.penalty >= 0.0
                          ? options.penalty
                          : lagrange::heuristic_penalty(
                                problem, options.penalty_alpha)) {
  if (options_.iterations == 0) {
    throw std::invalid_argument("SaimSolver: iterations must be positive");
  }
  backend_->bind(model_.ising());
}

SolveResult SaimSolver::solve(const SampleEvaluator& evaluate) {
  return solve(evaluate, util::StopToken{});
}

namespace {
/// Restores the backend's idle (never-stopping) token even on exceptions.
struct BackendStopGuard {
  anneal::IsingSolverBackend* backend;
  ~BackendStopGuard() { backend->set_stop_token(util::StopToken{}); }
};
}  // namespace

SolveResult SaimSolver::solve(const SampleEvaluator& evaluate,
                              util::StopToken stop) {
  BackendStopGuard stop_guard{backend_};
  DualAscent ascent(*problem_, options_, evaluate, std::move(stop));
  while (!ascent.step(model_, *backend_)) {
  }
  return std::move(ascent.result());
}

SampleEvaluator make_equality_evaluator(
    const problems::ConstrainedProblem& problem, double tol) {
  return [&problem, tol](std::span<const std::uint8_t> x) {
    SampleVerdict v;
    v.feasible = problem.max_violation(x) <= tol;
    v.cost = problem.objective_value(x);
    return v;
  };
}

}  // namespace saim::core
