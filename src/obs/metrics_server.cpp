#include "obs/metrics_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/framing.hpp"

namespace saim::obs {

MetricsServer::MetricsServer(const std::string& host, int port,
                             std::function<std::string()> producer)
    : listener_(host, port), producer_(std::move(producer)) {
  net::ignore_sigpipe_once();  // a scraper may vanish mid-response
  thread_ = std::thread([this] { loop(); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::stop() {
  if (!stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    listener_.close();
  }
}

void MetricsServer::loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    const auto fd = listener_.accept_fd();
    if (!fd) continue;
    serve_one(*fd);
    ::close(*fd);
  }
}

void MetricsServer::serve_one(int fd) {
  // Bound every blocking step: a scraper that connects and stalls must
  // not wedge the serving loop past a beat.
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  // Read until the blank line ending the request head (or EOF, or the
  // timeout, or an oversized head). The request itself is ignored: every
  // GET — whatever the path — scrapes the same payload.
  std::string head;
  char buf[1024];
  while (head.size() < 16 * 1024 &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      head.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF, timeout or error: serve what we can anyway
  }

  std::string body;
  const char* status = "200 OK";
  try {
    body = producer_();
  } catch (...) {
    status = "500 Internal Server Error";
    body = "metrics producer failed\n";
  }
  std::string response = "HTTP/1.0 ";
  response += status;
  response +=
      "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\nConnection: close\r\n\r\n";
  response += body;

  std::size_t written = 0;
  while (written < response.size()) {
    const ssize_t n =
        ::write(fd, response.data() + written, response.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // peer gone or send timeout: give up on this scrape
  }
}

}  // namespace saim::obs
