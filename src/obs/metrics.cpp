#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace saim::obs {

// -------------------------------------------------------------- histogram

double Histogram::bucket_upper(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return kMinUpper * std::ldexp(1.0, static_cast<int>(i));
}

std::size_t Histogram::bucket_index(double value) {
  if (!(value > kMinUpper)) return 0;  // NaN/negative/tiny: first bucket
  // Smallest i with value <= kMinUpper * 2^i. ilogb gives floor(log2);
  // an exact power of two is its own upper bound, anything above rounds
  // up one bucket.
  const double ratio = value / kMinUpper;
  const int floor_log = std::ilogb(ratio);
  std::size_t index = static_cast<std::size_t>(std::max(0, floor_log));
  if (std::ldexp(1.0, floor_log) < ratio) ++index;
  return std::min(index, kBuckets - 1);
}

void Histogram::observe(double value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of atomic<double>::fetch_add: bit-portable across
  // standard libraries, and contention here is one add per completed job.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::quantile(double q) const {
  // Total from the buckets themselves: count may lag the bucket adds by
  // in-flight observations, and a rank beyond the bucket total would
  // walk off the array.
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);

  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= rank) {
      const double lower = i == 0 ? 0.0 : Histogram::bucket_upper(i - 1);
      const double upper = Histogram::bucket_upper(i);
      if (!std::isfinite(upper)) return lower;  // overflow: no interpolation
      const double fraction =
          (rank - cumulative) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return Histogram::bucket_upper(kBuckets - 2);  // unreachable in practice
}

// --------------------------------------------------------------- PromText

namespace {

std::string format_value(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

void append_series_line(std::string* out, std::string_view name,
                        std::string_view labels, const std::string& value) {
  out->append(name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}

}  // namespace

void PromText::header(std::string_view name, std::string_view type,
                      std::string_view help) {
  out_.append("# HELP ").append(name).push_back(' ');
  out_.append(help.empty() ? std::string_view{"(no help)"} : help);
  out_.push_back('\n');
  out_.append("# TYPE ").append(name).push_back(' ');
  out_.append(type);
  out_.push_back('\n');
}

void PromText::series(std::string_view name, std::string_view labels,
                      double value) {
  append_series_line(&out_, name, labels, format_value(value));
}

void PromText::series(std::string_view name, std::string_view labels,
                      std::uint64_t value) {
  append_series_line(&out_, name, labels, std::to_string(value));
}

void PromText::histogram(std::string_view name, std::string_view labels,
                         const HistogramSnapshot& snap,
                         std::string_view help) {
  header(name, "histogram", help);
  histogram_series(name, labels, snap);
}

void PromText::histogram_series(std::string_view name, std::string_view labels,
                                const HistogramSnapshot& snap) {
  const std::string bucket_name = std::string(name) + "_bucket";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    cumulative += snap.buckets[i];
    std::string le = i + 1 >= HistogramSnapshot::kBuckets
                         ? "+Inf"
                         : format_value(Histogram::bucket_upper(i));
    std::string bucket_labels = std::string(labels);
    if (!bucket_labels.empty()) bucket_labels += ",";
    bucket_labels += "le=\"" + le + "\"";
    append_series_line(&out_, bucket_name, bucket_labels,
                       std::to_string(cumulative));
  }
  series(std::string(name) + "_sum", labels, snap.sum);
  series(std::string(name) + "_count", labels, cumulative);
}

// --------------------------------------------------------------- registry

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto ok = [](char c, bool first) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':' || (!first && c >= '0' && c <= '9');
  };
  if (!ok(name.front(), true)) return false;
  return std::all_of(name.begin() + 1, name.end(),
                     [&](char c) { return ok(c, false); });
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::get_or_create(const std::string& name,
                                                       const std::string& help,
                                                       Kind kind) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("bad metric name '" + name + "'");
  }
  util::MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("metric '" + name +
                             "' already registered with a different kind");
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return entries_.emplace(name, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  return *get_or_create(name, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  return *get_or_create(name, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help) {
  return *get_or_create(name, help, Kind::kHistogram).histogram;
}

std::vector<std::string> MetricsRegistry::names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::optional<HistogramSnapshot> MetricsRegistry::histogram_snapshot(
    const std::string& name) const {
  util::MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kHistogram) {
    return std::nullopt;
  }
  return it->second.histogram->snapshot();
}

std::optional<std::uint64_t> MetricsRegistry::counter_value(
    const std::string& name) const {
  util::MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kCounter) {
    return std::nullopt;
  }
  return it->second.counter->value();
}

std::optional<double> MetricsRegistry::gauge_value(
    const std::string& name) const {
  util::MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kGauge) {
    return std::nullopt;
  }
  return it->second.gauge->value();
}

std::string MetricsRegistry::render_prometheus() const {
  PromText text;
  util::MutexLock lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        text.header(name, "counter", entry.help);
        text.series(name, {}, entry.counter->value());
        break;
      case Kind::kGauge:
        text.header(name, "gauge", entry.help);
        text.series(name, {}, entry.gauge->value());
        break;
      case Kind::kHistogram:
        text.histogram(name, {}, entry.histogram->snapshot(), entry.help);
        break;
    }
  }
  return text.str();
}

}  // namespace saim::obs
