// MetricsServer — the scrape-able `--metrics host:port` endpoint.
//
// One background thread polls a net::Listener and serves each accepted
// connection one-shot, HTTP-ish: read the request head (ignored beyond
// framing — every path scrapes the same payload), write an HTTP/1.0
// response carrying the producer's Prometheus text exposition, close.
// That is exactly what `curl` and a Prometheus scraper need and nothing
// more: no keep-alive, no routing, no TLS — the endpoint binds loopback
// by default and trusts its network like the job port does.
//
// The producer runs ON THE SERVER THREAD, concurrently with the serving
// loop — it must be thread-safe (SolveService stats/registry are atomic;
// single-threaded owners like the shard router publish a pre-rendered
// snapshot string instead, see tools/saim_shard.cpp).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "net/listener.hpp"

namespace saim::obs {

class MetricsServer {
 public:
  /// Binds and starts serving immediately. Throws std::runtime_error on
  /// bind failure (net::Listener's diagnostics). Port 0 picks an
  /// ephemeral port; port() reports the bound one.
  MetricsServer(const std::string& host, int port,
                std::function<std::string()> producer);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  [[nodiscard]] int port() const noexcept { return listener_.port(); }

  /// Stops the serving loop and joins the thread. Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  void loop();
  void serve_one(int fd);

  net::Listener listener_;
  std::function<std::string()> producer_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace saim::obs
