// Observability primitives: lock-cheap counters, gauges and fixed-bucket
// log-scale latency histograms, plus a MetricsRegistry that owns them by
// name and renders the whole set in Prometheus text-exposition format
// (docs/ARCHITECTURE.md, "Observability").
//
// Design constraints, in order:
//   * hot-path cost — recording is a handful of relaxed atomic adds on a
//     pre-registered handle; no lock, no allocation, no string lookup.
//     Registration (the only locked path) happens once at startup;
//   * pure observation — nothing here touches solver state or RNG, so
//     solver outputs are bit-identical with metrics enabled (pinned by
//     the parity suites);
//   * mergeable — HistogramSnapshots add bucket-wise, so per-shard or
//     per-wave histograms roll up into fleet/phase totals exactly.
//
// Histogram buckets are logarithmic: bucket i (i < kBuckets-1) holds
// values in (upper(i-1), upper(i)] with upper(i) = kMinUpper * 2^i, and
// the last bucket is the +Inf overflow. With kMinUpper = 1e-3 (1 us when
// values are milliseconds) the 40 buckets span 1 us .. ~9 hours — every
// latency this stack can produce lands in a finite bucket. Quantiles
// interpolate linearly inside the owning bucket, the standard
// histogram_quantile() estimate; 2x bucket growth bounds the relative
// error at ~2x worst case, plenty for p50/p95/p99 dashboards.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace saim::obs {

/// Monotonically increasing event count (Prometheus counter).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (Prometheus gauge).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a Histogram: plain integers, freely copyable,
/// mergeable by bucket-wise addition.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 40;

  std::array<std::uint64_t, kBuckets> buckets{};  ///< per-bucket counts
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Adds `other`'s observations into this snapshot.
  void merge(const HistogramSnapshot& other);

  /// The q-quantile estimate (q in [0,1]), linearly interpolated inside
  /// the owning bucket; the overflow bucket reports its lower bound.
  /// 0 when the snapshot is empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double mean() const { return count ? sum / count : 0.0; }
};

/// Fixed-bucket log-scale histogram with atomic bucket counters. observe()
/// is wait-free (relaxed adds); snapshot() is a racy-but-consistent-enough
/// read (each bucket individually exact, totals may lag by in-flight
/// observations — fine for monitoring, never used for control flow).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;
  /// Upper bound of bucket 0 (1 us when observing milliseconds).
  static constexpr double kMinUpper = 1e-3;

  /// Inclusive upper bound of bucket `i`; +infinity for the last bucket.
  [[nodiscard]] static double bucket_upper(std::size_t i);
  /// The bucket `value` falls into (values <= kMinUpper, NaN and
  /// negatives land in bucket 0; anything past the finite range lands in
  /// the overflow bucket).
  [[nodiscard]] static std::size_t bucket_index(double value);

  void observe(double value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Incrementally builds a Prometheus text-exposition payload
/// (Content-Type: text/plain; version=0.0.4). `labels` is the rendered
/// label set without braces, e.g. `shard="0"`, empty for none.
class PromText {
 public:
  /// One `# HELP` + `# TYPE` header. `type` is counter/gauge/histogram.
  void header(std::string_view name, std::string_view type,
              std::string_view help);
  void series(std::string_view name, std::string_view labels, double value);
  void series(std::string_view name, std::string_view labels,
              std::uint64_t value);
  /// The full _bucket/_sum/_count expansion of one histogram, headers
  /// included (call once per name+labels pair).
  void histogram(std::string_view name, std::string_view labels,
                 const HistogramSnapshot& snap, std::string_view help = "");
  /// Same expansion WITHOUT the header: for several label sets under one
  /// metric name (one header, then one series call per label set —
  /// duplicate # TYPE lines are a malformed exposition).
  void histogram_series(std::string_view name, std::string_view labels,
                        const HistogramSnapshot& snap);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  std::string out_;
};

/// Named metric registry. counter()/gauge()/histogram() get-or-create and
/// return a stable reference — register once, record through the handle
/// forever (handles outlive nothing: the registry owns every metric and
/// must outlive all use). Names must match the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* ; a name can hold only one metric kind
/// (std::logic_error otherwise).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");

  /// Every registered metric name, sorted (tests: "the scrape returns
  /// every registered series").
  [[nodiscard]] std::vector<std::string> names() const SAIM_EXCLUDES(mutex_);

  /// Read-only snapshot of one histogram by name; std::nullopt when no
  /// histogram is registered under it (readers must not get-or-create).
  [[nodiscard]] std::optional<HistogramSnapshot> histogram_snapshot(
      const std::string& name) const SAIM_EXCLUDES(mutex_);

  /// Read-only lookups for the stats snapshot path: the current value of
  /// a registered counter/gauge, std::nullopt when the name is absent or
  /// of another kind (readers must not get-or-create).
  [[nodiscard]] std::optional<std::uint64_t> counter_value(
      const std::string& name) const SAIM_EXCLUDES(mutex_);
  [[nodiscard]] std::optional<double> gauge_value(const std::string& name)
      const SAIM_EXCLUDES(mutex_);

  /// The whole registry in Prometheus text-exposition format.
  [[nodiscard]] std::string render_prometheus() const SAIM_EXCLUDES(mutex_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& get_or_create(const std::string& name, const std::string& help,
                       Kind kind) SAIM_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  /// Sorted render order. Entries are never erased, and the metric objects
  /// live behind unique_ptr, so references handed out by get_or_create stay
  /// valid without the lock — only the map structure itself is guarded.
  std::map<std::string, Entry> entries_ SAIM_GUARDED_BY(mutex_);
};

}  // namespace saim::obs
