#include "net/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include <algorithm>
#include <array>

namespace saim::net {

namespace {

void set_nonblocking_cloexec(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  const int fd_flags = ::fcntl(fd, F_GETFD, 0);
  if (fd_flags >= 0) ::fcntl(fd, F_SETFD, fd_flags | FD_CLOEXEC);
}

#if defined(__linux__)
std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t ev = 0;
  if (interest & EventLoop::kRead) ev |= EPOLLIN;
  if (interest & EventLoop::kWrite) ev |= EPOLLOUT;
  return ev;
}

std::uint32_t from_epoll(std::uint32_t ev) {
  std::uint32_t ready = 0;
  if (ev & EPOLLIN) ready |= EventLoop::kRead;
  if (ev & EPOLLOUT) ready |= EventLoop::kWrite;
  // Hangup/error always surface as readable too: the consumer's read
  // path is where EOF and ECONNRESET are observed, and it must run even
  // when read interest was paused (see header contract).
  if (ev & (EPOLLERR | EPOLLHUP)) {
    ready |= EventLoop::kError | EventLoop::kRead;
  }
  return ready;
}
#endif

short to_poll(std::uint32_t interest) {
  short ev = 0;
  if (interest & EventLoop::kRead) ev |= POLLIN;
  if (interest & EventLoop::kWrite) ev |= POLLOUT;
  return ev;
}

std::uint32_t from_poll(short revents) {
  std::uint32_t ready = 0;
  if (revents & POLLIN) ready |= EventLoop::kRead;
  if (revents & POLLOUT) ready |= EventLoop::kWrite;
  if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
    ready |= EventLoop::kError | EventLoop::kRead;
  }
  return ready;
}

}  // namespace

EventLoop::EventLoop(bool force_poll) {
#if defined(__linux__)
  if (!force_poll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ >= 0) {
      wake_read_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      wake_write_fd_ = wake_read_fd_;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = wake_read_fd_;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev);
      return;
    }
  }
#else
  (void)force_poll;
#endif
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) == 0) {
    set_nonblocking_cloexec(pipe_fds[0]);
    set_nonblocking_cloexec(pipe_fds[1]);
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
  }
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    ::close(wake_write_fd_);
  }
}

void EventLoop::add_fd(int fd, std::uint32_t interest, FdCallback callback) {
  if (fd < 0) return;
  const bool existed = fds_.contains(fd);
  fds_[fd] = FdEntry{interest, std::move(callback)};
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, existed ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
  }
#else
  (void)existed;
#endif
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if (it->second.interest == interest) return;
  it->second.interest = interest;
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
#endif
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

std::uint64_t EventLoop::add_timer(std::chrono::milliseconds delay,
                                   TimerCallback callback) {
  const std::uint64_t id = next_timer_id_++;
  timers_.emplace(id, std::move(callback));
  timer_heap_.push(TimerEntry{Clock::now() + delay, id});
  return id;
}

bool EventLoop::cancel_timer(std::uint64_t id) {
  // Lazy: the heap entry stays and is skipped when popped.
  return timers_.erase(id) > 0;
}

int EventLoop::effective_timeout_ms(int max_wait_ms) const {
  int timeout = max_wait_ms;
  if (!timer_heap_.empty()) {
    // Round UP to whole milliseconds: rounding down would busy-spin the
    // final sub-millisecond of every timer.
    const auto until = timer_heap_.top().deadline - Clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(until).count();
    const long long ms = ns <= 0 ? 0 : (ns + 999'999) / 1'000'000;
    const int clamped = static_cast<int>(std::min<long long>(ms, 60'000));
    timeout = timeout < 0 ? clamped : std::min(timeout, clamped);
  }
  return timeout;
}

void EventLoop::fire_due_timers() {
  const auto now = Clock::now();
  while (!timer_heap_.empty() && timer_heap_.top().deadline <= now) {
    const TimerEntry entry = timer_heap_.top();
    timer_heap_.pop();
    const auto it = timers_.find(entry.id);
    if (it == timers_.end()) continue;  // cancelled
    TimerCallback callback = std::move(it->second);
    timers_.erase(it);
    callback();  // may add_timer (re-arm) or mutate the fd set
  }
}

void EventLoop::drain_wakeup() const {
  char buffer[64];
  while (::read(wake_read_fd_, buffer, sizeof buffer) > 0) {
  }
}

void EventLoop::dispatch(int fd, std::uint32_t ready) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;  // removed by an earlier callback this pass
  // Copy: the callback may remove (and thereby destroy) its own entry.
  const FdCallback callback = it->second.callback;
  callback(ready);
}

void EventLoop::run_once(int max_wait_ms) {
  const int timeout = effective_timeout_ms(max_wait_ms);
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    std::array<epoll_event, 64> events;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    fire_due_timers();
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_read_fd_) {
        drain_wakeup();
        continue;
      }
      dispatch(fd, from_epoll(events[static_cast<std::size_t>(i)].events));
    }
    return;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size() + 1);
  pfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
  for (const auto& [fd, entry] : fds_) {
    pfds.push_back(pollfd{fd, to_poll(entry.interest), 0});
  }
  const int n = ::poll(pfds.data(), pfds.size(), timeout);
  fire_due_timers();
  if (n <= 0) return;
  if (pfds[0].revents & POLLIN) drain_wakeup();
  // Collect first, dispatch second: a callback may mutate fds_, which
  // dispatch() re-checks, but pfds must not be re-read after that.
  ready_.clear();
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    ready_.emplace_back(pfds[i].fd, from_poll(pfds[i].revents));
  }
  for (const auto& [fd, ev] : ready_) dispatch(fd, ev);
}

void EventLoop::run() {
  stop_ = false;
  while (!stop_) run_once(1000);
}

void EventLoop::stop() { stop_ = true; }

void EventLoop::wakeup() {
  if (wake_write_fd_ < 0) return;
#if defined(__linux__)
  if (wake_write_fd_ == wake_read_fd_) {  // eventfd
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n =
        ::write(wake_write_fd_, &one, sizeof one);
    return;
  }
#endif
  const char byte = 0;
  [[maybe_unused]] const auto n = ::write(wake_write_fd_, &byte, 1);
}

}  // namespace saim::net
