// Line framing over raw stream fds — the byte-level half of the JSONL
// transports, shared by the pipe transport (service/ProcessChild) and the
// TCP transport (net/Connection) so both frame lines identically.
//
// The protocol is newline-delimited: a line is every byte up to (not
// including) '\n'. Stream fds deliver arbitrary fragments — a read may
// return half a line, three lines and a half, or one byte — so LineFramer
// accumulates bytes and surfaces only complete lines; a trailing
// half-line at EOF is dropped (the peer died mid-write; a partial JSON
// object is garbage by definition).
//
// The fd helpers wrap the non-blocking read/write dance (EAGAIN, EINTR,
// EPIPE/ECONNRESET) into small enums so the transports share one
// correctness story instead of two copies of errno handling.
#pragma once

#include <string>
#include <vector>

namespace saim::net {

/// Accumulates stream fragments and yields complete '\n'-terminated
/// lines (without the newline). Bytes after the last newline stay
/// buffered until more arrive.
class LineFramer {
 public:
  /// Appends `size` raw bytes from the stream.
  void feed(const char* data, std::size_t size);

  /// Extracts every complete line buffered so far, in arrival order.
  std::vector<std::string> take_lines();

  /// Bytes buffered past the last complete line.
  [[nodiscard]] std::size_t partial_bytes() const noexcept {
    return buffer_.size();
  }

 private:
  std::string buffer_;
};

enum class ReadStatus {
  kOk,      ///< drained what was available (possibly nothing: EAGAIN)
  kEof,     ///< orderly end of stream (read returned 0)
  kError,   ///< connection reset or another hard error
};

enum class WriteStatus {
  kOk,      ///< everything accepted
  kBlocked, ///< kernel buffer full (EAGAIN); bytes remain in `buffer`
  kBroken,  ///< EPIPE/ECONNRESET or another hard error; peer is gone
};

/// Reads whatever `fd` has (non-blocking loop until EAGAIN/EOF), feeding
/// every byte into `framer`.
ReadStatus read_available(int fd, LineFramer& framer);

/// Writes as much of `buffer` as `fd` accepts right now, erasing the
/// accepted prefix.
WriteStatus write_some(int fd, std::string& buffer);

/// Ignores SIGPIPE process-wide, once: a peer that vanished between our
/// poll and our write must surface as WriteStatus::kBroken (EPIPE), not
/// kill the process. Installed by every transport constructor.
void ignore_sigpipe_once();

}  // namespace saim::net
