#include "net/listener.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "net/framing.hpp"

namespace saim::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

int bound_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

}  // namespace

Listener::Listener(const std::string& host, int port) {
  // Session threads write to accepted fds; a client that disconnects
  // mid-result must not SIGPIPE the whole server.
  ignore_sigpipe_once();
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &result);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve " + host + ":" + service +
                             ": " + ::gai_strerror(rc));
  }
  int saved_errno = 0;
  for (addrinfo* ai = result; ai; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                            ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    // Restarted supervisors must be able to rebind their port while old
    // connections linger in TIME_WAIT.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, SOMAXCONN) == 0) {
      fd_ = fd;
      break;
    }
    saved_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(result);
  if (fd_ < 0) {
    throw std::runtime_error("cannot listen on " + host + ":" + service +
                             ": " + ::strerror(saved_errno));
  }
  set_nonblocking(fd_);
  set_cloexec(fd_);
  port_ = bound_port(fd_);
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

std::optional<int> Listener::accept_fd() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      set_cloexec(client);
      // BSD-derived systems make accepted fds inherit the listener's
      // O_NONBLOCK; the contract here is a BLOCKING fd (session threads
      // depend on it), so clear it explicitly everywhere.
      const int flags = ::fcntl(client, F_GETFL, 0);
      if (flags >= 0) ::fcntl(client, F_SETFL, flags & ~O_NONBLOCK);
      return client;
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // EAGAIN or a transient accept failure
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace saim::net
