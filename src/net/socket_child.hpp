// net::SocketChild — a shard reached over TCP.
//
// The socket twin of service::ProcessChild: where ProcessChild fork/execs
// a local `saim_serve --stream` and speaks through pipes, SocketChild
// connects to a remote `saim_serve --listen <host:port>` (started by an
// operator on any machine) and speaks the identical line protocol through
// a net::Connection. The ShardRouter cannot tell them apart — that is the
// point: `saim_shard --connect host:port` joins remote shards into the
// same consistent-hash ring as local forks.
//
// Death model: a closed/reset connection surfaces as eof(), feeding the
// same EOF-before-down failover path as a crashed local child. The
// Supervisor does not re-exec remote shards (it cannot); their jobs fail
// over to the survivors.
#pragma once

#include <string>
#include <vector>

#include "net/connection.hpp"
#include "net/shard_endpoint.hpp"

namespace saim::net {

class SocketChild : public ShardEndpoint {
 public:
  /// Connects to host:port. Throws std::runtime_error (with the endpoint
  /// in the message) when the connection cannot be established. A
  /// non-empty `auth_token` is presented as the session's first line
  /// ({"auth":"..."}) — required by servers started with --auth-token,
  /// which close unauthenticated sessions before reading any job.
  SocketChild(std::string host, int port, std::string auth_token = "");

  void send_line(const std::string& line) override;
  bool pump_writes() override;
  std::vector<std::string> read_lines() override;
  void shutdown_input() override;
  void terminate() override;
  [[nodiscard]] bool eof() const override;
  [[nodiscard]] int read_fd() const override;
  [[nodiscard]] std::size_t outbound_bytes() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  [[nodiscard]] int port() const noexcept { return port_; }

 private:
  std::string host_;
  int port_ = 0;
  Connection connection_;
};

}  // namespace saim::net
