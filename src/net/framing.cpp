#include "net/framing.hpp"

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <mutex>

namespace saim::net {

void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void LineFramer::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::vector<std::string> LineFramer::take_lines() {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buffer_.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(buffer_.substr(start, nl - start));
    start = nl + 1;
  }
  buffer_.erase(0, start);
  return lines;
}

ReadStatus read_available(int fd, LineFramer& framer) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      framer.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return ReadStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kOk;
    // ECONNRESET and friends: the peer vanished without an orderly close.
    return ReadStatus::kError;
  }
}

WriteStatus write_some(int fd, std::string& buffer) {
  while (!buffer.empty()) {
    const ssize_t n = ::write(fd, buffer.data(), buffer.size());
    if (n > 0) {
      buffer.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return WriteStatus::kBlocked;
    }
    return WriteStatus::kBroken;  // EPIPE / ECONNRESET / hard error
  }
  return WriteStatus::kOk;
}

}  // namespace saim::net
