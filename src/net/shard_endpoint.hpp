// net::ShardEndpoint — what the sharding layer needs from a transport.
//
// ShardRouter is pure routing state and shard_driver/Supervisor are pure
// pump logic; everything they ask of a shard is line-oriented: queue a
// line, flush, read complete lines, learn about EOF, offer a pollable
// fd. This interface is that contract, so the fleet can mix transports
// freely:
//
//   * service::ProcessChild — a local `saim_serve --stream` child over
//     fork/exec pipes (respawnable by the Supervisor);
//   * net::SocketChild — a remote `saim_serve --listen` over TCP (joins
//     the same hash ring; crash-handled, but not respawnable from here).
//
// All implementations are non-blocking on both sides: send_line buffers
// in user space, pump_writes flushes what the kernel accepts, read_lines
// drains what arrived. One thread multiplexes any number of endpoints
// with poll() on read_fd().
#pragma once

#include <string>
#include <vector>

namespace saim::net {

class ShardEndpoint {
 public:
  virtual ~ShardEndpoint() = default;

  /// Queues `line` (plus the trailing newline) for the shard.
  virtual void send_line(const std::string& line) = 0;

  /// Flushes as much queued output as the transport accepts right now.
  /// Returns false once the write side is broken (shard gone).
  virtual bool pump_writes() = 0;

  /// Non-blocking read of every complete line the shard has produced.
  /// Sets eof() once the shard closed its output.
  virtual std::vector<std::string> read_lines() = 0;

  /// Graceful "no more requests": EOF on the shard's input (close the
  /// pipe / shutdown(SHUT_WR)); its output stays readable for the drain.
  virtual void shutdown_input() = 0;

  /// Hard stop: SIGKILL the child / close the socket. The endpoint then
  /// reaches eof() like any other death.
  virtual void terminate() = 0;

  /// Collects whatever the transport must not leak once the shard died
  /// (reaps a zombie child via waitpid; no-op for sockets). Idempotent.
  virtual void reap() noexcept {}

  /// True once the shard closed its output (all lines received).
  [[nodiscard]] virtual bool eof() const = 0;

  /// The fd to poll() for readability; negative when nothing to poll.
  [[nodiscard]] virtual int read_fd() const = 0;

  /// Bytes queued but not yet accepted by the transport.
  [[nodiscard]] virtual std::size_t outbound_bytes() const = 0;

  /// Human-readable endpoint identity for logs ("pid 4242", "tcp
  /// 10.0.0.7:7777").
  [[nodiscard]] virtual std::string describe() const = 0;
};

}  // namespace saim::net
