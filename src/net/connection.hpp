// net::Connection — a non-blocking, line-framed stream socket.
//
// One Connection wraps one connected stream fd (TCP socket, socketpair
// end, ...) and speaks newline-delimited lines over it with the same
// buffering discipline as the pipe transport: outbound lines accumulate
// in user space and flush as the kernel accepts them (pump_writes), so a
// single thread can multiplex many connections without ever blocking on
// a full send buffer; inbound bytes accumulate until complete lines are
// available (read_lines). A half-line at EOF is dropped.
//
// Lifecycle: eof() becomes true when the peer closed its write side (or
// the connection reset); broken() when our writes started failing. The
// owner polls fd() for readability. Move-only; the destructor closes.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/framing.hpp"

namespace saim::net {

class Connection {
 public:
  Connection() = default;  ///< empty (fd() < 0); assign from connect/accept
  /// Takes ownership of a connected stream fd and makes it non-blocking.
  explicit Connection(int fd);
  ~Connection();

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Queues `line` (plus the trailing newline) for the peer.
  void send_line(const std::string& line);
  /// Move overload: the serving path renders a line per job and hands it
  /// straight to the wire — no copy.
  void send_line(std::string&& line);

  /// Flushes as much queued output as the socket accepts right now, in
  /// writev batches (many small result lines leave in one syscall).
  /// Returns false once the connection is broken (queued bytes dropped).
  bool pump_writes();

  /// Non-blocking read: drains what the peer has sent and returns the
  /// complete lines. Sets eof() on an orderly close or a reset.
  std::vector<std::string> read_lines();

  /// Half-close: signals EOF to the peer (shutdown(SHUT_WR)) while the
  /// read side stays open — the graceful "no more requests" signal.
  void shutdown_write();

  /// Closes the fd outright (both directions).
  void close();

  [[nodiscard]] bool eof() const noexcept { return eof_; }
  [[nodiscard]] bool broken() const noexcept { return write_broken_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Queued-but-unsent bytes (each line counts its trailing newline) —
  /// the event server's backpressure signal.
  [[nodiscard]] std::size_t outbound_bytes() const noexcept {
    return outbound_bytes_;
  }
  /// Bytes buffered past the last complete inbound line — the event
  /// server's flood guard for the pre-auth handshake.
  [[nodiscard]] std::size_t inbound_partial_bytes() const noexcept {
    return framer_.partial_bytes();
  }

 private:
  int fd_ = -1;
  /// Outbound lines, newline NOT stored (pump_writes interleaves a
  /// shared one-byte "\n" iovec) — a queued line is exactly the string
  /// the caller rendered, moved, never concatenated.
  std::deque<std::string> outq_;
  std::size_t front_sent_ = 0;  ///< bytes of outq_.front()+'\n' already sent
  std::size_t outbound_bytes_ = 0;
  LineFramer framer_;
  bool write_broken_ = false;
  bool eof_ = false;
};

struct HostPort {
  std::string host;
  int port = 0;
};

/// Parses "host:port" ("127.0.0.1:7777", "[::1]:7777", "box:7777").
/// Returns std::nullopt when the port is missing or not in 0..65535.
std::optional<HostPort> parse_hostport(const std::string& spec);

/// Connects (blocking) to host:port and returns the non-blocking
/// Connection. Throws std::runtime_error naming the endpoint on failure.
Connection connect_to(const std::string& host, int port);

}  // namespace saim::net
