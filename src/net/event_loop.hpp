// net::EventLoop — the single-threaded reactor under the serving stack.
//
// One loop multiplexes any number of stream fds (accepted connections, a
// listener, a metrics socket) plus one-shot timers on ONE thread: the
// owner registers an fd with an interest mask and a callback, the loop
// polls the whole set at once, and dispatches ready fds back through
// their callbacks. On Linux the backend is epoll (level-triggered; the
// interest set lives in the kernel, so a 10k-connection sweep costs the
// ready count, not the fd count); everywhere else — and under the
// force_poll test hook, which keeps the portable path exercised on Linux
// CI too — it is plain poll(2) over the registered set.
//
// Contracts, chosen for the event-server use case:
//   * single-threaded: every method except wakeup() and stop() must be
//     called from the loop thread (or before run() starts). wakeup()
//     interrupts the current poll so the loop thread can notice
//     externally-set state; stop()+wakeup() is the cross-thread way to
//     end run().
//   * callbacks may freely add_fd/remove_fd/set_interest/add_timer,
//     including removing the fd being dispatched or any other ready fd:
//     the dispatch pass re-checks registration before every callback.
//   * timers are one-shot and fire in the loop thread after their delay
//     elapses (never early, possibly late by one poll round). Re-arm by
//     calling add_timer again from the callback. cancel_timer is lazy —
//     O(1), the heap entry is simply orphaned.
//   * error/hangup conditions are delivered as kError | kRead even when
//     read interest is off, so a paused-for-backpressure connection
//     still learns that its peer vanished instead of leaking.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

namespace saim::net {

class EventLoop {
 public:
  /// Interest / readiness bits. kError is readiness-only (never part of
  /// an interest mask); it always arrives together with kRead so a
  /// read-to-EOF path observes the failure.
  enum : std::uint32_t { kRead = 1u, kWrite = 2u, kError = 4u };

  using FdCallback = std::function<void(std::uint32_t ready)>;
  using TimerCallback = std::function<void()>;
  using Clock = std::chrono::steady_clock;

  /// force_poll skips the epoll backend even on Linux (tests pin both).
  explicit EventLoop(bool force_poll = false);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with an interest mask (kRead/kWrite, possibly 0 for
  /// a fully paused fd). Re-registering an fd replaces its entry.
  void add_fd(int fd, std::uint32_t interest, FdCallback callback);
  /// Updates the interest mask of a registered fd; no-op when unknown.
  void set_interest(int fd, std::uint32_t interest);
  /// Deregisters `fd` (the loop never closes it; the owner does).
  void remove_fd(int fd);

  /// Arms a one-shot timer; returns its id (never 0).
  std::uint64_t add_timer(std::chrono::milliseconds delay,
                          TimerCallback callback);
  /// Disarms a pending timer; false when it already fired or never was.
  bool cancel_timer(std::uint64_t id);

  /// One poll+dispatch pass: waits at most `max_wait_ms` (clamped down
  /// to the next timer deadline; -1 = only timers bound the wait), then
  /// fires due timers and dispatches every ready fd.
  void run_once(int max_wait_ms);
  /// run_once until stop(). Clears a previous stop request on entry.
  void run();
  /// Makes run() return after the current pass. Safe from any thread,
  /// but a cross-thread stop must ALSO call wakeup() or run() only
  /// notices at the end of the current (up to 1 s) poll.
  void stop();
  /// Thread-safe: interrupts the poll in progress so the loop thread
  /// re-evaluates external state immediately.
  void wakeup();

  [[nodiscard]] bool using_epoll() const noexcept { return epoll_fd_ >= 0; }
  /// Registered fds (the internal wakeup fd is not counted).
  [[nodiscard]] std::size_t fd_count() const noexcept { return fds_.size(); }
  [[nodiscard]] std::size_t pending_timers() const noexcept {
    return timers_.size();
  }

 private:
  struct FdEntry {
    std::uint32_t interest = 0;
    FdCallback callback;
  };
  struct TimerEntry {
    Clock::time_point deadline;
    std::uint64_t id = 0;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.deadline > b.deadline;
    }
  };

  /// The poll timeout honouring both the caller's cap and the timer heap.
  [[nodiscard]] int effective_timeout_ms(int max_wait_ms) const;
  void fire_due_timers();
  void drain_wakeup() const;
  void dispatch(int fd, std::uint32_t ready);

  int epoll_fd_ = -1;      ///< -1 on the poll backend
  int wake_read_fd_ = -1;  ///< eventfd (both roles) or pipe read end
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_{false};

  std::unordered_map<int, FdEntry> fds_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater>
      timer_heap_;
  std::unordered_map<std::uint64_t, TimerCallback> timers_;
  std::uint64_t next_timer_id_ = 1;

  /// Scratch for the dispatch pass (poll backend); a member so a busy
  /// loop does not reallocate it every round.
  std::vector<std::pair<int, std::uint32_t>> ready_;
};

}  // namespace saim::net
