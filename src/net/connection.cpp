#include "net/connection.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

namespace saim::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

Connection::Connection(int fd) : fd_(fd) {
  ignore_sigpipe_once();
  set_nonblocking(fd_);
  set_cloexec(fd_);
  // Result lines are small and latency matters more than throughput on a
  // serving path; losing Nagle is free on pipes-sized messages.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      outq_(std::move(other.outq_)),
      front_sent_(other.front_sent_),
      outbound_bytes_(other.outbound_bytes_),
      framer_(std::move(other.framer_)),
      write_broken_(other.write_broken_),
      eof_(other.eof_) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    outq_ = std::move(other.outq_);
    front_sent_ = other.front_sent_;
    outbound_bytes_ = other.outbound_bytes_;
    framer_ = std::move(other.framer_);
    write_broken_ = other.write_broken_;
    eof_ = other.eof_;
  }
  return *this;
}

void Connection::send_line(const std::string& line) {
  send_line(std::string(line));
}

void Connection::send_line(std::string&& line) {
  if (write_broken_ || fd_ < 0) return;
  outbound_bytes_ += line.size() + 1;  // +1: the newline sent alongside
  outq_.push_back(std::move(line));
}

bool Connection::pump_writes() {
  if (write_broken_) return false;
  if (fd_ < 0 || outq_.empty()) return fd_ >= 0;
  // One shared newline byte serves every line: the gather list
  // alternates line payloads and "\n", so a burst of result lines
  // leaves in one writev instead of one syscall (and one concatenation)
  // per line.
  static const char kNewline = '\n';
  constexpr int kMaxIov = 64;
  for (;;) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    // front_sent_ is always <= front().size(): once the newline goes out
    // too, the entry is popped. So at most the front's payload is
    // partially skipped; every entry still owes its newline.
    std::size_t skip = front_sent_;
    for (const auto& line : outq_) {
      if (iov_count + 2 > kMaxIov) break;
      if (skip < line.size()) {
        iov[iov_count].iov_base = const_cast<char*>(line.data()) + skip;
        iov[iov_count].iov_len = line.size() - skip;
        ++iov_count;
      }
      iov[iov_count].iov_base = const_cast<char*>(&kNewline);
      iov[iov_count].iov_len = 1;
      ++iov_count;
      skip = 0;
    }
    const ssize_t n = ::writev(fd_, iov, iov_count);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // blocked
      write_broken_ = true;
      outq_.clear();
      front_sent_ = 0;
      outbound_bytes_ = 0;
      return false;
    }
    outbound_bytes_ -= static_cast<std::size_t>(n);
    std::size_t accepted = static_cast<std::size_t>(n);
    while (accepted > 0) {
      const std::size_t front_total = outq_.front().size() + 1;
      const std::size_t remaining = front_total - front_sent_;
      if (accepted >= remaining) {
        accepted -= remaining;
        outq_.pop_front();
        front_sent_ = 0;
      } else {
        front_sent_ += accepted;
        accepted = 0;
      }
    }
    if (outq_.empty()) return true;
  }
}

std::vector<std::string> Connection::read_lines() {
  if (fd_ >= 0 && !eof_) {
    switch (read_available(fd_, framer_)) {
      case ReadStatus::kOk:
        break;
      case ReadStatus::kEof:
      case ReadStatus::kError:
        eof_ = true;
        break;
    }
  }
  return framer_.take_lines();
}

void Connection::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<HostPort> parse_hostport(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    return std::nullopt;
  }
  HostPort hp;
  hp.host = spec.substr(0, colon);
  // Strip IPv6 brackets: "[::1]:7777" names host "::1".
  if (hp.host.size() >= 2 && hp.host.front() == '[' &&
      hp.host.back() == ']') {
    hp.host = hp.host.substr(1, hp.host.size() - 2);
  }
  if (hp.host.empty()) return std::nullopt;
  const std::string digits = spec.substr(colon + 1);
  int port = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  hp.port = port;
  return hp;
}

Connection connect_to(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &result);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve " + host + ":" + service +
                             ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  int saved_errno = 0;
  for (addrinfo* ai = result; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    throw std::runtime_error("cannot connect to " + host + ":" + service +
                             ": " + ::strerror(saved_errno));
  }
  return Connection(fd);
}

}  // namespace saim::net
