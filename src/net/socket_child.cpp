#include "net/socket_child.hpp"

#include <utility>

#include "util/jsonl.hpp"

namespace saim::net {

SocketChild::SocketChild(std::string host, int port, std::string auth_token)
    : host_(std::move(host)),
      port_(port),
      connection_(connect_to(host_, port_)) {
  if (!auth_token.empty()) {
    // The handshake must be the first line on the wire, ahead of any job
    // the caller queues; the server reads it before creating a session.
    util::JsonWriter hello;
    hello.field("auth", auth_token);
    connection_.send_line(hello.str());
    connection_.pump_writes();
  }
}

void SocketChild::send_line(const std::string& line) {
  connection_.send_line(line);
}

bool SocketChild::pump_writes() { return connection_.pump_writes(); }

std::vector<std::string> SocketChild::read_lines() {
  return connection_.read_lines();
}

void SocketChild::shutdown_input() { connection_.shutdown_write(); }

void SocketChild::terminate() { connection_.close(); }

bool SocketChild::eof() const {
  // A closed fd means terminate() ran: nothing more will ever arrive.
  return connection_.eof() || connection_.fd() < 0;
}

int SocketChild::read_fd() const { return connection_.fd(); }

std::size_t SocketChild::outbound_bytes() const {
  return connection_.outbound_bytes();
}

std::string SocketChild::describe() const {
  return "tcp " + host_ + ":" + std::to_string(port_);
}

}  // namespace saim::net
