#include "net/socket_child.hpp"

#include <utility>

namespace saim::net {

SocketChild::SocketChild(std::string host, int port)
    : host_(std::move(host)),
      port_(port),
      connection_(connect_to(host_, port_)) {}

void SocketChild::send_line(const std::string& line) {
  connection_.send_line(line);
}

bool SocketChild::pump_writes() { return connection_.pump_writes(); }

std::vector<std::string> SocketChild::read_lines() {
  return connection_.read_lines();
}

void SocketChild::shutdown_input() { connection_.shutdown_write(); }

void SocketChild::terminate() { connection_.close(); }

bool SocketChild::eof() const {
  // A closed fd means terminate() ran: nothing more will ever arrive.
  return connection_.eof() || connection_.fd() < 0;
}

int SocketChild::read_fd() const { return connection_.fd(); }

std::size_t SocketChild::outbound_bytes() const {
  return connection_.outbound_bytes();
}

std::string SocketChild::describe() const {
  return "tcp " + host_ + ":" + std::to_string(port_);
}

}  // namespace saim::net
