// net::Listener — a non-blocking TCP accept socket.
//
// Binds host:port (port 0 picks an ephemeral port; port() reports the
// actual one, and tools write it to --port-file so scripts and tests can
// rendezvous race-free), listens, and hands out accepted fds
// non-blockingly. The owner polls fd() for readability to learn when
// accept_fd() will succeed.
#pragma once

#include <optional>
#include <string>

namespace saim::net {

class Listener {
 public:
  /// Binds and listens. Throws std::runtime_error naming the endpoint on
  /// resolve/bind/listen failure (port already taken, bad host, ...).
  Listener(const std::string& host, int port);
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accepts one pending connection; std::nullopt when none is waiting.
  /// The returned fd is connected but otherwise untouched (blocking) —
  /// wrap it in net::Connection for non-blocking line IO, or keep it
  /// blocking for a dedicated session thread.
  std::optional<int> accept_fd();

  void close();

  /// The locally bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] int port() const noexcept { return port_; }
  /// The fd to poll() for readability (a pending connection).
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace saim::net
