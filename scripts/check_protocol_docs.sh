#!/usr/bin/env bash
# Docs-consistency gate for the serving protocol.
#
# docs/PROTOCOL.md promises to document every JSONL field the serving
# layer speaks. This script extracts the ground truth from the sources —
#   * response-side: every .field("...")/.raw_field("...") name in the
#     JSONL emitters (core/report.cpp's result_to_jsonl, the stream
#     session's result/control/barrier lines, the shard router's
#     rewritten/error lines, the supervisor's fleet control lines, the
#     socket dialer's auth handshake, and whatever the tools emit
#     themselves),
#   * request-side: the kKnownKeys job whitelist and the kControlKeys
#     control-line whitelist in src/service/job_parser.cpp —
# and fails when any name is missing from the doc (backtick-quoted, so a
# prose mention by accident does not count). Run from anywhere; CI runs it
# on every build.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=docs/PROTOCOL.md
if [[ ! -f "$doc" ]]; then
  echo "FAIL: $doc does not exist"
  exit 1
fi

emitted=$(grep -hoE '\.(raw_)?field\("[a-z_]+"' \
            src/core/report.cpp tools/saim_serve.cpp tools/saim_shard.cpp \
            src/service/shard_router.cpp src/service/stream_session.cpp \
            src/service/supervisor.cpp src/service/service_stats.cpp \
            src/service/event_server.cpp src/net/socket_child.cpp |
          grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)
accepted=$(awk '/kKnownKeys = \{/,/\};/' src/service/job_parser.cpp |
           grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)
control=$(awk '/kControlKeys = \{/,/\};/' src/service/job_parser.cpp |
          grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)

if [[ -z "$emitted" || -z "$accepted" || -z "$control" ]]; then
  echo "FAIL: could not extract field names (did the emitters move?)"
  exit 1
fi

fail=0
# shellcheck disable=SC2086  # word splitting intended: one field name per word
for f in $emitted $accepted $control; do
  if ! grep -q "\`$f\`" "$doc"; then
    echo "PROTOCOL drift: \"$f\" is spoken by the serving layer but not" \
         "documented in $doc"
    fail=1
  fi
done

if [[ $fail -eq 0 ]]; then
  count=$(printf '%s\n%s\n%s\n' "$emitted" "$accepted" "$control" |
          sort -u | wc -l)
  echo "protocol docs OK: all $count field names documented in $doc"
fi
exit "$fail"
