#!/usr/bin/env bash
# Repo lint gate: clang-tidy over every first-party translation unit plus
# shellcheck over every script. This is THE entry point — CI's lint job
# runs `scripts/lint.sh --strict`, and a clean local run means a clean CI
# run (tool versions aside).
#
# Degrades gracefully: a missing tool is a SKIP note locally (the repo
# builds with plain gcc; clang-tidy/shellcheck are not required for
# development) but a FAILURE under --strict, so CI can never silently
# lose a linter.
#
# Usage: scripts/lint.sh [--strict] [--build-dir DIR]
#   --strict      missing tools and clang-tidy warnings are errors (CI)
#   --build-dir   build tree holding compile_commands.json (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

strict=0
build_dir=build
while [[ $# -gt 0 ]]; do
  case "$1" in
    --strict) strict=1 ;;
    --build-dir)
      [[ $# -ge 2 ]] || { echo "lint: --build-dir needs an argument"; exit 2; }
      build_dir=$2
      shift
      ;;
    *)
      echo "usage: scripts/lint.sh [--strict] [--build-dir DIR]"
      exit 2
      ;;
  esac
  shift
done

status=0

skip_or_fail() {
  if [[ $strict -eq 1 ]]; then
    echo "lint: FAIL: $1 (required under --strict)"
    status=1
  else
    echo "lint: SKIP: $1"
  fi
}

# ------------------------------------------------------------- clang-tidy
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "lint: generating $build_dir/compile_commands.json"
    cmake -B "$build_dir" -S . >/dev/null
  fi
  # First-party translation units only; the .clang-tidy config scopes
  # header diagnostics to the repo via HeaderFilterRegex.
  tus=()
  while IFS= read -r tu; do
    tus+=("$tu")
  done < <(find src tools bench -name '*.cpp' | sort)
  tidy_args=(-p "$build_dir" --quiet)
  if [[ $strict -eq 1 ]]; then
    tidy_args+=(--warnings-as-errors='*')
  fi
  echo "lint: clang-tidy over ${#tus[@]} translation units"
  if ! clang-tidy "${tidy_args[@]}" "${tus[@]}"; then
    echo "lint: FAIL: clang-tidy reported errors"
    status=1
  fi
else
  skip_or_fail "clang-tidy not installed"
fi

# ------------------------------------------------------------- shellcheck
if command -v shellcheck >/dev/null 2>&1; then
  scripts=()
  while IFS= read -r sh; do
    scripts+=("$sh")
  done < <(find scripts -name '*.sh' | sort)
  echo "lint: shellcheck over ${#scripts[@]} scripts"
  if ! shellcheck "${scripts[@]}"; then
    echo "lint: FAIL: shellcheck reported issues"
    status=1
  fi
else
  skip_or_fail "shellcheck not installed"
fi

if [[ $status -eq 0 ]]; then
  echo "lint: OK"
fi
exit $status
