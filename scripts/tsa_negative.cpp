// Negative test for the thread-safety build: this file must FAIL to
// compile under `clang++ -Wthread-safety -Werror=thread-safety`.
//
// CI's thread-safety job compiles it with exactly those flags and asserts
// the compiler REJECTS it — proving the gate is live, not just that the
// annotated tree happens to be quiet (a silently broken -Werror wiring
// would pass the positive build and fail here). Not part of any CMake
// target: the build globs tools/ and src/, never scripts/.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct Account {
  saim::util::Mutex mutex;
  int balance SAIM_GUARDED_BY(mutex) = 0;
};

}  // namespace

int main() {
  Account account;
  account.balance = 42;  // unguarded write to a guarded member
  return account.balance;  // unguarded read
}
