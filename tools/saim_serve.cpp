// saim_serve — JSONL front-end to the asynchronous solve service.
//
// Reads one job per line, runs every job through one SolveService
// (priority queue, worker pool, content-keyed result cache, duplicate
// coalescing, same-instance batching, warm-start pool), and emits one
// JSON result line per job. The full wire protocol — every request and
// response field, control lines, error lines, exit codes, worked
// examples — is specified in docs/PROTOCOL.md; keep that file in
// lockstep with this one (CI greps it for every emitted field name).
// The protocol loop itself lives in service/stream_session.{hpp,cpp}
// (shared between transports); the job-line parser in
// service/job_parser.{hpp,cpp} (shared with tools/saim_shard).
//
// Transports:
//   * default — one session over --input/--output (stdin/stdout or
//     files): the classic filter invocation.
//   * --listen host:port — serve the same protocol over TCP: every
//     accepted connection gets its own session thread, all sharing ONE
//     SolveService (so concurrent connections share the cache, batcher
//     and warm-start pool). Port 0 picks an ephemeral port; --port-file
//     writes the bound port for race-free rendezvous. This is how a
//     remote shard joins a `saim_shard --connect host:port` fleet —
//     start it with --stream, which the sharding router requires. With
//     --auth-token the first line of every connection must be the
//     {"auth":"<token>"} handshake or the connection is closed unserved.
//
// Output modes (per session): default collects results until EOF and
// prints them in input order; --stream emits each result the moment it
// completes, tagged with a per-session "seq" in completion order.
//
// Control lines (docs/PROTOCOL.md): ping, drain, shutdown (drain +
// {"bye":true}; also stops a --listen server), stats (one
// {"id":...,"service":{...}} snapshot: counters, cache/warm-pool state,
// per-stage latency quantiles), export_warm/import_warm (warm-pool
// handoff between processes). --metrics host:port serves the same
// service state as a Prometheus text-format scrape; jobs with
// "trace":true get a per-stage "timing" object on their result line.
//
// Example:
//   printf '%s\n' '{"id":"a","gen":"qkp:60-25-1","iterations":100}' \
//     | saim_serve --workers 4 --stream
//
// Exit status: 0 when every line produced a result, 1 when any line was
// rejected (malformed JSON, unknown backend, unreadable instance); bad
// lines emit {"id":...,"error":...} and do not sink the rest of the
// stream.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/listener.hpp"
#include "obs/metrics_server.hpp"
#include "service/service_stats.hpp"
#include "service/solve_service.hpp"
#include "service/stream_session.hpp"
#include "util/cli.hpp"
#include "util/jsonl.hpp"
#include "util/logging.hpp"

namespace {

using namespace saim;

/// Reads the connection's first line and checks it against the shared
/// secret: exactly {"auth":"<token>"}. Anything else — wrong token, no
/// auth field, malformed JSON, or the peer closing first — fails closed.
bool check_auth(int fd, const std::string& token) {
  std::string line;
  char c = 0;
  while (line.size() < 4096) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return false;  // closed/reset before the handshake
    if (c == '\n') break;
    line.push_back(c);
  }
  try {
    const util::JsonValue parsed = util::parse_json(line);
    if (!parsed.is_object()) return false;
    const auto* auth = parsed.find("auth");
    return auth != nullptr && auth->as_string() == token;
  } catch (const std::exception&) {
    return false;
  }
}

/// Accept loop for --listen: one session thread per connection, all over
/// `svc`. Returns true once a session requested shutdown.
int serve_listen(service::SolveService& svc,
                 const service::SessionOptions& session_options,
                 const std::string& listen_spec,
                 const std::string& port_file,
                 const std::string& auth_token) {
  const auto hostport = net::parse_hostport(listen_spec);
  if (!hostport) {
    util::log_error() << "saim_serve: bad --listen '" << listen_spec
                      << "' (want host:port)";
    return 2;
  }
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(hostport->host,
                                               hostport->port);
  } catch (const std::exception& e) {
    util::log_error() << "saim_serve: " << e.what();
    return 2;
  }
  if (!port_file.empty()) {
    // The port file is the rendezvous for port 0 (ephemeral): written
    // atomically enough for a single int — readers poll until nonempty.
    std::ofstream pf(port_file);
    if (!pf) {
      util::log_error() << "saim_serve: cannot write '" << port_file << "'";
      return 2;
    }
    pf << listener->port() << "\n";
  }
  util::log_info() << "saim_serve: listening on " << hostport->host << ":"
                   << listener->port();

  std::atomic<bool> stop{false};
  std::atomic<bool> any_error{false};
  // The server owns every client fd (sessions borrow them): fds stay
  // valid until after their thread joins, so the shutdown() below can
  // never race a close-and-reuse.
  struct ClientSession {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };
  std::vector<std::unique_ptr<ClientSession>> sessions;
  const auto reap_finished = [&sessions] {
    std::erase_if(sessions, [](const std::unique_ptr<ClientSession>& s) {
      if (!s->done.load()) return false;
      s->thread.join();
      ::close(s->fd);
      return true;
    });
  };
  while (!stop.load()) {
    pollfd pfd{listener->fd(), POLLIN, 0};
    ::poll(&pfd, 1, 100);
    reap_finished();  // a long-lived server must not hoard dead threads
    const auto fd = listener->accept_fd();
    if (!fd) continue;
    auto session = std::make_unique<ClientSession>();
    session->fd = *fd;
    auto* raw = session.get();
    session->thread = std::thread([&, raw] {
      if (!auth_token.empty() && !check_auth(raw->fd, auth_token)) {
        // Closed before any job line is read: an unauthenticated peer
        // never reaches the parser, the service, or the filesystem.
        util::log_warn()
            << "saim_serve: closed unauthenticated connection";
        ::shutdown(raw->fd, SHUT_RDWR);
        raw->done.store(true);
        return;
      }
      service::FdSessionIO io(raw->fd, /*owns_fd=*/false);
      const auto result =
          service::run_stream_session(svc, io, session_options);
      if (result.any_error) any_error.store(true);
      if (result.shutdown) stop.store(true);
      raw->done.store(true);
    });
    sessions.push_back(std::move(session));
  }
  listener->close();
  // Unblock sessions parked in read (an idle client must not veto the
  // shutdown): half-close their READ side only — accepted jobs still
  // drain out over the intact write side before each session exits.
  for (auto& session : sessions) {
    if (!session->done.load()) ::shutdown(session->fd, SHUT_RD);
  }
  // Healthy clients get a grace period to receive their tails; then a
  // full shutdown unwedges any session blocked WRITING to a client
  // that stopped reading (its remaining output is forfeit — that
  // client was not consuming it anyway).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  const auto all_done = [&] {
    for (const auto& session : sessions) {
      if (!session->done.load()) return false;
    }
    return true;
  };
  while (!all_done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& session : sessions) {
    if (!session->done.load()) ::shutdown(session->fd, SHUT_RDWR);
  }
  for (auto& session : sessions) {
    session->thread.join();
    ::close(session->fd);
  }
  return any_error.load() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("saim_serve",
                       "serve a JSONL stream of SAIM solve jobs");
  args.add_flag("input", "job stream path, - for stdin", "-")
      .add_flag("output", "result stream path, - for stdout", "-")
      .add_flag("listen",
                "serve the protocol on host:port (TCP) instead of "
                "input/output; port 0 picks an ephemeral port",
                "")
      .add_flag("port-file",
                "write the bound --listen port to this file (rendezvous "
                "for port 0)",
                "")
      .add_flag("auth-token",
                "shared secret for --listen: clients must open with "
                "{\"auth\":\"<token>\"} or the connection is closed",
                "")
      .add_flag("workers", "solver worker threads (0 = hardware)", "0")
      .add_flag("cache", "result-cache capacity (0 disables)", "256")
      .add_flag("max-batch",
                "same-instance jobs executed per model build (1 disables)",
                "8")
      .add_bool("warm-start",
                "seed jobs from the per-problem pool by default "
                "(per-job \"warm_start\" field overrides)")
      .add_bool("stream",
                "emit result lines as jobs finish (tagged with \"seq\") "
                "instead of in input order after EOF")
      .add_flag("metrics",
                "serve Prometheus text-format metrics on host:port "
                "(port 0 picks an ephemeral port)",
                "")
      .add_flag("metrics-port-file",
                "write the bound --metrics port to this file (rendezvous "
                "for port 0)",
                "")
      .add_flag("log-level", "stderr log threshold: debug, info, warn or "
                "error", "info")
      .add_bool("stats", "append a final summary line to stderr");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  const auto log_level = util::parse_log_level(args.get("log-level"));
  if (!log_level) {
    std::fprintf(stderr,
                 "saim_serve: bad --log-level '%s' (want debug, info, warn "
                 "or error)\n",
                 args.get("log-level").c_str());
    return 2;
  }
  util::set_log_level(*log_level);

  service::ServiceOptions service_options;
  // Negative values would wrap to huge size_t counts; clamp to the
  // "pick for me" / "disabled" zero instead.
  service_options.workers =
      static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("workers")));
  service_options.cache_capacity =
      static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("cache")));
  service_options.max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.get_int("max-batch")));
  service::SolveService svc(service_options);

  // --metrics: a scrape thread rendering straight off the service — its
  // stats struct and metrics registry are atomic, so the producer is safe
  // to run concurrently with every session thread.
  std::unique_ptr<obs::MetricsServer> metrics_server;
  const std::string metrics_spec = args.get("metrics");
  if (!metrics_spec.empty()) {
    const auto hostport = net::parse_hostport(metrics_spec);
    if (!hostport) {
      util::log_error() << "saim_serve: bad --metrics '" << metrics_spec
                        << "' (want host:port)";
      return 2;
    }
    try {
      metrics_server = std::make_unique<obs::MetricsServer>(
          hostport->host, hostport->port,
          [&svc] { return service::service_metrics_prometheus(svc); });
    } catch (const std::exception& e) {
      util::log_error() << "saim_serve: " << e.what();
      return 2;
    }
    const std::string metrics_port_file = args.get("metrics-port-file");
    if (!metrics_port_file.empty()) {
      std::ofstream pf(metrics_port_file);
      if (!pf) {
        util::log_error() << "saim_serve: cannot write '" << metrics_port_file
                          << "'";
        return 2;
      }
      pf << metrics_server->port() << "\n";
    }
    util::log_info() << "saim_serve: metrics on " << hostport->host << ":"
                     << metrics_server->port();
  }

  service::SessionOptions session_options;
  session_options.stream = args.get_bool("stream");
  session_options.warm_default = args.get_bool("warm-start");

  int exit_code = 0;
  if (!args.get("listen").empty()) {
    exit_code = serve_listen(svc, session_options, args.get("listen"),
                             args.get("port-file"), args.get("auth-token"));
  } else {
    std::ifstream file_in;
    const std::string input = args.get("input");
    if (input != "-") {
      file_in.open(input);
      if (!file_in) {
        util::log_error() << "saim_serve: cannot open '" << input << "'";
        return 2;
      }
    }
    std::istream& in = input == "-" ? std::cin : file_in;

    std::ofstream file_out;
    const std::string output = args.get("output");
    if (output != "-") {
      file_out.open(output);
      if (!file_out) {
        util::log_error() << "saim_serve: cannot open '" << output << "'";
        return 2;
      }
    }
    std::ostream& out = output == "-" ? std::cout : file_out;

    service::IostreamSessionIO io(in, out);
    const auto result = service::run_stream_session(svc, io,
                                                    session_options);
    out.flush();
    exit_code = result.any_error ? 1 : 0;
  }

  if (args.get_bool("stats")) {
    const auto s = svc.stats();
    std::fprintf(stderr,
                 "saim_serve: %llu submitted, %llu executed, %llu coalesced, "
                 "%llu batched in %llu batches, %llu warm-seeded, "
                 "cache hit-rate %.2f\n",
                 static_cast<unsigned long long>(s.submitted),
                 static_cast<unsigned long long>(s.executed),
                 static_cast<unsigned long long>(s.coalesced),
                 static_cast<unsigned long long>(s.batched_jobs),
                 static_cast<unsigned long long>(s.batches),
                 static_cast<unsigned long long>(s.warm_seeded),
                 s.cache.hit_rate());
  }
  return exit_code;
}
