// saim_serve — JSONL front-end to the asynchronous solve service.
//
// Reads one job per line, runs every job through one SolveService
// (priority queue, worker pool, content-keyed result cache, duplicate
// coalescing, same-instance batching, warm-start pool), and emits one
// JSON result line per job. The full wire protocol — every request and
// response field, control lines, error lines, exit codes, worked
// examples — is specified in docs/PROTOCOL.md; keep that file in
// lockstep with this one (CI greps it for every emitted field name).
// The protocol loop itself lives in service/stream_session.{hpp,cpp}
// (shared between transports); the job-line parser in
// service/job_parser.{hpp,cpp} (shared with tools/saim_shard).
//
// Transports:
//   * default — one session over --input/--output (stdin/stdout or
//     files): the classic filter invocation.
//   * --listen host:port — serve the same protocol over TCP. The
//     default server is the event-driven front door
//     (service/EventServer: one epoll/poll reactor thread multiplexing
//     every connection, per-connection write backpressure, a
//     --max-connections fail-fast cap, --auth-timeout-ms /
//     --idle-timeout-ms deadlines); --threaded keeps the previous
//     thread-per-connection server for one release. Either way every
//     connection speaks its own session over ONE shared SolveService
//     (cache, batcher and warm-start pool are shared), and result
//     lines are byte-identical between the two servers. Port 0 picks
//     an ephemeral port; --port-file writes the bound port for
//     race-free rendezvous. This is how a remote shard joins a
//     `saim_shard --connect host:port` fleet — start it with --stream,
//     which the sharding router requires. With --auth-token the first
//     line of every connection must be the {"auth":"<token>"}
//     handshake or the connection is closed unserved (fail-closed).
//
// Output modes (per session): default collects results until EOF and
// prints them in input order; --stream emits each result the moment it
// completes, tagged with a per-session "seq" in completion order.
//
// Control lines (docs/PROTOCOL.md): ping, drain, shutdown (drain +
// {"bye":true}; also stops a --listen server), stats (one
// {"id":...,"service":{...}} snapshot: counters, cache/warm-pool state,
// per-stage latency quantiles), export_warm/import_warm (warm-pool
// handoff between processes). --metrics host:port serves the same
// service state as a Prometheus text-format scrape; jobs with
// "trace":true get a per-stage "timing" object on their result line.
//
// Example:
//   printf '%s\n' '{"id":"a","gen":"qkp:60-25-1","iterations":100}' \
//     | saim_serve --workers 4 --stream
//
// Exit status: 0 when every line produced a result, 1 when any line was
// rejected (malformed JSON, unknown backend, unreadable instance); bad
// lines emit {"id":...,"error":...} and do not sink the rest of the
// stream.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/listener.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_server.hpp"
#include "service/event_server.hpp"
#include "service/service_stats.hpp"
#include "service/solve_service.hpp"
#include "service/stream_session.hpp"
#include "util/cli.hpp"
#include "util/jsonl.hpp"
#include "util/logging.hpp"

namespace {

using namespace saim;

/// --listen settings shared by both server flavours.
struct ListenConfig {
  std::string spec;
  std::string port_file;
  std::string auth_token;
  std::size_t max_connections = 1024;
  int auth_timeout_ms = 10'000;
  int idle_timeout_ms = 0;
};

std::optional<net::HostPort> parse_listen_spec(const std::string& spec) {
  const auto hostport = net::parse_hostport(spec);
  if (!hostport) {
    util::log_error() << "saim_serve: bad --listen '" << spec
                      << "' (want host:port)";
  }
  return hostport;
}

/// The port file is the rendezvous for port 0 (ephemeral): written
/// atomically enough for a single int — readers poll until nonempty.
bool write_port_file(const std::string& path, int port) {
  if (path.empty()) return true;
  std::ofstream pf(path);
  if (!pf) {
    util::log_error() << "saim_serve: cannot write '" << path << "'";
    return false;
  }
  pf << port << "\n";
  return true;
}

enum class AuthResult { kOk, kRejected, kTimedOut };

/// Reads the connection's first line and checks it against the shared
/// secret: exactly {"auth":"<token>"}. Anything else — wrong token, no
/// auth field, malformed JSON, the peer closing first, or (with
/// timeout_ms > 0) the deadline passing before a full line arrives —
/// fails closed.
AuthResult check_auth(int fd, const std::string& token, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string line;
  char c = 0;
  while (line.size() < 4096) {
    if (timeout_ms > 0) {
      const long long remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) return AuthResult::kTimedOut;
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(
          &pfd, 1, static_cast<int>(std::min<long long>(remaining, 1000)));
      if (rc < 0 && errno != EINTR) return AuthResult::kRejected;
      if (rc <= 0) continue;  // tick or EINTR: recheck the deadline
    }
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return AuthResult::kRejected;  // closed before handshake
    if (c == '\n') break;
    line.push_back(c);
  }
  try {
    const util::JsonValue parsed = util::parse_json(line);
    if (!parsed.is_object()) return AuthResult::kRejected;
    const auto* auth = parsed.find("auth");
    return auth != nullptr && auth->as_string() == token
               ? AuthResult::kOk
               : AuthResult::kRejected;
  } catch (const std::exception&) {
    return AuthResult::kRejected;
  }
}

/// The default --listen server: the event-driven front door
/// (service/EventServer — see its header for the backpressure, cap and
/// deadline semantics).
int serve_listen_event(service::SolveService& svc,
                       const service::SessionOptions& session_options,
                       const ListenConfig& config) {
  const auto hostport = parse_listen_spec(config.spec);
  if (!hostport) return 2;
  service::EventServerOptions options;
  options.host = hostport->host;
  options.port = hostport->port;
  options.auth_token = config.auth_token;
  options.session = session_options;
  options.max_connections = config.max_connections;
  options.auth_timeout_ms = config.auth_timeout_ms;
  options.idle_timeout_ms = config.idle_timeout_ms;
  std::unique_ptr<service::EventServer> server;
  try {
    server = std::make_unique<service::EventServer>(svc, options);
  } catch (const std::exception& e) {
    util::log_error() << "saim_serve: " << e.what();
    return 2;
  }
  if (!write_port_file(config.port_file, server->port())) return 2;
  util::log_info() << "saim_serve: listening on " << hostport->host << ":"
                   << server->port() << " (event loop)";
  return server->run();
}

/// The legacy --threaded server: one session thread per connection.
/// Kept for one release as the escape hatch while the event loop is the
/// default; shares the connection cap, auth deadline and metric names
/// with it so the two are operationally interchangeable.
int serve_listen_threaded(service::SolveService& svc,
                          const service::SessionOptions& session_options,
                          const ListenConfig& config) {
  const auto hostport = parse_listen_spec(config.spec);
  if (!hostport) return 2;
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(hostport->host,
                                               hostport->port);
  } catch (const std::exception& e) {
    util::log_error() << "saim_serve: " << e.what();
    return 2;
  }
  if (!write_port_file(config.port_file, listener->port())) return 2;
  util::log_info() << "saim_serve: listening on " << hostport->host << ":"
                   << listener->port() << " (threaded)";

  // Same metric names as the event server (docs/PROTOCOL.md): either
  // front door feeds the same dashboards and stats "connections" object.
  obs::Counter& accepted_metric =
      svc.metrics().counter("saim_connections_accepted_total",
                            "connections accepted by the listen server");
  obs::Counter& rejected_metric = svc.metrics().counter(
      "saim_connections_rejected_total",
      "connections closed unserved: over the connection cap");
  obs::Counter& timed_out_metric = svc.metrics().counter(
      "saim_sessions_timed_out_total",
      "connections dropped by the auth or idle deadline");
  obs::Gauge& open_metric = svc.metrics().gauge(
      "saim_connections_open", "connections open right now");

  std::atomic<bool> stop{false};
  std::atomic<bool> any_error{false};
  // The server owns every client fd (sessions borrow them): fds stay
  // valid until after their thread joins, so the shutdown() below can
  // never race a close-and-reuse.
  struct ClientSession {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };
  std::vector<std::unique_ptr<ClientSession>> sessions;
  const auto reap_finished = [&sessions] {
    std::erase_if(sessions, [](const std::unique_ptr<ClientSession>& s) {
      if (!s->done.load()) return false;
      s->thread.join();
      ::close(s->fd);
      return true;
    });
  };
  while (!stop.load()) {
    pollfd pfd{listener->fd(), POLLIN, 0};
    ::poll(&pfd, 1, 100);
    // Reap on EVERY 100 ms tick, accepts or not: a long-lived server
    // must not hoard dead threads or their client fds, even when no new
    // client ever connects again.
    reap_finished();
    open_metric.set(static_cast<double>(sessions.size()));
    const auto fd = listener->accept_fd();
    if (!fd) continue;
    if (sessions.size() >= config.max_connections) {
      // Fail fast, same as the event server: close unserved, count it.
      ::close(*fd);
      rejected_metric.add();
      util::log_warn() << "saim_serve: rejected connection (cap "
                       << config.max_connections << " reached)";
      continue;
    }
    accepted_metric.add();
    auto session = std::make_unique<ClientSession>();
    session->fd = *fd;
    auto* raw = session.get();
    session->thread = std::thread([&, raw] {
      if (!config.auth_token.empty()) {
        const AuthResult auth =
            check_auth(raw->fd, config.auth_token, config.auth_timeout_ms);
        if (auth != AuthResult::kOk) {
          // Closed before any job line is read: an unauthenticated peer
          // never reaches the parser, the service, or the filesystem.
          if (auth == AuthResult::kTimedOut) {
            timed_out_metric.add();
            util::log_warn() << "saim_serve: dropped connection (no auth "
                                "within "
                             << config.auth_timeout_ms << " ms)";
          } else {
            util::log_warn()
                << "saim_serve: closed unauthenticated connection";
          }
          ::shutdown(raw->fd, SHUT_RDWR);
          raw->done.store(true);
          return;
        }
      }
      service::FdSessionIO io(raw->fd, /*owns_fd=*/false);
      const auto result =
          service::run_stream_session(svc, io, session_options);
      if (result.any_error) any_error.store(true);
      if (result.shutdown) stop.store(true);
      raw->done.store(true);
    });
    sessions.push_back(std::move(session));
    open_metric.set(static_cast<double>(sessions.size()));
  }
  listener->close();
  // Unblock sessions parked in read (an idle client must not veto the
  // shutdown): half-close their READ side only — accepted jobs still
  // drain out over the intact write side before each session exits.
  for (auto& session : sessions) {
    if (!session->done.load()) ::shutdown(session->fd, SHUT_RD);
  }
  // Healthy clients get a grace period to receive their tails; then a
  // full shutdown unwedges any session blocked WRITING to a client
  // that stopped reading (its remaining output is forfeit — that
  // client was not consuming it anyway).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  const auto all_done = [&] {
    for (const auto& session : sessions) {
      if (!session->done.load()) return false;
    }
    return true;
  };
  while (!all_done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& session : sessions) {
    if (!session->done.load()) ::shutdown(session->fd, SHUT_RDWR);
  }
  for (auto& session : sessions) {
    session->thread.join();
    ::close(session->fd);
  }
  open_metric.set(0.0);
  return any_error.load() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("saim_serve",
                       "serve a JSONL stream of SAIM solve jobs");
  args.add_flag("input", "job stream path, - for stdin", "-")
      .add_flag("output", "result stream path, - for stdout", "-")
      .add_flag("listen",
                "serve the protocol on host:port (TCP) instead of "
                "input/output; port 0 picks an ephemeral port",
                "")
      .add_flag("port-file",
                "write the bound --listen port to this file (rendezvous "
                "for port 0)",
                "")
      .add_flag("auth-token",
                "shared secret for --listen: clients must open with "
                "{\"auth\":\"<token>\"} or the connection is closed",
                "")
      .add_bool("threaded",
                "serve --listen with the legacy thread-per-connection "
                "server instead of the event loop (kept one release)")
      .add_flag("max-connections",
                "open-connection cap for --listen; further accepts are "
                "closed immediately",
                "1024")
      .add_flag("auth-timeout-ms",
                "drop a --listen connection that has not completed the "
                "--auth-token handshake within this deadline (0 disables)",
                "10000")
      .add_flag("idle-timeout-ms",
                "drop an event-loop --listen connection idle this long "
                "with nothing in flight (0 disables)",
                "0")
      .add_flag("workers", "solver worker threads (0 = hardware)", "0")
      .add_flag("cache", "result-cache capacity (0 disables)", "256")
      .add_flag("max-batch",
                "same-instance jobs executed per model build (1 disables)",
                "8")
      .add_bool("warm-start",
                "seed jobs from the per-problem pool by default "
                "(per-job \"warm_start\" field overrides)")
      .add_bool("stream",
                "emit result lines as jobs finish (tagged with \"seq\") "
                "instead of in input order after EOF")
      .add_flag("metrics",
                "serve Prometheus text-format metrics on host:port "
                "(port 0 picks an ephemeral port)",
                "")
      .add_flag("metrics-port-file",
                "write the bound --metrics port to this file (rendezvous "
                "for port 0)",
                "")
      .add_flag("log-level", "stderr log threshold: debug, info, warn or "
                "error", "info")
      .add_bool("stats", "append a final summary line to stderr");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  const auto log_level = util::parse_log_level(args.get("log-level"));
  if (!log_level) {
    std::fprintf(stderr,
                 "saim_serve: bad --log-level '%s' (want debug, info, warn "
                 "or error)\n",
                 args.get("log-level").c_str());
    return 2;
  }
  util::set_log_level(*log_level);

  service::ServiceOptions service_options;
  // Negative values would wrap to huge size_t counts; clamp to the
  // "pick for me" / "disabled" zero instead.
  service_options.workers =
      static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("workers")));
  service_options.cache_capacity =
      static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("cache")));
  service_options.max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.get_int("max-batch")));
  service::SolveService svc(service_options);

  // --metrics: a scrape thread rendering straight off the service — its
  // stats struct and metrics registry are atomic, so the producer is safe
  // to run concurrently with every session thread.
  std::unique_ptr<obs::MetricsServer> metrics_server;
  const std::string metrics_spec = args.get("metrics");
  if (!metrics_spec.empty()) {
    const auto hostport = net::parse_hostport(metrics_spec);
    if (!hostport) {
      util::log_error() << "saim_serve: bad --metrics '" << metrics_spec
                        << "' (want host:port)";
      return 2;
    }
    try {
      metrics_server = std::make_unique<obs::MetricsServer>(
          hostport->host, hostport->port,
          [&svc] { return service::service_metrics_prometheus(svc); });
    } catch (const std::exception& e) {
      util::log_error() << "saim_serve: " << e.what();
      return 2;
    }
    const std::string metrics_port_file = args.get("metrics-port-file");
    if (!metrics_port_file.empty()) {
      std::ofstream pf(metrics_port_file);
      if (!pf) {
        util::log_error() << "saim_serve: cannot write '" << metrics_port_file
                          << "'";
        return 2;
      }
      pf << metrics_server->port() << "\n";
    }
    util::log_info() << "saim_serve: metrics on " << hostport->host << ":"
                     << metrics_server->port();
  }

  service::SessionOptions session_options;
  session_options.stream = args.get_bool("stream");
  session_options.warm_default = args.get_bool("warm-start");

  int exit_code = 0;
  if (!args.get("listen").empty()) {
    ListenConfig listen_config;
    listen_config.spec = args.get("listen");
    listen_config.port_file = args.get("port-file");
    listen_config.auth_token = args.get("auth-token");
    listen_config.max_connections = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.get_int("max-connections")));
    listen_config.auth_timeout_ms = static_cast<int>(
        std::max<std::int64_t>(0, args.get_int("auth-timeout-ms")));
    listen_config.idle_timeout_ms = static_cast<int>(
        std::max<std::int64_t>(0, args.get_int("idle-timeout-ms")));
    exit_code =
        args.get_bool("threaded")
            ? serve_listen_threaded(svc, session_options, listen_config)
            : serve_listen_event(svc, session_options, listen_config);
  } else {
    std::ifstream file_in;
    const std::string input = args.get("input");
    if (input != "-") {
      file_in.open(input);
      if (!file_in) {
        util::log_error() << "saim_serve: cannot open '" << input << "'";
        return 2;
      }
    }
    std::istream& in = input == "-" ? std::cin : file_in;

    std::ofstream file_out;
    const std::string output = args.get("output");
    if (output != "-") {
      file_out.open(output);
      if (!file_out) {
        util::log_error() << "saim_serve: cannot open '" << output << "'";
        return 2;
      }
    }
    std::ostream& out = output == "-" ? std::cout : file_out;

    service::IostreamSessionIO io(in, out);
    const auto result = service::run_stream_session(svc, io,
                                                    session_options);
    out.flush();
    exit_code = result.any_error ? 1 : 0;
  }

  if (args.get_bool("stats")) {
    const auto s = svc.stats();
    std::fprintf(stderr,
                 "saim_serve: %llu submitted, %llu executed, %llu coalesced, "
                 "%llu batched in %llu batches, %llu warm-seeded, "
                 "cache hit-rate %.2f\n",
                 static_cast<unsigned long long>(s.submitted),
                 static_cast<unsigned long long>(s.executed),
                 static_cast<unsigned long long>(s.coalesced),
                 static_cast<unsigned long long>(s.batched_jobs),
                 static_cast<unsigned long long>(s.batches),
                 static_cast<unsigned long long>(s.warm_seeded),
                 s.cache.hit_rate());
  }
  return exit_code;
}
