// saim_serve — JSONL front-end to the asynchronous solve service.
//
// Reads one job per line from a file or stdin, runs every job through one
// SolveService (priority queue, worker pool, content-keyed result cache,
// duplicate coalescing, same-instance batching, warm-start pool), and
// emits one JSON result line per job. The full wire protocol — every
// request and response field, error lines, exit codes, worked examples —
// is specified in docs/PROTOCOL.md; keep that file in lockstep with this
// one (CI greps it for every emitted field name).
//
// Two output modes:
//   * default — the whole input is read and submitted up front (so the
//     queue, priorities, the coalescer and the batcher see every in-flight
//     job), then results print after EOF in input order. A coprocess must
//     close its write end before reading results.
//   * --stream — result lines are emitted as jobs finish, each tagged
//     with a "seq" number in completion order; long-running tails no
//     longer dam the output. Line order is NOT input order.
//
// Job line schema (all fields except the instance source are optional):
//   {"id": "j1",                     // echo-through label
//    "type": "qkp" | "mkp",          // inferred from gen/format if absent
//    "path": "jeu_100_25_1.txt",     // instance file ...
//    "format": "billionnet" | "orlib" | "native",   // default by type
//    "gen": "qkp:100-25-1",          // ... or a paper-style generated
//                                    //     instance "N-density-k" /
//                                    //     "mkp:N-M-k" instead of a file
//    "backend": "pbit",              // see service::known_backends()
//    "sweeps": 1000, "beta_max": 10.0,
//    "iterations": 2000, "eta": 20.0, "penalty_alpha": 2.0,
//    "seed": 1, "replicas": 1,
//    "priority": "low" | "normal" | "high",
//    "deadline_ms": 0,               // wall-clock budget, 0 = none
//    "cache": true,
//    "warm_start": false}            // seed from the per-problem pool
//                                    //   (default: the --warm-start flag)
//
// Example:
//   printf '%s\n' '{"id":"a","gen":"qkp:60-25-1","iterations":100}' \
//     | saim_serve --workers 4 --stream
//
// Exit status: 0 when every line produced a result, 1 when any line was
// rejected (malformed JSON, unknown backend, unreadable instance); bad
// lines emit {"id":...,"error":...} and do not sink the rest of the
// stream.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "problems/mkp.hpp"
#include "problems/qkp.hpp"
#include "service/request_builders.hpp"
#include "service/solve_service.hpp"
#include "util/cli.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace saim;

struct PendingJob {
  std::string id;
  std::string instance;
  std::string backend;
  service::JobHandle handle;
  std::string error;  ///< submission-time failure; handle invalid
  bool emitted = false;  ///< result line already printed (--stream)
};

/// "qkp:100-25-1" -> generated paper instance. Throws on a malformed spec.
service::SolveRequest request_from_gen(const std::string& spec,
                                       std::string* instance_name) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::size_t a = 0, b = 0, c = 0;
  if (colon == std::string::npos ||
      std::sscanf(spec.c_str() + colon + 1, "%zu-%zu-%zu", &a, &b, &c) != 3) {
    throw std::runtime_error("bad gen spec '" + spec +
                             "' (want qkp:N-density-k or mkp:N-M-k)");
  }
  service::SolveRequest request;
  if (kind == "qkp") {
    request = service::request_for(std::make_shared<problems::QkpInstance>(
        problems::make_paper_qkp(a, static_cast<int>(b),
                                 static_cast<int>(c))));
  } else if (kind == "mkp") {
    request = service::request_for(std::make_shared<problems::MkpInstance>(
        problems::make_paper_mkp(a, b, static_cast<int>(c))));
  } else {
    throw std::runtime_error("bad gen spec '" + spec + "': unknown type '" +
                             kind + "'");
  }
  *instance_name = request.tag;
  return request;
}

/// Loads the instance named by path/format and lowers it to a request.
service::SolveRequest request_from_file(const std::string& type,
                                        const std::string& path,
                                        const std::string& format,
                                        std::string* instance_name) {
  service::SolveRequest request;
  if (type == "qkp") {
    request = service::request_for(std::make_shared<problems::QkpInstance>(
        format == "native" ? problems::load_qkp(path)
                           : problems::load_qkp_billionnet(path)));
  } else if (type == "mkp") {
    request = service::request_for(std::make_shared<problems::MkpInstance>(
        format == "native" ? problems::load_mkp(path)
                           : problems::load_mkp_orlib(path)));
  } else {
    throw std::runtime_error("job needs \"type\": \"qkp\" or \"mkp\"");
  }
  *instance_name = request.tag;
  return request;
}

service::Priority parse_priority(const std::string& p) {
  if (p == "low") return service::Priority::kLow;
  if (p == "high") return service::Priority::kHigh;
  if (p.empty() || p == "normal") return service::Priority::kNormal;
  throw std::runtime_error("bad priority '" + p +
                           "' (want low, normal or high)");
}

/// Parses one JSONL job line into a ready-to-submit request.
/// `warm_default` is the --warm-start flag; a per-job "warm_start" field
/// overrides it either way.
service::SolveRequest parse_job(const std::string& line, bool warm_default,
                                std::string* instance_name) {
  const util::JsonValue job = util::parse_json(line);
  if (!job.is_object()) throw std::runtime_error("job line is not an object");

  // A misspelled key ("iteration", "sweep") would otherwise silently run
  // the job with defaults; hand-written job files deserve a hard error.
  static const std::set<std::string> kKnownKeys = {
      "id",         "type",      "path",          "format",
      "gen",        "backend",   "sweeps",        "beta_max",
      "iterations", "eta",       "penalty_alpha", "seed",
      "replicas",   "priority",  "deadline_ms",   "cache",
      "warm_start"};
  for (const auto& [key, value] : job.object()) {
    if (!kKnownKeys.contains(key)) {
      throw std::runtime_error("unknown job field \"" + key + "\"");
    }
  }

  auto str = [&](const char* key) {
    const auto* v = job.find(key);
    return v ? v->as_string() : std::string{};
  };

  std::string type = str("type");
  service::SolveRequest request;
  if (const auto* gen = job.find("gen")) {
    request = request_from_gen(gen->as_string(), instance_name);
  } else if (const auto* path = job.find("path")) {
    std::string format = str("format");
    if (type.empty()) {  // infer from format
      if (format == "billionnet") type = "qkp";
      if (format == "orlib") type = "mkp";
    }
    if (format.empty()) format = type == "mkp" ? "orlib" : "billionnet";
    request = request_from_file(type, path->as_string(), format,
                                instance_name);
  } else {
    throw std::runtime_error("job needs either \"gen\" or \"path\"");
  }

  auto num = [&](const char* key, double fallback) {
    const auto* v = job.find(key);
    if (v && !v->is_number()) {
      throw std::runtime_error(std::string("field \"") + key +
                               "\" must be a number");
    }
    return v ? v->as_double(fallback) : fallback;
  };
  // Counts must be nonnegative integers: a raw double->size_t cast of -1
  // or 1e300 is UB and would silently produce a near-endless job.
  auto count = [&](const char* key, std::uint64_t fallback) {
    const auto* v = job.find(key);
    if (!v) return fallback;
    if (!v->is_number()) {
      throw std::runtime_error(std::string("field \"") + key +
                               "\" must be a number");
    }
    const double d = v->as_double();
    if (!(d >= 0.0) || d > 9007199254740992.0 /* 2^53 */ ||
        d != std::floor(d)) {
      throw std::runtime_error(std::string("field \"") + key +
                               "\" must be a nonnegative integer");
    }
    return static_cast<std::uint64_t>(d);
  };
  request.backend.name = str("backend").empty() ? "pbit" : str("backend");
  request.backend.sweeps = static_cast<std::size_t>(count("sweeps", 1000));
  request.backend.beta_max = num("beta_max", 10.0);

  request.options.iterations =
      static_cast<std::size_t>(count("iterations", 2000));
  request.options.eta = num("eta", 20.0);
  request.options.penalty_alpha = num("penalty_alpha", 2.0);
  request.options.seed = count("seed", 1);
  request.options.replicas = static_cast<std::size_t>(count("replicas", 1));

  request.priority = parse_priority(str("priority"));
  request.timeout = std::chrono::milliseconds(
      static_cast<long>(count("deadline_ms", 0)));
  if (const auto* cache = job.find("cache")) {
    request.use_cache = cache->as_bool(true);
  }
  request.warm_start = warm_default;
  if (const auto* warm = job.find("warm_start")) {
    request.warm_start = warm->as_bool(warm_default);
  }
  request.tag = str("id");
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("saim_serve",
                       "serve a JSONL stream of SAIM solve jobs");
  args.add_flag("input", "job stream path, - for stdin", "-")
      .add_flag("output", "result stream path, - for stdout", "-")
      .add_flag("workers", "solver worker threads (0 = hardware)", "0")
      .add_flag("cache", "result-cache capacity (0 disables)", "256")
      .add_flag("max-batch",
                "same-instance jobs executed per model build (1 disables)",
                "8")
      .add_bool("warm-start",
                "seed jobs from the per-problem pool by default "
                "(per-job \"warm_start\" field overrides)")
      .add_bool("stream",
                "emit result lines as jobs finish (tagged with \"seq\") "
                "instead of in input order after EOF")
      .add_bool("stats", "append a final summary line to stderr");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  std::ifstream file_in;
  const std::string input = args.get("input");
  if (input != "-") {
    file_in.open(input);
    if (!file_in) {
      std::fprintf(stderr, "saim_serve: cannot open '%s'\n", input.c_str());
      return 2;
    }
  }
  std::istream& in = input == "-" ? std::cin : file_in;

  std::ofstream file_out;
  const std::string output = args.get("output");
  if (output != "-") {
    file_out.open(output);
    if (!file_out) {
      std::fprintf(stderr, "saim_serve: cannot open '%s'\n", output.c_str());
      return 2;
    }
  }
  std::ostream& out = output == "-" ? std::cout : file_out;

  service::ServiceOptions service_options;
  // Negative values would wrap to huge size_t counts; clamp to the
  // "pick for me" / "disabled" zero instead.
  service_options.workers =
      static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("workers")));
  service_options.cache_capacity =
      static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("cache")));
  service_options.max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.get_int("max-batch")));
  service::SolveService svc(service_options);

  const bool stream = args.get_bool("stream");
  const bool warm_default = args.get_bool("warm-start");

  bool any_error = false;
  std::int64_t next_seq = 0;
  // Renders (and marks emitted) the result/error line for a FINISHED job.
  // In stream mode lines carry the emission sequence number; in batch
  // mode they print after EOF in input order, without seq.
  const auto render = [&](PendingJob& job) -> std::string {
    job.emitted = true;
    const std::int64_t seq = stream ? next_seq++ : -1;
    if (!job.handle.valid()) {
      any_error = true;
      util::JsonWriter err;
      err.field("id", job.id).field("error", job.error);
      if (seq >= 0) err.field("seq", seq);
      return err.str();
    }
    const auto response = job.handle.wait();  // finished: returns at once
    if (response->status == core::Status::kError) {
      any_error = true;
      util::JsonWriter err;
      err.field("id", job.id).field("error", response->error);
      if (seq >= 0) err.field("seq", seq);
      return err.str();
    }
    core::JsonlContext context;
    context.id = job.id;
    context.instance = job.instance;
    context.backend = job.backend;
    context.wall_ms = response->wall_ms;
    context.cache_hit = response->cache_hit;
    context.fingerprint = response->fingerprint;
    context.batch_size = response->batch_size;
    context.warm_started = response->warm_started;
    context.seq = seq;
    return core::result_to_jsonl(*response->result, context);
  };

  std::vector<PendingJob> jobs;
  std::vector<std::size_t> unemitted;  ///< indices into `jobs`, in order
  std::mutex jobs_mutex;  ///< stream mode: guards jobs/unemitted/render
  bool input_done = false;  ///< guarded by jobs_mutex

  // Stream mode emits from a dedicated thread so completions surface the
  // moment they happen — even while the main thread is blocked in getline
  // waiting for a slow producer (a request-response coprocess can keep
  // the pipe open and still read results). Each pass sweeps only the
  // still-unemitted indices with non-blocking try_get, renders under the
  // lock but WRITES outside it (a slow result consumer never stalls
  // submission), and exits once input is done and everything is emitted.
  // The exit check reads input_done inside the same critical section as
  // the sweep, so a final job pushed before input_done was set can never
  // be skipped.
  std::thread emitter;
  if (stream) {
    emitter = std::thread([&] {
      while (true) {
        std::vector<std::string> lines;
        bool done;
        bool all_emitted;
        {
          std::lock_guard<std::mutex> lock(jobs_mutex);
          std::erase_if(unemitted, [&](std::size_t i) {
            PendingJob& job = jobs[i];
            if (job.handle.valid() && !job.handle.try_get()) return false;
            lines.push_back(render(job));
            return true;
          });
          all_emitted = unemitted.empty();
          done = input_done;
        }
        for (const auto& l : lines) out << l << "\n";
        if (!lines.empty()) out.flush();
        if (done && all_emitted) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    PendingJob pending;
    pending.id = "job" + std::to_string(line_no);
    try {
      std::string instance_name;
      service::SolveRequest request =
          parse_job(line, warm_default, &instance_name);
      if (!request.tag.empty()) pending.id = request.tag;
      request.tag = pending.id;
      pending.instance = instance_name;
      pending.backend = request.backend.name;
      pending.handle = svc.submit(std::move(request));
    } catch (const std::exception& e) {
      pending.error = e.what();
      // Recover the id for the error line when the JSON itself was fine.
      try {
        if (const auto* id = util::parse_json(line).find("id")) {
          if (!id->as_string().empty()) pending.id = id->as_string();
        }
      } catch (...) {
      }
    }
    {
      // Uncontended in batch mode (the emitter thread only exists with
      // --stream), so one always-locked push keeps the paths identical.
      std::lock_guard<std::mutex> lock(jobs_mutex);
      jobs.push_back(std::move(pending));
      unemitted.push_back(jobs.size() - 1);
    }
  }

  if (stream) {
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      input_done = true;
    }
    emitter.join();  // drains every remaining completion, then exits
  } else {
    for (auto& job : jobs) out << render(job) << "\n";
  }
  out.flush();

  if (args.get_bool("stats")) {
    const auto s = svc.stats();
    std::fprintf(stderr,
                 "saim_serve: %llu submitted, %llu executed, %llu coalesced, "
                 "%llu batched in %llu batches, %llu warm-seeded, "
                 "cache hit-rate %.2f\n",
                 static_cast<unsigned long long>(s.submitted),
                 static_cast<unsigned long long>(s.executed),
                 static_cast<unsigned long long>(s.coalesced),
                 static_cast<unsigned long long>(s.batched_jobs),
                 static_cast<unsigned long long>(s.batches),
                 static_cast<unsigned long long>(s.warm_seeded),
                 s.cache.hit_rate());
  }
  return any_error ? 1 : 0;
}
