// saim_serve — JSONL front-end to the asynchronous solve service.
//
// Reads one job per line from a file or stdin, runs every job through one
// SolveService (priority queue, worker pool, content-keyed result cache,
// duplicate coalescing, same-instance batching, warm-start pool), and
// emits one JSON result line per job. The full wire protocol — every
// request and response field, control lines, error lines, exit codes,
// worked examples — is specified in docs/PROTOCOL.md; keep that file in
// lockstep with this one (CI greps it for every emitted field name). The
// job-line parser itself lives in service/job_parser.{hpp,cpp}, shared
// with the sharding front door (tools/saim_shard).
//
// Two output modes:
//   * default — the whole input is read and submitted up front (so the
//     queue, priorities, the coalescer and the batcher see every in-flight
//     job), then results print after EOF in input order. A coprocess must
//     close its write end before reading results.
//   * --stream — result lines are emitted as jobs finish, each tagged
//     with a "seq" number in completion order; long-running tails no
//     longer dam the output. Line order is NOT input order. Only jobs
//     accepted into the service consume seq numbers: a line rejected at
//     submission emits its error without one, so accepted jobs always
//     see the contiguous range 0..accepted-1 (the sharding front door
//     relies on this to remap per-shard seq to a global order).
//
// Control lines (answered by the front-end itself, never queued, never
// numbered): {"cmd":"ping"} replies {"pong":true,"inflight":N} at once —
// even mid-stream — and {"cmd":"drain"} replies {"drained":true} once
// every job accepted before it has emitted its result.
//
// Job line schema: see docs/PROTOCOL.md (or service/job_parser.cpp's
// kKnownKeys for the authoritative field list).
//
// Example:
//   printf '%s\n' '{"id":"a","gen":"qkp:60-25-1","iterations":100}' \
//     | saim_serve --workers 4 --stream
//
// Exit status: 0 when every line produced a result, 1 when any line was
// rejected (malformed JSON, unknown backend, unreadable instance); bad
// lines emit {"id":...,"error":...} and do not sink the rest of the
// stream.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "service/job_parser.hpp"
#include "service/solve_service.hpp"
#include "util/cli.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace saim;

struct PendingJob {
  std::string id;
  std::string instance;
  std::string backend;
  service::JobHandle handle;
  std::string error;  ///< submission-time failure; handle invalid
  bool drain = false;  ///< {"cmd":"drain"} barrier, not a job
  bool emitted = false;  ///< result line already printed (--stream)
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("saim_serve",
                       "serve a JSONL stream of SAIM solve jobs");
  args.add_flag("input", "job stream path, - for stdin", "-")
      .add_flag("output", "result stream path, - for stdout", "-")
      .add_flag("workers", "solver worker threads (0 = hardware)", "0")
      .add_flag("cache", "result-cache capacity (0 disables)", "256")
      .add_flag("max-batch",
                "same-instance jobs executed per model build (1 disables)",
                "8")
      .add_bool("warm-start",
                "seed jobs from the per-problem pool by default "
                "(per-job \"warm_start\" field overrides)")
      .add_bool("stream",
                "emit result lines as jobs finish (tagged with \"seq\") "
                "instead of in input order after EOF")
      .add_bool("stats", "append a final summary line to stderr");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  std::ifstream file_in;
  const std::string input = args.get("input");
  if (input != "-") {
    file_in.open(input);
    if (!file_in) {
      std::fprintf(stderr, "saim_serve: cannot open '%s'\n", input.c_str());
      return 2;
    }
  }
  std::istream& in = input == "-" ? std::cin : file_in;

  std::ofstream file_out;
  const std::string output = args.get("output");
  if (output != "-") {
    file_out.open(output);
    if (!file_out) {
      std::fprintf(stderr, "saim_serve: cannot open '%s'\n", output.c_str());
      return 2;
    }
  }
  std::ostream& out = output == "-" ? std::cout : file_out;

  service::ServiceOptions service_options;
  // Negative values would wrap to huge size_t counts; clamp to the
  // "pick for me" / "disabled" zero instead.
  service_options.workers =
      static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("workers")));
  service_options.cache_capacity =
      static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("cache")));
  service_options.max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.get_int("max-batch")));
  service::SolveService svc(service_options);

  const bool stream = args.get_bool("stream");
  const bool warm_default = args.get_bool("warm-start");

  bool any_error = false;
  std::int64_t next_seq = 0;
  // Renders (and marks emitted) the result/error line for a FINISHED job.
  // In stream mode, lines for ACCEPTED jobs carry the emission sequence
  // number; lines rejected at submission never consume one (the global
  // completion order counts real jobs only). In batch mode results print
  // after EOF in input order, without seq.
  const auto render = [&](PendingJob& job) -> std::string {
    job.emitted = true;
    if (!job.handle.valid()) {
      any_error = true;
      util::JsonWriter err;
      err.field("id", job.id).field("error", job.error);
      return err.str();
    }
    const std::int64_t seq = stream ? next_seq++ : -1;
    const auto response = job.handle.wait();  // finished: returns at once
    if (response->status == core::Status::kError) {
      any_error = true;
      util::JsonWriter err;
      err.field("id", job.id).field("error", response->error);
      if (seq >= 0) err.field("seq", seq);
      return err.str();
    }
    core::JsonlContext context;
    context.id = job.id;
    context.instance = job.instance;
    context.backend = job.backend;
    context.wall_ms = response->wall_ms;
    context.cache_hit = response->cache_hit;
    context.fingerprint = response->fingerprint;
    context.batch_size = response->batch_size;
    context.warm_started = response->warm_started;
    context.seq = seq;
    return core::result_to_jsonl(*response->result, context);
  };
  // A drain barrier's acknowledgement line (no seq: control lines never
  // consume completion-order numbers).
  const auto render_drain = [](PendingJob& job) -> std::string {
    job.emitted = true;
    util::JsonWriter ack;
    ack.field("id", job.id).field("drained", true);
    return ack.str();
  };

  std::vector<PendingJob> jobs;
  std::vector<std::size_t> unemitted;  ///< indices into `jobs`, in order
  std::mutex jobs_mutex;  ///< stream mode: guards jobs/unemitted/render
  bool input_done = false;  ///< guarded by jobs_mutex
  std::mutex out_mutex;  ///< serializes `out` between emitter and pongs

  // Stream mode emits from a dedicated thread so completions surface the
  // moment they happen — even while the main thread is blocked in getline
  // waiting for a slow producer (a request-response coprocess can keep
  // the pipe open and still read results). Each pass sweeps only the
  // still-unemitted indices with non-blocking try_get, renders under the
  // lock but WRITES outside it (a slow result consumer never stalls
  // submission), and exits once input is done and everything is emitted.
  // The exit check reads input_done inside the same critical section as
  // the sweep, so a final job pushed before input_done was set can never
  // be skipped. A drain barrier emits only once every entry before it has
  // — jobs after it may still overtake it, matching the contract that
  // "drained" certifies the PAST, not the future.
  std::thread emitter;
  if (stream) {
    emitter = std::thread([&] {
      while (true) {
        std::vector<std::string> lines;
        bool done;
        bool all_emitted;
        {
          std::lock_guard<std::mutex> lock(jobs_mutex);
          bool blocked = false;  // an earlier entry is still unfinished
          std::erase_if(unemitted, [&](std::size_t i) {
            PendingJob& job = jobs[i];
            if (job.drain) {
              if (blocked) return false;
              lines.push_back(render_drain(job));
              return true;
            }
            if (job.handle.valid() && !job.handle.try_get()) {
              blocked = true;
              return false;
            }
            lines.push_back(render(job));
            return true;
          });
          all_emitted = unemitted.empty();
          done = input_done;
        }
        if (!lines.empty()) {
          std::lock_guard<std::mutex> lock(out_mutex);
          for (const auto& l : lines) out << l << "\n";
          out.flush();
        }
        if (done && all_emitted) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    PendingJob pending;
    pending.id = "job" + std::to_string(line_no);
    try {
      const util::JsonValue parsed = util::parse_json(line);
      // Use the line's own id everywhere — result lines, error lines,
      // control acknowledgements — falling back to the line number.
      if (const auto* id = parsed.find("id")) {
        if (!id->as_string().empty()) pending.id = id->as_string();
      }
      if (const auto cmd = service::control_cmd(parsed)) {
        if (*cmd == "ping") {
          // Liveness probe: answered immediately, even in batch mode and
          // even while every worker is busy (submission never blocks).
          // "inflight" counts ACCEPTED jobs not yet emitted — rejected
          // lines and drain barriers are not load.
          std::size_t inflight = 0;
          {
            std::lock_guard<std::mutex> lock(jobs_mutex);
            for (const std::size_t i : unemitted) {
              if (jobs[i].handle.valid()) ++inflight;
            }
          }
          util::JsonWriter pong;
          pong.field("id", pending.id)
              .field("pong", true)
              .field("inflight", static_cast<std::uint64_t>(inflight));
          std::lock_guard<std::mutex> lock(out_mutex);
          out << pong.str() << "\n";
          out.flush();
          continue;
        }
        pending.drain = true;  // barrier; acknowledged by the emitter
      } else {
        service::ParsedJob job = service::parse_job(parsed, warm_default);
        job.request.tag = pending.id;
        pending.instance = job.instance;
        pending.backend = job.request.backend.name;
        pending.handle = svc.submit(std::move(job.request));
      }
    } catch (const std::exception& e) {
      pending.error = e.what();
    }
    {
      // Uncontended in batch mode (the emitter thread only exists with
      // --stream), so one always-locked push keeps the paths identical.
      std::lock_guard<std::mutex> lock(jobs_mutex);
      jobs.push_back(std::move(pending));
      unemitted.push_back(jobs.size() - 1);
    }
  }

  if (stream) {
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      input_done = true;
    }
    emitter.join();  // drains every remaining completion, then exits
  } else {
    for (auto& job : jobs) {
      out << (job.drain ? render_drain(job) : render(job)) << "\n";
    }
  }
  out.flush();

  if (args.get_bool("stats")) {
    const auto s = svc.stats();
    std::fprintf(stderr,
                 "saim_serve: %llu submitted, %llu executed, %llu coalesced, "
                 "%llu batched in %llu batches, %llu warm-seeded, "
                 "cache hit-rate %.2f\n",
                 static_cast<unsigned long long>(s.submitted),
                 static_cast<unsigned long long>(s.executed),
                 static_cast<unsigned long long>(s.coalesced),
                 static_cast<unsigned long long>(s.batched_jobs),
                 static_cast<unsigned long long>(s.batches),
                 static_cast<unsigned long long>(s.warm_seeded),
                 s.cache.hit_rate());
  }
  return any_error ? 1 : 0;
}
