// saim_shard — self-healing sharded serving front door.
//
// Speaks the docs/PROTOCOL.md JSONL wire format on both sides: clients
// talk to saim_shard exactly as they would to `saim_serve --stream`, and
// saim_shard runs a fleet of saim_serve shards — local `--stream`
// children over fork/exec pipes plus, with `--connect host:port`, remote
// `saim_serve --listen` servers over TCP — routing each job by
// consistent hashing on its canonical problem fingerprint. All jobs over
// one instance land on one shard, so that shard's result cache,
// coalescer, same-instance batcher and warm-start pool stay hot for its
// keyslice. The routing/remapping brain is service/shard_router; the
// transports are service/process_child (pipes) and net/socket_child
// (TCP) behind net::ShardEndpoint; the self-healing layer —
// crash respawn with backoff, ring rejoin, live resharding, warm-pool
// handoff, health probes — is service/supervisor.
//
// Semantics (inherited from router + supervisor):
//   * results stream in global completion order, each accepted job tagged
//     with a global "seq" (per-shard seqs are remapped; rejected lines
//     carry none);
//   * per-shard bounded in-flight windows give backpressure — a slow
//     shard throttles only its own keyslice;
//   * a crashed or unresponsive LOCAL shard is respawned with backoff
//     and rejoins the ring (its unanswered jobs fail over to survivors
//     first — zero lost jobs; with no survivor they are held and replay
//     into the replacement). Dead remote shards fail over and stay gone;
//   * {"cmd":"reshard","shards":N} grows/shrinks the local fleet live;
//     {"cmd":"shutdown"} (or Ctrl-C / SIGTERM) stops intake, drains
//     every accepted job, answers {"bye":true}, and tears the fleet down
//     gracefully — shutdown control lines to the children, waitpid, no
//     SIGKILL unless a child overstays;
//   * on EOF the front door drains every shard before exiting.
//
// Example — 4 local shards plus one remote box:
//   saim_shard --shards 4 --connect 10.0.0.7:7777 < jobs.jsonl
//
// Exit status mirrors saim_serve: 0 all jobs ok, 1 any error line, 2 bad
// invocation.
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "net/connection.hpp"
#include "service/job_parser.hpp"
#include "service/shard_router.hpp"
#include "service/supervisor.hpp"
#include "util/cli.hpp"
#include "util/jsonl.hpp"

namespace {

using namespace saim;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

/// saim_serve is expected to sit next to saim_shard unless --serve says
/// otherwise.
std::string sibling_serve_path(const char* argv0) {
  const std::string self(argv0 ? argv0 : "");
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return "saim_serve";  // rely on PATH
  return self.substr(0, slash + 1) + "saim_serve";
}

/// Mirrors the execvp lookup so a mistyped --serve fails with one clear
/// exit-2 diagnostic instead of N silent child exec failures.
bool executable_exists(const std::string& serve) {
  if (serve.find('/') != std::string::npos) {
    return ::access(serve.c_str(), X_OK) == 0;
  }
  const char* path = std::getenv("PATH");
  if (!path) return false;
  std::string dirs(path);
  std::size_t start = 0;
  while (start <= dirs.size()) {
    const std::size_t colon = dirs.find(':', start);
    std::string dir =
        dirs.substr(start, colon == std::string::npos ? std::string::npos
                                                      : colon - start);
    if (dir.empty()) dir = ".";  // empty PATH component = cwd, per execvp
    if (::access((dir + "/" + serve).c_str(), X_OK) == 0) return true;
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("saim_shard",
                       "shard a JSONL solve-job stream across a "
                       "self-healing fleet of saim_serve shards");
  args.add_flag("shards", "local saim_serve child processes to spawn", "2")
      .add_multi("connect",
                 "host:port of a remote `saim_serve --listen --stream` to "
                 "join the ring (repeatable)")
      .add_flag("serve", "path to the saim_serve binary (default: next to "
                "this one)", "")
      .add_flag("input", "job stream path, - for stdin", "-")
      .add_flag("output", "result stream path, - for stdout", "-")
      .add_flag("workers", "solver worker threads PER SHARD (0 = hardware)",
                "1")
      .add_flag("cache", "result-cache capacity per shard (0 disables)",
                "256")
      .add_flag("max-batch",
                "same-instance jobs fused per model build per shard", "8")
      .add_bool("warm-start",
                "make \"warm_start\": true the per-job default on every "
                "shard")
      .add_flag("window", "max in-flight jobs per shard", "32")
      .add_flag("ping-ms",
                "health-probe interval; a shard missing 5 pongs is "
                "terminated and (if local) respawned (0 disables)",
                "1000")
      .add_bool("no-respawn",
                "do not re-exec crashed local shards (PR 4 fail-static "
                "behavior)")
      .add_flag("max-restarts",
                "consecutive crashes before a local shard slot is "
                "abandoned",
                "5")
      .add_bool("stats", "per-shard routing summary on stderr at exit");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  const auto nonneg = [&](const char* flag) {
    return static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.get_int(flag)));
  };

  // Fleet membership: locals first (slots 0..L-1), then remotes.
  std::vector<net::HostPort> remotes;
  for (const auto& spec : args.get_all("connect")) {
    const auto hostport = net::parse_hostport(spec);
    if (!hostport) {
      std::fprintf(stderr, "saim_shard: bad --connect '%s' (want host:port)\n",
                   spec.c_str());
      return 2;
    }
    remotes.push_back(*hostport);
  }
  std::size_t locals = nonneg("shards");
  if (locals == 0 && remotes.empty()) locals = 1;

  service::RouterOptions router_options;
  router_options.shards = locals + remotes.size();
  router_options.window = std::max<std::size_t>(1, nonneg("window"));

  std::string serve = args.get("serve");
  if (serve.empty()) serve = sibling_serve_path(argv[0]);
  if (locals > 0 && !executable_exists(serve)) {
    std::fprintf(stderr, "saim_shard: cannot execute '%s'\n", serve.c_str());
    return 2;
  }

  std::ifstream file_in;
  const std::string input = args.get("input");
  if (input != "-") {
    file_in.open(input);
    if (!file_in) {
      std::fprintf(stderr, "saim_shard: cannot open '%s'\n", input.c_str());
      return 2;
    }
  }
  std::istream& in = input == "-" ? std::cin : file_in;

  std::ofstream file_out;
  const std::string output = args.get("output");
  if (output != "-") {
    file_out.open(output);
    if (!file_out) {
      std::fprintf(stderr, "saim_shard: cannot open '%s'\n", output.c_str());
      return 2;
    }
  }
  std::ostream& out = output == "-" ? std::cout : file_out;

  // The fleet: router (routing state) + supervisor (endpoints, respawn,
  // resharding, warm handoff, health).
  service::ShardRouter router(router_options);
  service::SupervisorOptions supervisor_options;
  supervisor_options.local_argv = {
      serve,
      "--stream",
      "--workers", args.get("workers"),
      "--cache", args.get("cache"),
      "--max-batch", args.get("max-batch"),
  };
  if (args.get_bool("warm-start")) {
    supervisor_options.local_argv.push_back("--warm-start");
  }
  supervisor_options.respawn = !args.get_bool("no-respawn");
  supervisor_options.max_restarts = static_cast<int>(
      std::max<std::size_t>(1, nonneg("max-restarts")));
  supervisor_options.ping_ms = static_cast<int>(nonneg("ping-ms"));
  service::Supervisor supervisor(router, supervisor_options);
  for (std::size_t s = 0; s < locals; ++s) supervisor.attach_local(s);
  for (std::size_t i = 0; i < remotes.size(); ++i) {
    try {
      supervisor.attach_remote(locals + i, remotes[i].host, remotes[i].port);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "saim_shard: %s\n", e.what());
      return 2;
    }
  }

  // Ctrl-C / SIGTERM turn into a graceful shutdown: stop intake, drain
  // every accepted job, tear the fleet down, then exit. (Children sit in
  // their own process groups, so the terminal's SIGINT does not reach
  // them directly — the front door stays in charge of the drain.)
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Memory backstops. The routed-jobs side: stop parsing/routing when
  // this many jobs wait for a window slot. The raw-lines side: the reader
  // thread blocks once this many unconsumed lines are buffered, so a fast
  // producer cannot balloon RSS with the whole stream.
  const std::size_t high_water = router_options.shards *
                                 router_options.window * 4;
  const std::size_t line_buffer_cap = std::max<std::size_t>(high_water * 4,
                                                            4096);

  // Input on its own thread so a slow producer never stalls the pumps
  // (same pattern as saim_serve's emitter, mirrored to the read side).
  std::mutex lines_mutex;
  std::condition_variable lines_cv;  ///< reader waits for buffer room
  std::deque<std::string> lines;
  bool input_done = false;
  std::thread reader([&] {
    std::string line;
    while (std::getline(in, line)) {
      std::unique_lock<std::mutex> lock(lines_mutex);
      lines_cv.wait(lock, [&] { return lines.size() < line_buffer_cap; });
      lines.push_back(std::move(line));
    }
    std::lock_guard<std::mutex> lock(lines_mutex);
    input_done = true;
  });

  const auto emit = [&](const std::vector<std::string>& emitted) {
    if (emitted.empty()) return;
    for (const auto& l : emitted) out << l << "\n";
    out.flush();
  };

  bool intake_open = true;   ///< false after {"cmd":"shutdown"} or a signal
  bool front_error = false;  ///< error lines the front door produced itself
  std::string bye_id;        ///< shutdown ack id; emitted after the drain
  bool saw_shutdown_cmd = false;

  std::size_t line_no = 0;
  for (;;) {
    if (g_signal && intake_open) {
      intake_open = false;  // drain what was accepted, then leave
      std::fprintf(stderr, "saim_shard: signal received, draining\n");
    }

    // Ingest as much input as backpressure allows, intercepting the
    // fleet-management control lines the router must not see.
    bool done;
    for (;;) {
      std::string line;
      {
        std::lock_guard<std::mutex> lock(lines_mutex);
        done = (input_done && lines.empty()) || !intake_open;
        if (!intake_open || lines.empty() ||
            router.total_pending() >= high_water) {
          break;
        }
        line = std::move(lines.front());
        lines.pop_front();
      }
      lines_cv.notify_one();
      ++line_no;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

      // Fleet-management control lines (reshard/shutdown/export_warm/
      // import_warm) are handled here; ping/drain and job lines flow to
      // the router. The substring test only gates the extra parse —
      // false positives cost one parse_json, nothing else.
      if (line.find("\"cmd\"") != std::string::npos) {
        std::string cmd_id = "job" + std::to_string(line_no);
        try {
          const util::JsonValue parsed = util::parse_json(line);
          if (const auto* id = parsed.find("id")) {
            if (!id->as_string().empty()) cmd_id = id->as_string();
          }
          const auto cmd = service::control_cmd(parsed);
          if (cmd && *cmd == "shutdown") {
            intake_open = false;
            saw_shutdown_cmd = true;
            bye_id = cmd_id;
            break;  // stop intake mid-buffer: shutdown certifies the past
          }
          if (cmd && *cmd == "reshard") {
            const auto* shards = parsed.find("shards");
            if (!shards || !shards->is_number()) {
              throw std::runtime_error("reshard needs a numeric \"shards\"");
            }
            const double want = shards->as_double();
            if (!(want >= 0.0) || want > 1024.0) {
              throw std::runtime_error("reshard \"shards\" must be 0..1024");
            }
            const std::size_t applied =
                supervisor.reshard(static_cast<std::size_t>(want));
            util::JsonWriter ack;
            ack.field("id", cmd_id)
                .field("resharded", true)
                .field("shards", static_cast<std::uint64_t>(applied));
            emit({ack.str()});
            continue;
          }
          if (cmd && (*cmd == "export_warm" || *cmd == "import_warm")) {
            throw std::runtime_error(
                "control cmd \"" + *cmd +
                "\" is not served by the saim_shard front door (warm "
                "pools live in the shards)");
          }
        } catch (const std::exception& e) {
          front_error = true;
          util::JsonWriter err;
          err.field("id", cmd_id).field("error", e.what());
          emit({err.str()});
          continue;
        }
      }
      emit(router.accept_line(line, line_no));
    }

    emit(supervisor.pump(2));

    // With no live shard and none respawning there is no pollable fd, so
    // pump returns immediately; sleep instead of spinning.
    if (router.live_shards() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    if (done && router.idle()) break;
  }

  if (saw_shutdown_cmd) {
    util::JsonWriter bye;
    bye.field("id", bye_id).field("bye", true);
    emit({bye.str()});
  }

  // Graceful fleet teardown: shutdown control lines + stdin EOF, wait for
  // the children's own exits, reap — SIGKILL only on an overstay.
  supervisor.shutdown_fleet();
  emit(supervisor.drain_deferred());
  out.flush();

  if (args.get_bool("stats")) {
    const auto& s = router.stats();
    const auto& sup = supervisor.stats();
    std::fprintf(stderr,
                 "saim_shard: %llu accepted, %llu emitted, %llu rejected, "
                 "%llu requeued, %llu orphaned, %zu/%zu shards alive\n",
                 static_cast<unsigned long long>(s.accepted),
                 static_cast<unsigned long long>(s.emitted),
                 static_cast<unsigned long long>(s.rejected),
                 static_cast<unsigned long long>(s.requeued),
                 static_cast<unsigned long long>(s.orphaned),
                 router.live_shards(), router.shard_slots());
    std::fprintf(stderr,
                 "saim_shard: supervisor: %llu respawns, "
                 "%llu remote reconnects, %llu abandoned, "
                 "%llu reshards, %llu retired, %llu warm entries forwarded, "
                 "%llu unresponsive kills\n",
                 static_cast<unsigned long long>(sup.respawns),
                 static_cast<unsigned long long>(sup.remote_reconnects),
                 static_cast<unsigned long long>(sup.respawn_failures),
                 static_cast<unsigned long long>(sup.reshards),
                 static_cast<unsigned long long>(sup.retired),
                 static_cast<unsigned long long>(sup.warm_forwarded),
                 static_cast<unsigned long long>(sup.unresponsive_kills));
    for (std::size_t i = 0; i < s.routed_per_shard.size(); ++i) {
      std::fprintf(stderr, "  shard %zu: %llu jobs routed%s%s\n", i,
                   static_cast<unsigned long long>(s.routed_per_shard[i]),
                   router.alive(i) ? "" : " (down)",
                   supervisor.is_local(i) ? "" : " (remote)");
    }
  }

  const int code = (router.any_error() || front_error) ? 1 : 0;
  // The reader thread may still be parked in getline on an open stdin
  // (signal/shutdown path). Joining would hang; exiting without static
  // teardown is safe — everything worth flushing was flushed above.
  {
    std::lock_guard<std::mutex> lock(lines_mutex);
    if (!input_done) {
      std::fflush(nullptr);
      std::_Exit(code);
    }
  }
  reader.join();
  return code;
}
