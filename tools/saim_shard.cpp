// saim_shard — self-healing sharded serving front door.
//
// Speaks the docs/PROTOCOL.md JSONL wire format on both sides: clients
// talk to saim_shard exactly as they would to `saim_serve --stream`, and
// saim_shard runs a fleet of saim_serve shards — local `--stream`
// children over fork/exec pipes plus, with `--connect host:port`, remote
// `saim_serve --listen` servers over TCP — routing each job by
// consistent hashing on its canonical problem fingerprint. All jobs over
// one instance land on one shard, so that shard's result cache,
// coalescer, same-instance batcher and warm-start pool stay hot for its
// keyslice. The routing/remapping brain is service/shard_router; the
// transports are service/process_child (pipes) and net/socket_child
// (TCP) behind net::ShardEndpoint; the self-healing layer —
// crash respawn with backoff, ring rejoin, live resharding, warm-pool
// handoff, health probes — is service/supervisor.
//
// Semantics (inherited from router + supervisor):
//   * results stream in global completion order, each accepted job tagged
//     with a global "seq" (per-shard seqs are remapped; rejected lines
//     carry none);
//   * per-shard bounded in-flight windows give backpressure — a slow
//     shard throttles only its own keyslice;
//   * with --replicas R, warm pools mirror to each key's next R-1 ring
//     neighbors: a job stuck in flight past max(--hedge-min-ms, its
//     shard's round-trip p95) is hedged to a replica (same routing
//     token, first result wins, exactly one client line), twins of a
//     hot key skip a saturated owner for its least-loaded replica, and
//     --max-queue-depth sheds the lowest-priority job past the bound
//     with a "delayed"-tagged error instead of queueing unboundedly;
//   * a crashed or unresponsive LOCAL shard is respawned with backoff
//     and rejoins the ring (its unanswered jobs fail over to survivors
//     first — zero lost jobs; with no survivor they are held and replay
//     into the replacement). Dead remote shards fail over and stay gone;
//   * {"cmd":"stats"} probes every live shard and answers with ONE
//     {"id":...,"fleet":{...}} snapshot line: router totals, supervisor
//     counters, and a per-shard array (queue depth, inflight, restarts,
//     round-trip latency quantiles, the shard's own service snapshot);
//     --metrics host:port additionally serves a Prometheus text-format
//     scrape of the same router/supervisor state (docs/ARCHITECTURE.md,
//     "Observability");
//   * {"cmd":"reshard","shards":N} grows/shrinks the local fleet live;
//     {"cmd":"shutdown"} (or Ctrl-C / SIGTERM) stops intake, drains
//     every accepted job, answers {"bye":true}, and tears the fleet down
//     gracefully — shutdown control lines to the children, waitpid, no
//     SIGKILL unless a child overstays;
//   * on EOF the front door drains every shard before exiting.
//
// Example — 4 local shards plus one remote box:
//   saim_shard --shards 4 --connect 10.0.0.7:7777 < jobs.jsonl
//
// Exit status mirrors saim_serve: 0 all jobs ok, 1 any error line, 2 bad
// invocation.
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "net/connection.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_server.hpp"
#include "service/job_parser.hpp"
#include "service/shard_router.hpp"
#include "service/supervisor.hpp"
#include "util/cli.hpp"
#include "util/jsonl.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

using namespace saim;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

/// The latest pre-rendered Prometheus payload, published by the main loop
/// every ~250 ms and served by the MetricsServer scrape thread. A named
/// struct (not locals) so the shared string carries a thread-safety
/// annotation — attributes cannot attach to function-local variables.
struct MetricsPublisher {
  util::Mutex mutex;
  std::string payload SAIM_GUARDED_BY(mutex);
};

/// Raw input lines, moved from the reader thread to the main pump loop
/// with a bounded buffer (the reader blocks on `cv` when full).
struct LineIntake {
  util::Mutex mutex;
  std::condition_variable cv;  ///< reader waits here for buffer room
  std::deque<std::string> lines SAIM_GUARDED_BY(mutex);
  bool input_done SAIM_GUARDED_BY(mutex) = false;
};

/// saim_serve is expected to sit next to saim_shard unless --serve says
/// otherwise.
std::string sibling_serve_path(const char* argv0) {
  const std::string self(argv0 ? argv0 : "");
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return "saim_serve";  // rely on PATH
  return self.substr(0, slash + 1) + "saim_serve";
}

/// Mirrors the execvp lookup so a mistyped --serve fails with one clear
/// exit-2 diagnostic instead of N silent child exec failures.
bool executable_exists(const std::string& serve) {
  if (serve.find('/') != std::string::npos) {
    return ::access(serve.c_str(), X_OK) == 0;
  }
  const char* path = std::getenv("PATH");
  if (!path) return false;
  std::string dirs(path);
  std::size_t start = 0;
  while (start <= dirs.size()) {
    const std::size_t colon = dirs.find(':', start);
    std::string dir =
        dirs.substr(start, colon == std::string::npos ? std::string::npos
                                                      : colon - start);
    if (dir.empty()) dir = ".";  // empty PATH component = cwd, per execvp
    if (::access((dir + "/" + serve).c_str(), X_OK) == 0) return true;
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return false;
}

/// One shard's label set, e.g. `shard="3"`.
std::string shard_label(std::size_t s) {
  return "shard=\"" + std::to_string(s) + "\"";
}

/// Prometheus exposition of the router/supervisor state. Runs on the MAIN
/// thread only (both owners are single-threaded); the MetricsServer thread
/// serves the latest pre-rendered copy published under a mutex.
std::string render_fleet_metrics(const service::ShardRouter& router,
                                 const service::Supervisor& supervisor) {
  obs::PromText text;
  const auto& rs = router.stats();
  const auto& sup = supervisor.stats();
  const auto counter = [&text](std::string_view name, std::uint64_t value,
                               std::string_view help) {
    text.header(name, "counter", help);
    text.series(name, {}, value);
  };
  counter("saim_router_accepted_total", rs.accepted,
          "jobs routed onto the ring");
  counter("saim_router_rejected_total", rs.rejected,
          "lines rejected by the front door (bad input)");
  counter("saim_router_emitted_total", rs.emitted,
          "job result/error lines sent downstream");
  counter("saim_router_requeued_total", rs.requeued,
          "jobs moved off a dead shard");
  counter("saim_router_orphaned_total", rs.orphaned,
          "jobs errored because no live shard remained");
  counter("saim_router_hedges_total", rs.hedges,
          "hedge copies dispatched to a replica");
  counter("saim_router_hedge_wins_total", rs.hedge_wins,
          "jobs whose hedge copy answered before the owner");
  counter("saim_router_sheds_total", rs.sheds,
          "jobs shed by admission control with a delayed-tagged error");
  counter("saim_router_replica_hits_total", rs.replica_hits,
          "hot-key twins routed to a replica instead of the owner");
  counter("saim_supervisor_respawns_total", sup.respawns,
          "successful local shard re-execs");
  counter("saim_supervisor_remote_reconnects_total", sup.remote_reconnects,
          "successful remote shard redials");
  counter("saim_supervisor_respawn_failures_total", sup.respawn_failures,
          "shard slots abandoned after max restarts");
  counter("saim_supervisor_reshards_total", sup.reshards,
          "live fleet membership changes");
  counter("saim_supervisor_retired_total", sup.retired,
          "shards removed by a shrink");
  counter("saim_supervisor_warm_forwarded_total", sup.warm_forwarded,
          "warm-pool entries moved to a new owner");
  counter("saim_supervisor_unresponsive_kills_total", sup.unresponsive_kills,
          "shards terminated by the health watchdog");

  text.header("saim_shards_live", "gauge", "shard slots currently on the ring");
  text.series("saim_shards_live", {},
              static_cast<std::uint64_t>(router.live_shards()));
  text.header("saim_shard_slots", "gauge",
              "shard slots ever created (live + dead)");
  text.series("saim_shard_slots", {},
              static_cast<std::uint64_t>(router.shard_slots()));
  text.header("saim_router_outstanding", "gauge",
              "jobs accepted but not yet answered");
  text.series("saim_router_outstanding", {},
              static_cast<std::uint64_t>(router.outstanding()));

  const std::size_t slots = router.shard_slots();
  text.header("saim_shard_alive", "gauge", "1 while the slot is on the ring");
  for (std::size_t s = 0; s < slots; ++s) {
    text.series("saim_shard_alive", shard_label(s),
                static_cast<std::uint64_t>(router.alive(s) ? 1 : 0));
  }
  text.header("saim_shard_queue_depth", "gauge",
              "jobs routed to the shard, not yet written");
  for (std::size_t s = 0; s < slots; ++s) {
    text.series("saim_shard_queue_depth", shard_label(s),
                static_cast<std::uint64_t>(router.pending(s)));
  }
  text.header("saim_shard_inflight", "gauge",
              "jobs written to the shard, awaiting a result");
  for (std::size_t s = 0; s < slots; ++s) {
    text.series("saim_shard_inflight", shard_label(s),
                static_cast<std::uint64_t>(router.inflight(s)));
  }
  text.header("saim_shard_routed_total", "counter",
              "jobs ever routed to the shard");
  for (std::size_t s = 0; s < slots; ++s) {
    const std::uint64_t routed =
        s < rs.routed_per_shard.size() ? rs.routed_per_shard[s] : 0;
    text.series("saim_shard_routed_total", shard_label(s), routed);
  }
  text.header("saim_shard_roundtrip_ms", "histogram",
              "job written to the shard until its result line came back, "
              "milliseconds");
  for (std::size_t s = 0; s < slots; ++s) {
    text.histogram_series("saim_shard_roundtrip_ms", shard_label(s),
                          router.latency_snapshot(s));
  }
  text.histogram("saim_hedge_win_ms", {}, router.hedge_win_snapshot(),
                 "round trip of hedge copies that answered before the "
                 "owner, milliseconds");
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("saim_shard",
                       "shard a JSONL solve-job stream across a "
                       "self-healing fleet of saim_serve shards");
  args.add_flag("shards", "local saim_serve child processes to spawn", "2")
      .add_multi("connect",
                 "host:port of a remote `saim_serve --listen --stream` to "
                 "join the ring (repeatable)")
      .add_flag("serve", "path to the saim_serve binary (default: next to "
                "this one)", "")
      .add_flag("input", "job stream path, - for stdin", "-")
      .add_flag("output", "result stream path, - for stdout", "-")
      .add_flag("workers", "solver worker threads PER SHARD (0 = hardware)",
                "1")
      .add_flag("cache", "result-cache capacity per shard (0 disables)",
                "256")
      .add_flag("max-batch",
                "same-instance jobs fused per model build per shard", "8")
      .add_bool("warm-start",
                "make \"warm_start\": true the per-job default on every "
                "shard")
      .add_flag("window", "max in-flight jobs per shard", "32")
      .add_flag("replicas",
                "replication factor R: warm pools/caches mirror to the "
                "next R-1 shards on the ring, enabling hedged requests "
                "and hot-key routing (1 disables)",
                "1")
      .add_flag("hedge-min-ms",
                "re-dispatch a job still in flight after max(this, the "
                "shard's round-trip p95) ms to a replica; first result "
                "wins (0 disables; needs --replicas >= 2)",
                "0")
      .add_flag("max-queue-depth",
                "admission control: once this many routed jobs wait for "
                "a window slot, shed the lowest-priority job with a "
                "\"delayed\"-tagged error (0 = unbounded)",
                "0")
      .add_flag("gossip-ms",
                "re-broadcast every shard's warm pool to its keys' "
                "replica sets on this interval (0 = only on membership "
                "changes)",
                "0")
      .add_flag("auth-token",
                "shared secret presented to --connect shards that were "
                "started with --auth-token",
                "")
      .add_flag("ping-ms",
                "health-probe interval; a shard missing 5 pongs is "
                "terminated and (if local) respawned (0 disables)",
                "1000")
      .add_bool("no-respawn",
                "do not re-exec crashed local shards (PR 4 fail-static "
                "behavior)")
      .add_flag("max-restarts",
                "consecutive crashes before a local shard slot is "
                "abandoned",
                "5")
      .add_flag("metrics",
                "serve Prometheus text-format metrics on host:port "
                "(port 0 picks an ephemeral port)",
                "")
      .add_flag("metrics-port-file",
                "write the bound --metrics port to this file (rendezvous "
                "for port 0)",
                "")
      .add_flag("log-level", "stderr log threshold: debug, info, warn or "
                "error", "info")
      .add_bool("stats", "per-shard routing summary on stderr at exit");
  if (!args.parse(argc, argv)) return args.error().empty() ? 0 : 2;

  const auto log_level = util::parse_log_level(args.get("log-level"));
  if (!log_level) {
    std::fprintf(stderr,
                 "saim_shard: bad --log-level '%s' (want debug, info, warn "
                 "or error)\n",
                 args.get("log-level").c_str());
    return 2;
  }
  util::set_log_level(*log_level);

  const auto nonneg = [&](const char* flag) {
    return static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.get_int(flag)));
  };

  // Fleet membership: locals first (slots 0..L-1), then remotes.
  std::vector<net::HostPort> remotes;
  for (const auto& spec : args.get_all("connect")) {
    const auto hostport = net::parse_hostport(spec);
    if (!hostport) {
      util::log_error() << "saim_shard: bad --connect '" << spec
                        << "' (want host:port)";
      return 2;
    }
    remotes.push_back(*hostport);
  }
  std::size_t locals = nonneg("shards");
  if (locals == 0 && remotes.empty()) locals = 1;

  service::RouterOptions router_options;
  router_options.shards = locals + remotes.size();
  router_options.window = std::max<std::size_t>(1, nonneg("window"));
  router_options.replicas = std::max<std::size_t>(1, nonneg("replicas"));
  router_options.hedge_min_ms =
      std::max(0.0, args.get_double("hedge-min-ms"));
  router_options.max_queue_depth = nonneg("max-queue-depth");
  // Hot-key routing bound: one full window queued on the owner means a
  // twin would wait a whole batch behind it — a replica is cheaper.
  router_options.hot_key_depth = router_options.window;

  std::string serve = args.get("serve");
  if (serve.empty()) serve = sibling_serve_path(argv[0]);
  if (locals > 0 && !executable_exists(serve)) {
    util::log_error() << "saim_shard: cannot execute '" << serve << "'";
    return 2;
  }

  std::ifstream file_in;
  const std::string input = args.get("input");
  if (input != "-") {
    file_in.open(input);
    if (!file_in) {
      util::log_error() << "saim_shard: cannot open '" << input << "'";
      return 2;
    }
  }
  std::istream& in = input == "-" ? std::cin : file_in;

  std::ofstream file_out;
  const std::string output = args.get("output");
  if (output != "-") {
    file_out.open(output);
    if (!file_out) {
      util::log_error() << "saim_shard: cannot open '" << output << "'";
      return 2;
    }
  }
  std::ostream& out = output == "-" ? std::cout : file_out;

  // The fleet: router (routing state) + supervisor (endpoints, respawn,
  // resharding, warm handoff, health).
  service::ShardRouter router(router_options);
  service::SupervisorOptions supervisor_options;
  supervisor_options.local_argv = {
      serve,
      "--stream",
      "--workers", args.get("workers"),
      "--cache", args.get("cache"),
      "--max-batch", args.get("max-batch"),
  };
  if (args.get_bool("warm-start")) {
    supervisor_options.local_argv.push_back("--warm-start");
  }
  supervisor_options.respawn = !args.get_bool("no-respawn");
  supervisor_options.max_restarts = static_cast<int>(
      std::max<std::size_t>(1, nonneg("max-restarts")));
  supervisor_options.ping_ms = static_cast<int>(nonneg("ping-ms"));
  supervisor_options.gossip_ms = static_cast<int>(nonneg("gossip-ms"));
  supervisor_options.remote_auth_token = args.get("auth-token");
  service::Supervisor supervisor(router, supervisor_options);
  for (std::size_t s = 0; s < locals; ++s) supervisor.attach_local(s);
  for (std::size_t i = 0; i < remotes.size(); ++i) {
    try {
      supervisor.attach_remote(locals + i, remotes[i].host, remotes[i].port);
    } catch (const std::exception& e) {
      util::log_error() << "saim_shard: " << e.what();
      return 2;
    }
  }

  // --metrics: one background scrape thread serving the latest
  // pre-rendered exposition. The router and supervisor are single-threaded
  // (owned by this loop), so the server never reads them directly — the
  // loop republishes the payload under the mutex every ~250 ms.
  MetricsPublisher metrics_pub;
  {
    util::MutexLock lock(metrics_pub.mutex);
    metrics_pub.payload = render_fleet_metrics(router, supervisor);
  }
  std::unique_ptr<obs::MetricsServer> metrics_server;
  const std::string metrics_spec = args.get("metrics");
  if (!metrics_spec.empty()) {
    const auto hostport = net::parse_hostport(metrics_spec);
    if (!hostport) {
      util::log_error() << "saim_shard: bad --metrics '" << metrics_spec
                        << "' (want host:port)";
      return 2;
    }
    try {
      metrics_server = std::make_unique<obs::MetricsServer>(
          hostport->host, hostport->port, [&metrics_pub] {
            util::MutexLock lock(metrics_pub.mutex);
            return metrics_pub.payload;
          });
    } catch (const std::exception& e) {
      util::log_error() << "saim_shard: " << e.what();
      return 2;
    }
    const std::string metrics_port_file = args.get("metrics-port-file");
    if (!metrics_port_file.empty()) {
      std::ofstream pf(metrics_port_file);
      if (!pf) {
        util::log_error() << "saim_shard: cannot write '" << metrics_port_file
                          << "'";
        return 2;
      }
      pf << metrics_server->port() << "\n";
    }
    util::log_info() << "metrics on " << hostport->host << ":"
                     << metrics_server->port();
  }

  // Ctrl-C / SIGTERM turn into a graceful shutdown: stop intake, drain
  // every accepted job, tear the fleet down, then exit. (Children sit in
  // their own process groups, so the terminal's SIGINT does not reach
  // them directly — the front door stays in charge of the drain.)
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Memory backstops. The routed-jobs side: stop parsing/routing when
  // this many jobs wait for a window slot. The raw-lines side: the reader
  // thread blocks once this many unconsumed lines are buffered, so a fast
  // producer cannot balloon RSS with the whole stream.
  // With admission control on, the router's shed bound must engage before
  // the intake gate stalls parsing, or no job would ever be shed.
  std::size_t high_water = router_options.shards *
                           router_options.window * 4;
  if (router_options.max_queue_depth > 0) {
    high_water = std::max(high_water, router_options.max_queue_depth + 1);
  }
  const std::size_t line_buffer_cap = std::max<std::size_t>(high_water * 4,
                                                            4096);

  // Input on its own thread so a slow producer never stalls the pumps
  // (same pattern as saim_serve's emitter, mirrored to the read side).
  LineIntake intake;
  std::thread reader([&] {
    std::string line;
    while (std::getline(in, line)) {
      util::MutexLock lock(intake.mutex);
      while (intake.lines.size() >= line_buffer_cap) {
        intake.cv.wait(lock.native());
      }
      intake.lines.push_back(std::move(line));
    }
    util::MutexLock lock(intake.mutex);
    intake.input_done = true;
  });

  // One write + one flush per pump round, not per line: a round that
  // completes a burst of shard replies leaves as a single syscall (the
  // stream-mode reader on the other side splits on newlines anyway).
  std::string emit_buffer;
  const auto emit = [&](const std::vector<std::string>& emitted) {
    if (emitted.empty()) return;
    emit_buffer.clear();
    for (const auto& l : emitted) {
      emit_buffer += l;
      emit_buffer += '\n';
    }
    out << emit_buffer;
    out.flush();
  };

  bool intake_open = true;   ///< false after {"cmd":"shutdown"} or a signal
  bool front_error = false;  ///< error lines the front door produced itself
  std::string bye_id;        ///< shutdown ack id; emitted after the drain
  bool saw_shutdown_cmd = false;

  std::size_t line_no = 0;
  auto next_metrics_refresh = std::chrono::steady_clock::now();
  for (;;) {
    if (g_signal && intake_open) {
      intake_open = false;  // drain what was accepted, then leave
      util::log_info() << "signal received, draining";
    }

    if (metrics_server &&
        std::chrono::steady_clock::now() >= next_metrics_refresh) {
      std::string rendered = render_fleet_metrics(router, supervisor);
      {
        util::MutexLock lock(metrics_pub.mutex);
        metrics_pub.payload = std::move(rendered);
      }
      next_metrics_refresh =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
    }

    // Ingest as much input as backpressure allows, intercepting the
    // fleet-management control lines the router must not see.
    bool done;
    for (;;) {
      std::string line;
      {
        util::MutexLock lock(intake.mutex);
        done = (intake.input_done && intake.lines.empty()) || !intake_open;
        if (!intake_open || intake.lines.empty() ||
            router.total_pending() >= high_water) {
          break;
        }
        line = std::move(intake.lines.front());
        intake.lines.pop_front();
      }
      intake.cv.notify_one();
      ++line_no;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

      // Fleet-management control lines (reshard/shutdown/export_warm/
      // import_warm) are handled here; ping/drain and job lines flow to
      // the router. The substring test only gates the extra parse —
      // false positives cost one parse_json, nothing else.
      if (line.find("\"cmd\"") != std::string::npos) {
        std::string cmd_id = "job" + std::to_string(line_no);
        try {
          const util::JsonValue parsed = util::parse_json(line);
          if (const auto* id = parsed.find("id")) {
            if (!id->as_string().empty()) cmd_id = id->as_string();
          }
          const auto cmd = service::control_cmd(parsed);
          if (cmd && *cmd == "shutdown") {
            intake_open = false;
            saw_shutdown_cmd = true;
            bye_id = cmd_id;
            break;  // stop intake mid-buffer: shutdown certifies the past
          }
          if (cmd && *cmd == "reshard") {
            const auto* shards = parsed.find("shards");
            if (!shards || !shards->is_number()) {
              throw std::runtime_error("reshard needs a numeric \"shards\"");
            }
            const double want = shards->as_double();
            if (!(want >= 0.0) || want > 1024.0) {
              throw std::runtime_error("reshard \"shards\" must be 0..1024");
            }
            const std::size_t applied =
                supervisor.reshard(static_cast<std::size_t>(want));
            util::JsonWriter ack;
            ack.field("id", cmd_id)
                .field("resharded", true)
                .field("shards", static_cast<std::uint64_t>(applied));
            emit({ack.str()});
            continue;
          }
          if (cmd && *cmd == "stats") {
            // Fleet snapshot: the supervisor probes every live shard and a
            // later pump() emits one {"id":...,"fleet":{...}} line once all
            // replies land (or the 2 s deadline passes).
            supervisor.request_fleet_stats(cmd_id);
            continue;
          }
          if (cmd && (*cmd == "export_warm" || *cmd == "import_warm")) {
            throw std::runtime_error(
                "control cmd \"" + *cmd +
                "\" is not served by the saim_shard front door (warm "
                "pools live in the shards)");
          }
        } catch (const std::exception& e) {
          front_error = true;
          util::JsonWriter err;
          err.field("id", cmd_id).field("error", e.what());
          emit({err.str()});
          continue;
        }
      }
      emit(router.accept_line(line, line_no));
    }

    emit(supervisor.pump(2));

    // With no live shard and none respawning there is no pollable fd, so
    // pump returns immediately; sleep instead of spinning.
    if (router.live_shards() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    if (done && router.idle()) break;
  }

  if (saw_shutdown_cmd) {
    util::JsonWriter bye;
    bye.field("id", bye_id).field("bye", true);
    emit({bye.str()});
  }

  // Graceful fleet teardown: shutdown control lines + stdin EOF, wait for
  // the children's own exits, reap — SIGKILL only on an overstay.
  metrics_server.reset();  // last scrape before the fleet state goes away
  supervisor.shutdown_fleet();
  emit(supervisor.drain_deferred());
  out.flush();

  // Shutdown summary, always (Info level): the supervisor's respawn /
  // reconnect / abandonment counts are the operator's only post-mortem
  // when a fleet limped. --stats adds the per-shard routing breakdown.
  {
    const auto& s = router.stats();
    const auto& sup = supervisor.stats();
    util::log_info() << "saim_shard: " << s.accepted << " accepted, "
                     << s.emitted << " emitted, " << s.rejected
                     << " rejected, " << s.requeued << " requeued, "
                     << s.orphaned << " orphaned, " << router.live_shards()
                     << "/" << router.shard_slots() << " shards alive";
    util::log_info() << "saim_shard: supervisor: " << sup.respawns
                     << " respawns, " << sup.remote_reconnects
                     << " remote reconnects, " << sup.respawn_failures
                     << " respawn failures, " << sup.reshards << " reshards, "
                     << sup.retired << " retired, " << sup.warm_forwarded
                     << " warm entries forwarded, " << sup.unresponsive_kills
                     << " unresponsive kills";
    if (args.get_bool("stats")) {
      for (std::size_t i = 0; i < s.routed_per_shard.size(); ++i) {
        util::log_info() << "  shard " << i << ": " << s.routed_per_shard[i]
                         << " jobs routed" << (router.alive(i) ? "" : " (down)")
                         << (supervisor.is_local(i) ? "" : " (remote)");
      }
    }
  }

  const int code = (router.any_error() || front_error) ? 1 : 0;
  // The reader thread may still be parked in getline on an open stdin
  // (signal/shutdown path). Joining would hang; exiting without static
  // teardown is safe — everything worth flushing was flushed above.
  {
    util::MutexLock lock(intake.mutex);
    if (!intake.input_done) {
      std::fflush(nullptr);
      std::_Exit(code);
    }
  }
  reader.join();
  return code;
}
